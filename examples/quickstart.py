"""Quickstart: reproduce the paper's Section VI case study, then attack.

Runs in under a minute:

1. builds the exact Figure 5 fixture (PAROLE Token, 8 transactions);
2. replays the paper's three orderings and prints their tables;
3. unleashes the PAROLE attack (GENTRANSEQ DQN) on the same collection
   and shows the profitable order it discovers.

Experiments go through the :mod:`repro.api` facade
(``api.run_experiment("fig5")``) rather than importing the harness
directly — direct ``run_figN``/``run_case_studies`` imports are
deprecated for examples; the facade shares the registry (and therefore
the cache keys) with ``parole run-all``.

Usage::

    python examples/quickstart.py
"""

from repro import GenTranSeqConfig, ParoleAttack, AttackConfig, api
from repro.workloads import case_study_fixture


def main() -> None:
    print("=" * 72)
    print("Figure 5 case studies (exact replay)")
    print("=" * 72)
    print(api.run_experiment("fig5").text, end="")

    print()
    print("=" * 72)
    print("PAROLE attack on the case-study collection")
    print("=" * 72)
    workload = case_study_fixture()
    attack = ParoleAttack(
        config=AttackConfig(
            ifu_accounts=workload.ifus,
            gentranseq=GenTranSeqConfig(
                episodes=30, steps_per_episode=60, seed=3
            ),
        )
    )
    outcome = attack.run(workload.pre_state, workload.transactions)
    result = outcome.result
    assert result is not None
    print(f"original final balance : {result.original_objective:.4f} ETH")
    print(f"attacked final balance : {result.best_objective:.4f} ETH")
    print(f"profit                 : {result.profit:+.4f} ETH")
    print("discovered order       :",
          " -> ".join(tx.label for tx in result.best_sequence))
    print()
    print("(The paper's hand-derived optimum, case 3, reaches 2.7333 ETH;")
    print(" the DQN may find slightly more under the batch-netting")
    print(" semantics the paper's own case 2 relies on - see EXPERIMENTS.md.)")


if __name__ == "__main__":
    main()
