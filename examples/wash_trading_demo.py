"""Wash-trading detection over a simulated marketplace session.

Two colluding wallets pump a PAROLE-token's apparent volume by cycling a
token between themselves while organic users trade normally.  The
graph-based detector flags the cycles and the wallet cluster, and
reports the artificial-volume share — the quantity the wash-trading
literature the paper cites (Section III) measures at ecosystem scale.

Usage::

    python examples/wash_trading_demo.py
"""

from repro.config import NFTContractConfig
from repro.market import Marketplace, WashTradeDetector
from repro.tokens import LimitedEditionNFT


def main() -> None:
    contract = LimitedEditionNFT(
        NFTContractConfig(symbol="PT", name="ParoleToken",
                          max_supply=12, initial_price_eth=0.2)
    )
    balances = {
        "washer-1": 20.0, "washer-2": 20.0,
        "alice": 10.0, "bob": 10.0, "carol": 10.0,
    }
    market = Marketplace(contract, balances)

    # Organic activity: mints and one-way sales.
    token_a, _ = market.mint("alice")
    token_b, _ = market.mint("bob")
    market.list_token("alice", token_a, ask_price_eth=0.4)
    market.buy("carol", token_a)
    market.list_token("bob", token_b, ask_price_eth=0.35)
    market.buy("alice", token_b)

    # The wash: one token ping-pongs between two colluders.
    washed, _ = market.mint("washer-1")
    for _ in range(3):
        market.list_token("washer-1", washed, ask_price_eth=1.0)
        market.buy("washer-2", washed)
        market.list_token("washer-2", washed, ask_price_eth=1.1)
        market.buy("washer-1", washed)

    report = WashTradeDetector(max_cycle_blocks=1000).inspect(list(market.sales))

    print(f"total marketplace volume : {report.total_volume_eth:.2f} ETH")
    print(f"artificial (wash) volume : {report.artificial_volume_eth:.2f} ETH "
          f"({report.artificial_fraction:.0%})")
    print(f"wash cycles detected     : {len(report.cycles)}")
    print(f"suspicious wallets       : {', '.join(report.suspicious_wallets)}")
    organic = {"alice", "bob", "carol"} & set(report.suspicious_wallets)
    print(f"false positives          : {sorted(organic) or 'none'}")


if __name__ == "__main__":
    main()
