"""NFT marketplace session plus the real-world snapshot study.

Part 1 mirrors the paper's OpenSea-testnet validation: deploy the PAROLE
Token, mint/list/trade/burn it through the marketplace, and print the
Table III-style gas records each action produced.

Part 2 runs the Figure 10 study: generate the synthetic
Optimism/Arbitrum snapshot population, scan it for reorderable price
differentials, and print the per-chain / per-tier profit opportunity.

Part 2 goes through the :mod:`repro.api` facade
(``api.run_experiment("fig10")``) instead of importing ``run_fig10``
directly — direct harness imports are deprecated for examples; the
facade shares the registry (and cache keys) with ``parole run-all``.

Usage::

    python examples/marketplace_study.py
"""

from repro import NFTContractConfig, api
from repro.analysis import format_table
from repro.market import Marketplace
from repro.tokens import LimitedEditionNFT


def marketplace_session() -> None:
    contract = LimitedEditionNFT(
        NFTContractConfig(symbol="PT", name="ParoleToken",
                          max_supply=10, initial_price_eth=0.2)
    )
    balances = {"alice": 3.0, "bob": 3.0, "carol": 3.0}
    market = Marketplace(contract, balances)

    token_a, _ = market.mint("alice")
    token_b, _ = market.mint("bob")
    market.list_token("alice", token_a, ask_price_eth=0.5)
    sale, _ = market.buy("carol", token_a)
    market.burn("bob", token_b)

    print(f"sale: token {sale.token_id} {sale.seller} -> {sale.buyer} "
          f"at {sale.price_eth:.3f} ETH")
    print(f"collection price now: {contract.unit_price:.3f} ETH "
          f"(remaining supply {contract.remaining_supply})")
    print(f"marketplace volume  : {market.total_volume_eth():.3f} ETH")
    print()
    rows = [record.as_row() for record in market.records]
    print(format_table(
        ("TX Type", "TX Hash", "Block", "L1 index", "Gas usage", "TX fees"),
        rows,
    ))


def main() -> None:
    print("=" * 72)
    print("Part 1: PAROLE Token on the in-process marketplace (Table III)")
    print("=" * 72)
    marketplace_session()

    print()
    print("=" * 72)
    print("Part 2: snapshot study across Optimism/Arbitrum (Figure 10)")
    print("=" * 72)
    outcome = api.run_experiment("fig10")
    summaries = outcome.result
    print(outcome.text, end="")
    arbitrum = sum(
        s.total_profit_eth for s in summaries if s.chain.value == "arbitrum"
    )
    optimism = sum(
        s.total_profit_eth for s in summaries if s.chain.value == "optimism"
    )
    print()
    print(f"Arbitrum total opportunity: {arbitrum:.3f} ETH")
    print(f"Optimism total opportunity: {optimism:.3f} ETH")
    print("(The paper observes higher arbitrage opportunity on Arbitrum.)")


if __name__ == "__main__":
    main()
