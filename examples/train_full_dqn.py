"""Full Table II training run with learning-curve output (Figure 8).

Trains the GENTRANSEQ DQN at the paper's budget (100 episodes x 200
steps) on a mempool-20 workload and prints the window-9 moving average
of episode rewards — the exact quantity Figure 8 plots.  Expect a few
minutes of compute.

Usage::

    python examples/train_full_dqn.py [--quick]
"""

import sys

from repro import GenTranSeqConfig
from repro.analysis import moving_average
from repro.config import WorkloadConfig
from repro.core import GenTranSeq
from repro.workloads import generate_workload


def main(quick: bool = False) -> None:
    workload = generate_workload(
        WorkloadConfig(mempool_size=20, num_users=12, num_ifus=1,
                       min_ifu_involvement=4, seed=0)
    )
    config = GenTranSeqConfig(seed=0)  # Table II defaults
    if quick:
        config = config.with_overrides(episodes=15, steps_per_episode=60)
    module = GenTranSeq(config=config)
    result = module.optimize(
        workload.pre_state, workload.transactions, workload.ifus
    )

    smoothed = moving_average(result.episode_rewards, window=9)
    print(f"episodes                : {len(result.episode_rewards)}")
    print(f"original final balance  : {result.original_objective:.4f} ETH")
    print(f"best final balance      : {result.best_objective:.4f} ETH")
    print(f"profit                  : {result.profit:+.4f} ETH")
    print(f"training time           : {result.elapsed_seconds:.1f} s")
    print()
    print("moving-average episode reward (window 9):")
    stride = max(1, len(smoothed) // 20)
    for episode in range(0, len(smoothed), stride):
        bar_length = max(0, int((smoothed[episode] + 20000) / 1500))
        print(f"  ep {episode:3d}: {smoothed[episode]:>10.1f}  "
              + "#" * min(bar_length, 40))
    sizes = result.first_solution_swaps
    if sizes:
        print()
        print(f"first-solution swap counts (Figure 9 samples): {sizes}")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
