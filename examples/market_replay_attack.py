"""Attack a mempool replayed from a real-world-style NFT collection.

Closes the loop between Figure 10 and the attack core: generate a
synthetic Arbitrum collection (the population the snapshot study
scans), invert its price path into a concrete transaction stream via
Eq. 10, and run PAROLE on the resulting mempool — profit here is the
per-collection opportunity Figure 10 aggregates.

Usage::

    python examples/market_replay_attack.py
"""

import numpy as np

from repro.config import AttackConfig, GenTranSeqConfig, SnapshotStudyConfig
from repro.core import ParoleAttack
from repro.market import Chain, FrequencyTier, generate_collection
from repro.workloads import workload_from_collection


def main() -> None:
    rng = np.random.default_rng(2)
    collection = generate_collection(
        Chain.ARBITRUM, FrequencyTier.LFT, rng, SnapshotStudyConfig()
    )
    low, high = collection.price_range()
    print(f"collection {collection.short_address} on {collection.chain.value}")
    print(f"  owners            : {collection.owners}")
    print(f"  price range       : {low:.3f} - {high:.3f} ETH "
          f"(differential {high - low:.3f})")

    workload = workload_from_collection(collection, window=(0, 12), seed=1)
    print(f"  replayed mempool  : {workload.mempool_size} transactions")
    print(f"  IFU involvement   : {workload.ifu_involvement()['ifu-0']} txs")

    attack = ParoleAttack(
        config=AttackConfig(
            ifu_accounts=workload.ifus,
            gentranseq=GenTranSeqConfig(episodes=10, steps_per_episode=40,
                                        seed=0),
        )
    )
    outcome = attack.run(workload.pre_state, workload.transactions)
    print()
    print(f"attack fired        : {outcome.attacked}")
    print(f"profit              : {outcome.profit:+.4f} ETH")
    print(f"captured share of   : {(outcome.profit / (high - low)):.0%} "
          "of the window's price differential")


if __name__ == "__main__":
    main()
