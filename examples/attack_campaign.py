"""Multi-round attack campaign with a persistent DQN agent.

Section VII-F's premise is that the IFU trains the model offline and
the aggregator pays only inference cost online.  This example shows the
training transfer concretely: one agent attacks a stream of fresh
mempools, and its accumulated experience is compared against cold
(fresh-agent-per-round) attacks on the same workloads.

Usage::

    python examples/attack_campaign.py
"""

from repro.config import GenTranSeqConfig, WorkloadConfig
from repro.core import AttackCampaign, cold_vs_warm


def main() -> None:
    workload_config = WorkloadConfig(
        mempool_size=12, num_users=10, num_ifus=1,
        min_ifu_involvement=4, seed=0,
    )
    gts_config = GenTranSeqConfig(episodes=5, steps_per_episode=30, seed=0)
    rounds = 6

    print(f"running {rounds}-round campaign (mempool 12, 1 IFU)...")
    campaign = AttackCampaign(workload_config, gts_config)
    report = campaign.run(rounds)

    print()
    print("round  profit (ETH)  attacked  min swaps to solution")
    for record in report.rounds:
        swaps = record.min_solution_swaps
        print(f"{record.round_index:>5}  {record.profit_eth:>12.4f}  "
              f"{str(record.attacked):>8}  "
              f"{swaps if swaps is not None else '-':>21}")
    print()
    print(f"cumulative profit : {report.total_profit_eth:.4f} ETH")
    print(f"hit rate          : {report.hit_rate:.0%}")

    print()
    print("cold (fresh agent per round) vs warm (persistent agent):")
    cold, warm = cold_vs_warm(workload_config, gts_config, rounds=4)
    print(f"  cold total profit: {cold.total_profit_eth:.4f} ETH")
    print(f"  warm total profit: {warm.total_profit_eth:.4f} ETH")
    early, late = warm.split_halves()
    print(f"  warm early-half mean: {sum(early) / len(early):.4f} ETH")
    print(f"  warm late-half mean : {sum(late) / len(late):.4f} ETH")


if __name__ == "__main__":
    main()
