"""Strategy × defense leaderboard through the :mod:`repro.api` facade.

Shows the PR-10 surface end to end:

1. enumerate the registered adversary strategies and sequencing
   defenses (``api.list_strategies()`` / ``api.list_defenses()``);
2. run a reduced strategies × defenses grid with ``api.run_matrix()``
   and print the deterministic leaderboard;
3. register a custom strategy plug-in and re-run the grid with it —
   no core changes needed, the registry is the extension point.

Usage::

    python examples/strategy_matrix.py
"""

from repro import api
from repro.strategies import (
    STRATEGIES,
    BaseStrategy,
    MempoolView,
    StrategyAction,
)


class ReverseStrategy(BaseStrategy):
    """A toy permute-only plug-in: serve every batch in reverse."""

    name = "reverse"
    description = "permute-only demo plug-in: reverse the collected order"

    def observe(self, pre_state, view: MempoolView) -> StrategyAction:
        return StrategyAction.permutation(tuple(reversed(view.transactions)))


def main() -> None:
    print("registered strategies:")
    for info in api.list_strategies():
        print(f"  {info.name:<20} {info.description}")
    print("registered defenses:")
    for info in api.list_defenses():
        print(f"  {info.name:<20} {info.description}")

    print()
    print("=" * 72)
    print("reduced grid: 3 strategies x 3 defenses (no fault cells)")
    print("=" * 72)
    report = api.run_matrix(
        strategies=("honest", "parole-reorder", "sandwich"),
        defenses=("none", "fcfs", "guarded"),
        fault_plans=(),
    )
    print(report.render())

    print()
    print("=" * 72)
    print("custom plug-in: the registry is the extension point")
    print("=" * 72)
    STRATEGIES.register(
        "reverse", ReverseStrategy.description, lambda context: ReverseStrategy()
    )
    report = api.run_matrix(
        strategies=("reverse",), defenses=("none", "fcfs"), fault_plans=()
    )
    print(report.render())


if __name__ == "__main__":
    main()
