"""End-to-end rollup pipeline with an adversarial aggregator.

Demonstrates the full Figure 1 / Figure 3 workflow on the in-process
substrate:

1. an L1 chain with the optimistic rollup contract;
2. users bridging ETH to L2 and submitting NFT transactions into
   Bedrock's private mempool;
3. one honest and one adversarial aggregator collecting fee-priority
   slices; the adversarial one reorders through the PAROLE module;
4. verifiers re-executing every batch — and, crucially, finding nothing
   to challenge, because reordering does not falsify the fraud proof;
5. batch finalization after the challenge window.

Usage::

    python examples/rollup_pipeline.py
"""

from repro import (
    AdversarialAggregator,
    Aggregator,
    AttackConfig,
    GenTranSeqConfig,
    ParoleAttack,
    RollupConfig,
    RollupNode,
    Verifier,
)
from repro.config import WorkloadConfig
from repro.rollup.state import ExecutionMode, L2State
from repro.workloads import generate_workload


def main() -> None:
    workload = generate_workload(
        WorkloadConfig(mempool_size=24, num_users=12, num_ifus=1,
                       min_ifu_involvement=4, seed=5)
    )
    node = RollupNode(
        l2_state=workload.pre_state,
        config=RollupConfig(aggregator_mempool_size=12,
                            challenge_period_blocks=3),
    )

    # Bridge deposits for every user (L1 -> L2), mirroring the pre-state.
    for user in workload.users:
        node.fund_and_deposit(user, workload.pre_state.balance(user))

    attack = ParoleAttack(
        config=AttackConfig(
            ifu_accounts=workload.ifus,
            gentranseq=GenTranSeqConfig(episodes=8, steps_per_episode=40, seed=1),
        )
    )
    node.add_aggregator(
        AdversarialAggregator("agg-evil", strategy=attack.as_strategy())
    )
    node.add_aggregator(Aggregator("agg-honest"))
    node.add_verifier(Verifier("verifier-0"))
    node.add_verifier(Verifier("verifier-1"))

    for tx in workload.transactions:
        node.submit(tx)

    ifu = workload.ifus[0]
    wealth_before = node.l2_state.wealth(ifu)
    report = node.run_round()
    wealth_after = node.l2_state.wealth(ifu)

    print(f"batches committed      : {len(report.batches)}")
    print(f"adversarial reordered  : {report.attacked}")
    print(f"verifier challenges    : {len(report.challenges)} "
          "(reordering is invisible to fraud proofs)")
    print(f"IFU wealth before      : {wealth_before:.4f} ETH")
    print(f"IFU wealth after       : {wealth_after:.4f} ETH")
    print(f"attack profit (cum.)   : {attack.total_profit():+.4f} ETH")

    node.advance_challenge_window()
    finalized = node.finalize_ready_batches()
    print(f"finalized batches      : {finalized}")
    print(f"L1 chain height        : {node.chain.height}, "
          f"ancestry ok: {node.chain.verify_ancestry()}")


if __name__ == "__main__":
    main()
