"""Timed rollup deployment: latency, deadlines and the attack.

Runs the discrete-event simulation of a full deployment — users
submitting over a jittery network, Bedrock-interval aggregation,
verifiers re-executing each batch — in three configurations:

1. honest aggregation;
2. the PAROLE attack with a generous reordering deadline;
3. the same attack under a tight deadline (the reordering cannot finish
   inside the Bedrock slot, so the aggregator falls back to honest).

Usage::

    python examples/timed_deployment.py
"""

import time

from repro.config import AttackConfig, GenTranSeqConfig, WorkloadConfig
from repro.core import ParoleAttack
from repro.sim import LatencyModel, TimedRollupScenario
from repro.workloads import generate_workload


def show(name: str, metrics) -> None:
    print(f"[{name}]")
    print(f"  batches committed      : {metrics.batches_committed}")
    print(f"  transactions included  : {metrics.transactions_included}")
    print(f"  attacks fired          : {metrics.attacks_fired}")
    print(f"  missed reorder slots   : {metrics.missed_deadlines}")
    print(f"  verifier challenges    : {metrics.challenges}")
    print(f"  mean inclusion latency : {metrics.mean_inclusion_latency:.3f} units")
    print()


def main() -> None:
    workload = generate_workload(
        WorkloadConfig(mempool_size=16, num_users=10, num_ifus=1,
                       min_ifu_involvement=4, seed=5)
    )

    show("honest", TimedRollupScenario(workload, collect_size=8).run())

    def make_reorderer():
        attack = ParoleAttack(
            config=AttackConfig(
                ifu_accounts=workload.ifus,
                gentranseq=GenTranSeqConfig(
                    episodes=3, steps_per_episode=20, seed=0
                ),
            )
        )

        def reorder(pre_state, collected):
            started = time.perf_counter()
            executed = attack.run(pre_state, collected).executed_sequence
            return executed, time.perf_counter() - started

        return reorder

    show(
        "PAROLE, generous deadline",
        TimedRollupScenario(
            workload, collect_size=8,
            reorderer=make_reorderer(), reorder_deadline=10.0,
        ).run(),
    )

    show(
        "PAROLE, tight deadline (0.1 ms of compute allowed)",
        TimedRollupScenario(
            workload, collect_size=8,
            reorderer=make_reorderer(), reorder_deadline=1e-4,
        ).run(),
    )

    print("Takeaway: fraud proofs never fire (challenges = 0 in all runs);")
    print("only the compute deadline constrains the attack - which is why")
    print("the paper benchmarks DQN inference against NLP solvers (Fig. 11).")


if __name__ == "__main__":
    main()
