"""Section VIII defense: detect and neutralise arbitrage in the mempool.

Builds an attack-prone pending batch, shows that PAROLE extracts profit
from it, then runs the MempoolGuard: the worst-case probe flags the
batch, and greedy minimal demotion pushes just enough transactions to
the next block to bring the worst case under the threshold.

Usage::

    python examples/defense_demo.py
"""

from repro import AttackConfig, GenTranSeqConfig, ParoleAttack
from repro.config import DefenseConfig, WorkloadConfig
from repro.defense import MempoolGuard, plan_demotion
from repro.workloads import generate_workload


def main() -> None:
    workload = generate_workload(
        WorkloadConfig(mempool_size=12, num_users=8, num_ifus=1,
                       min_ifu_involvement=4, seed=9)
    )
    probe_config = GenTranSeqConfig(episodes=8, steps_per_episode=40, seed=0)

    # 1. The attack, undefended.
    attack = ParoleAttack(
        config=AttackConfig(ifu_accounts=workload.ifus, gentranseq=probe_config)
    )
    outcome = attack.run(workload.pre_state, workload.transactions)
    print(f"undefended attack profit : {outcome.profit:+.4f} ETH")

    # 2. The guard's worst-case probe.
    guard = MempoolGuard(
        config=DefenseConfig(profit_threshold_eth=0.02,
                             fee_scaled_threshold=False),
        probe_config=probe_config,
    )
    report = guard.inspect(workload.pre_state, workload.transactions)
    print(f"worst-case user          : {report.worst_case_user}")
    print(f"worst-case profit        : {report.worst_case_profit_eth:.4f} ETH")
    print(f"threshold                : {report.threshold_eth:.4f} ETH")
    print(f"flagged                  : {report.flagged}")

    # 3. Minimal demotion until safe.
    if report.flagged:
        plan = plan_demotion(guard, workload.pre_state, workload.transactions)
        print(f"transactions demoted     : {plan.demoted_count} "
              f"of {len(workload.transactions)}")
        print(f"residual worst case      : "
              f"{plan.final_report.worst_case_profit_eth:.4f} ETH")
        print(f"resolved                 : {plan.resolved}")
        demoted = ", ".join(tx.label or tx.describe() for tx in plan.demoted)
        print(f"demoted to next block    : {demoted}")

    # 4. The protocol-level alternative: order commitments.
    from repro.defense import OrderCheckingVerifier, commit_with_order

    print()
    print("protocol fix: order commitments")
    committed = commit_with_order(
        "evil", workload.pre_state, workload.transactions,
        executed_order=outcome.executed_sequence,
    )
    verdict = OrderCheckingVerifier("order-watcher").inspect_committed(
        committed, workload.pre_state
    )
    print(f"  executed order respects commitment : {verdict.order_respected}")
    print(f"  challenge raised                   : {verdict.should_challenge}")
    print("  (the same reordering that plain fraud proofs cannot see)")


if __name__ == "__main__":
    main()
