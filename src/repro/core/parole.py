"""The PAROLE module (paper Algorithm 1 and Figure 3).

``ParoleAttack`` is what the adversarial aggregator embeds: given its
collected transactions, the IFU information and the current L2 chain
state, it (1) runs the arbitrage pre-check, (2) if an opportunity exists
invokes GENTRANSEQ, and (3) returns the profitable order — or the
original order when no improvement exists, so the aggregator's behaviour
degrades gracefully to honest.
"""

from __future__ import annotations

import logging
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

logger = logging.getLogger(__name__)

from ..config import AttackConfig
from ..rollup.aggregator import Reorderer
from ..rollup.ovm import OVM
from ..rollup.state import L2State
from ..rollup.transaction import NFTTransaction
from .arbitrage import ArbitrageAssessment, assess_opportunity
from .gentranseq import GenTranSeq, GenTranSeqResult
from .multi_ifu import ifu_objective, mean_wealth, min_gain_objective, wealth_of


@dataclass
class AttackOutcome:
    """Everything one PAROLE invocation produced."""

    assessment: ArbitrageAssessment
    result: Optional[GenTranSeqResult]
    executed_sequence: Tuple[NFTTransaction, ...]
    per_ifu_profit: Dict[str, float] = field(default_factory=dict)

    @property
    def attacked(self) -> bool:
        """Whether GENTRANSEQ ran and changed the order."""
        return self.result is not None and self.result.improved

    @property
    def profit(self) -> float:
        """Objective profit in ETH (0 when the attack did not fire)."""
        return self.result.profit if self.result is not None else 0.0

    @property
    def total_profit(self) -> float:
        """Summed per-IFU wealth gain (Figure 7's quantity)."""
        return sum(self.per_ifu_profit.values())


class ParoleAttack:
    """Orchestrates assessment + GENTRANSEQ for an adversarial aggregator."""

    def __init__(
        self,
        config: Optional[AttackConfig] = None,
        objective_name: str = "mean",
    ) -> None:
        self.config = config or AttackConfig()
        self.objective_name = objective_name
        base_objective = (
            mean_wealth if objective_name == "min-gain"
            else ifu_objective(objective_name)
        )
        self.gentranseq = GenTranSeq(
            config=self.config.gentranseq,
            objective=base_objective,
        )
        self._ovm = OVM()
        self.outcomes: List[AttackOutcome] = []

    @property
    def ifus(self) -> Tuple[str, ...]:
        """The illicitly favored users this attacker serves."""
        return tuple(self.config.ifu_accounts)

    def run(
        self,
        pre_state: L2State,
        transactions: Sequence[NFTTransaction],
    ) -> AttackOutcome:
        """Algorithm 1: assess, optimise, and pick the executed order."""
        assessment = assess_opportunity(transactions, self.ifus)
        if self.config.require_arbitrage_precheck and not assessment.has_opportunity:
            logger.debug(
                "no arbitrage opportunity in %d transactions: %s",
                len(transactions), "; ".join(assessment.reasons),
            )
            outcome = AttackOutcome(
                assessment=assessment,
                result=None,
                executed_sequence=tuple(transactions),
                per_ifu_profit={ifu: 0.0 for ifu in self.ifus},
            )
            self.outcomes.append(outcome)
            return outcome
        objective_override = None
        if self.objective_name == "min-gain":
            baseline = self._ovm.replay(pre_state, transactions).final_state
            objective_override = min_gain_objective(
                wealth_of(baseline, self.ifus)
            )
        result = self.gentranseq.optimize(
            pre_state, transactions, self.ifus, objective=objective_override
        )
        executed = result.best_sequence if result.improved else tuple(transactions)
        if result.improved:
            logger.info(
                "PAROLE attack fired: +%.4f ETH over %d transactions "
                "(objective %.4f -> %.4f)",
                result.profit, len(transactions),
                result.original_objective, result.best_objective,
            )
        outcome = AttackOutcome(
            assessment=assessment,
            result=result,
            executed_sequence=executed,
            per_ifu_profit=self._per_ifu_profit(pre_state, transactions, executed),
        )
        self.outcomes.append(outcome)
        return outcome

    def _per_ifu_profit(
        self,
        pre_state: L2State,
        original: Sequence[NFTTransaction],
        executed: Sequence[NFTTransaction],
    ) -> Dict[str, float]:
        base = self._ovm.replay(pre_state, original).final_state
        alt = self._ovm.replay(pre_state, executed).final_state
        return {
            ifu: alt.wealth(ifu) - base.wealth(ifu) for ifu in self.ifus
        }

    def as_strategy(self):
        """This attack as a strategy plug-in for the adversarial aggregator.

        Returns a :class:`~repro.strategies.parole_reorder.
        ParoleReorderStrategy` wrapping *this* instance, so outcome
        bookkeeping (``outcomes``, ``total_profit``) keeps accumulating
        here.
        """
        from ..strategies.parole_reorder import ParoleReorderStrategy

        return ParoleReorderStrategy(attack=self)

    def as_reorderer(self) -> Reorderer:
        """Deprecated adapter for the pre-PR-10 aggregator interface.

        Use :meth:`as_strategy` instead; bare callables only support
        permute-only actions.
        """
        warnings.warn(
            "ParoleAttack.as_reorderer() is deprecated; use "
            "ParoleAttack.as_strategy() with "
            "AdversarialAggregator(strategy=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )

        def reorder(
            pre_state: L2State, collected: Sequence[NFTTransaction]
        ) -> Sequence[NFTTransaction]:
            return self.run(pre_state, collected).executed_sequence

        return reorder

    def total_profit(self) -> float:
        """Cumulative summed IFU profit across all rounds run so far."""
        return sum(outcome.total_profit for outcome in self.outcomes)
