"""Multi-round attack campaigns (the "IFU trains the model offline" story).

Section VII-F justifies comparing DQN *inference* cost because the
colluding IFU trains the model ahead of time.  :class:`AttackCampaign`
makes that concrete: one :class:`~repro.core.parole.ParoleAttack` (and
therefore one persistent DQN agent) is run across many rollup rounds;
experience accumulates in the replay buffer, so later rounds start from
a trained policy.  The campaign records per-round profit and solution
telemetry, letting the warm-start benefit be measured (see
``bench_campaign`` and ``examples/attack_campaign.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple


from ..config import AttackConfig, GenTranSeqConfig, WorkloadConfig
from ..workloads import Workload, generate_workload
from .parole import ParoleAttack

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..parallel import TaskRunner


@dataclass(frozen=True)
class RoundRecord:
    """Telemetry of one campaign round."""

    round_index: int
    profit_eth: float
    attacked: bool
    first_solution_swaps: Tuple[int, ...]
    elapsed_seconds: float

    @property
    def min_solution_swaps(self) -> Optional[int]:
        """Smallest swap count that reached profit this round."""
        return min(self.first_solution_swaps) if self.first_solution_swaps else None


@dataclass
class CampaignReport:
    """Aggregated campaign outcome."""

    rounds: List[RoundRecord] = field(default_factory=list)

    @property
    def total_profit_eth(self) -> float:
        """Cumulative profit across all rounds."""
        return sum(record.profit_eth for record in self.rounds)

    @property
    def hit_rate(self) -> float:
        """Fraction of rounds where the attack fired profitably."""
        if not self.rounds:
            return 0.0
        return sum(1 for r in self.rounds if r.attacked) / len(self.rounds)

    def profits(self) -> List[float]:
        """Per-round profit series."""
        return [record.profit_eth for record in self.rounds]

    def split_halves(self) -> Tuple[List[float], List[float]]:
        """(early rounds, late rounds) profit split for warm-up analysis."""
        mid = len(self.rounds) // 2
        profits = self.profits()
        return profits[:mid], profits[mid:]


class AttackCampaign:
    """Run PAROLE across many rounds with a persistent agent."""

    def __init__(
        self,
        workload_config: Optional[WorkloadConfig] = None,
        gentranseq_config: Optional[GenTranSeqConfig] = None,
        objective_name: str = "mean",
    ) -> None:
        self.workload_config = workload_config or WorkloadConfig()
        self.objective_name = objective_name
        base_gts = gentranseq_config or GenTranSeqConfig()
        ifus = tuple(f"ifu-{i}" for i in range(self.workload_config.num_ifus))
        self.attack = ParoleAttack(
            config=AttackConfig(ifu_accounts=ifus, gentranseq=base_gts),
            objective_name=objective_name,
        )

    def _round_workload(self, round_index: int) -> Workload:
        import dataclasses

        config = dataclasses.replace(
            self.workload_config,
            seed=self.workload_config.seed + 7919 * round_index,
        )
        return generate_workload(config)

    def run(self, rounds: int, store=None) -> CampaignReport:
        """Attack ``rounds`` fresh mempools with the same agent.

        With a :class:`~repro.store.ResultStore`, the whole report is
        memoized under a key derived from both configs, the objective
        and the round count — a warm rerun returns the archived report
        without retraining (the campaign is sequential, so round-level
        caching would break the warm-start experience accumulation).
        """
        key = None
        if store is not None:
            from ..store import CodecError, decode, encode, experiment_key

            key = experiment_key(
                "campaign",
                "campaign",
                {
                    "workload": self.workload_config,
                    "gentranseq": self.attack.config.gentranseq,
                    "objective": self.objective_name,
                    "rounds": rounds,
                },
                self.workload_config.seed,
            )
            payload, found = store.fetch(key)
            if found:
                try:
                    return decode(payload)
                except CodecError:
                    pass
        report = CampaignReport()
        for round_index in range(rounds):
            workload = self._round_workload(round_index)
            outcome = self.attack.run(workload.pre_state, workload.transactions)
            result = outcome.result
            report.rounds.append(
                RoundRecord(
                    round_index=round_index,
                    profit_eth=outcome.profit,
                    attacked=outcome.attacked,
                    first_solution_swaps=tuple(
                        result.first_solution_swaps if result else ()
                    ),
                    elapsed_seconds=(
                        result.elapsed_seconds if result else 0.0
                    ),
                )
            )
        if store is not None and key is not None:
            try:
                store.put(key, encode(report))
            except CodecError:
                pass
        return report


def _cold_round(
    workload_config: WorkloadConfig,
    gentranseq_config: GenTranSeqConfig,
    round_index: int,
) -> RoundRecord:
    """One fresh-agent round (module-level so the fabric can ship it)."""
    fresh = AttackCampaign(workload_config, gentranseq_config)
    workload = fresh._round_workload(round_index)
    outcome = fresh.attack.run(workload.pre_state, workload.transactions)
    result = outcome.result
    return RoundRecord(
        round_index=round_index,
        profit_eth=outcome.profit,
        attacked=outcome.attacked,
        first_solution_swaps=tuple(
            result.first_solution_swaps if result else ()
        ),
        elapsed_seconds=result.elapsed_seconds if result else 0.0,
    )


def cold_vs_warm(
    workload_config: WorkloadConfig,
    gentranseq_config: GenTranSeqConfig,
    rounds: int,
    runner: Optional["TaskRunner"] = None,
) -> Tuple[CampaignReport, CampaignReport]:
    """Compare per-round fresh agents against one persistent agent.

    The *cold* report rebuilds the campaign (hence the agent) every
    round; the *warm* report reuses one campaign across all rounds.
    Identical workload seeds make the two directly comparable.  The
    cold rounds are mutually independent, so they fan out over
    ``runner`` (serial by default); the warm campaign is inherently
    sequential (experience carries across rounds) and always runs in
    process.
    """
    from ..parallel import SerialRunner, Task

    warm = AttackCampaign(workload_config, gentranseq_config).run(rounds)
    runner = runner if runner is not None else SerialRunner()
    tasks = [
        Task(
            fn=_cold_round,
            args=(workload_config, gentranseq_config, round_index),
            label=f"cold-round#{round_index}",
        )
        for round_index in range(rounds)
    ]
    cold_report = CampaignReport()
    cold_report.rounds.extend(runner.map(tasks))
    return cold_report, warm
