"""Insertion-action MDP variant (ablation of the swap design choice).

The paper's GENTRANSEQ acts by *swapping* two transactions
(:math:`\\binom{N}{2}` actions).  A natural alternative moves one
transaction to a new position — ``N * (N - 1)`` "take i, insert before
j" actions.  Insertion reaches any permutation in at most ``N - 1``
moves (vs swaps' ``N - 1`` too, but with different neighbourhood
geometry) and is the standard move in list-scheduling local search.
DESIGN.md calls this ablation out; ``bench_ablations`` runs it.

The class reuses the whole scoring/feasibility machinery of
:class:`~repro.core.environment.ReorderEnv` and only overrides the
action set.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from ..errors import DRLError
from .environment import ReorderEnv


@lru_cache(maxsize=None)
def insertion_action_table(sequence_length: int) -> Tuple[Tuple[int, int], ...]:
    """Enumerate (source position, target position) insertion moves.

    ``(i, j)`` removes the transaction at position ``i`` and re-inserts
    it at position ``j`` (positions after removal re-index naturally).
    Identity moves ``(i, i)`` are excluded.  Cached per N, like
    :func:`~repro.core.environment.swap_action_table`.
    """
    return tuple(
        (i, j)
        for i in range(sequence_length)
        for j in range(sequence_length)
        if i != j
    )


class InsertionReorderEnv(ReorderEnv):
    """ReorderEnv with move-to-position actions instead of swaps."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._actions = insertion_action_table(len(self.transactions))

    def step(self, action: int):
        """Move one transaction to a new position and score the replay."""
        if not 0 <= action < len(self._actions):
            raise DRLError(
                f"action {action} outside [0, {len(self._actions)})"
            )
        source, target = self._actions[action]
        moved = self._order.pop(source)
        self._order.insert(target, moved)
        self._steps += 1
        reward, info = self._score()
        done = self._steps >= self.config.steps_per_episode
        observation = self._observe(info.pop("summary", None))
        return observation, reward, done, info
