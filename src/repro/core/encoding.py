"""Transaction-sequence encoding for the DQN (paper Figure 4).

Each transaction becomes an 8-element tensor: type one-hots, IFU
involvement flags, and state-dependent values (current token price,
remaining mintable supply) sampled from a dry-run replay at that
transaction's position.  Stacking the rows gives the 2D tensor the DQN
flattens into its ``8 x N`` input layer.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..config import TX_FEATURE_WIDTH
from ..rollup.ovm import OVM
from ..rollup.state import L2State
from ..rollup.transaction import NFTTransaction, TxKind


class TransactionEncoder:
    """Encodes transaction sequences into DQN observations.

    Normalisation constants come from the pre-state so encodings are
    comparable across candidate orderings of the same collection.
    """

    def __init__(self, pre_state: L2State, ifus: Sequence[str]) -> None:
        self.pre_state = pre_state
        self.ifus = tuple(ifus)
        self._ovm = OVM()
        max_supply = pre_state.nft_config.max_supply
        # Price at one remaining token is the model's observable maximum.
        self._price_ceiling = pre_state.pricing.price(1)
        self._supply_ceiling = float(max_supply)
        self._fee_ceiling = 1.0

    @property
    def feature_width(self) -> int:
        """Features per transaction (always 8, Section V-C-2)."""
        return TX_FEATURE_WIDTH

    def observation_size(self, sequence_length: int) -> int:
        """Width of the flattened observation for ``sequence_length`` txs."""
        return TX_FEATURE_WIDTH * sequence_length

    def encode(self, transactions: Sequence[NFTTransaction]) -> np.ndarray:
        """Flattened ``8 x N`` observation for one candidate ordering."""
        return self.encode_2d(transactions).reshape(-1)

    def encode_from_trace(
        self, transactions: Sequence[NFTTransaction], trace
    ) -> np.ndarray:
        """Flattened observation reusing an existing replay trace.

        The environment already replays each candidate order to score it
        (Eq. 8); passing that trace here avoids a second replay per step.
        """
        return self._rows(transactions, trace).reshape(-1)

    def encode_2d(self, transactions: Sequence[NFTTransaction]) -> np.ndarray:
        """The per-transaction feature matrix of shape ``(N, 8)``."""
        trace = self._ovm.replay(self.pre_state, transactions)
        return self._rows(transactions, trace)

    def _rows(
        self, transactions: Sequence[NFTTransaction], trace
    ) -> np.ndarray:
        fee_ceiling = max(
            [self._fee_ceiling] + [tx.total_fee for tx in transactions]
        )
        rows = np.zeros((len(transactions), TX_FEATURE_WIDTH))
        for index, (tx, step) in enumerate(zip(transactions, trace.steps)):
            ifu_involved = any(tx.involves(ifu) for ifu in self.ifus)
            ifu_gains = tx.recipient in self.ifus or (
                tx.kind is TxKind.MINT and tx.sender in self.ifus
            )
            rows[index] = (
                1.0 if tx.kind is TxKind.MINT else 0.0,
                1.0 if tx.kind is TxKind.TRANSFER else 0.0,
                1.0 if tx.kind is TxKind.BURN else 0.0,
                1.0 if ifu_involved else 0.0,
                1.0 if ifu_gains else 0.0,
                step.result.price_before / self._price_ceiling,
                step.result.remaining_supply / self._supply_ceiling,
                tx.total_fee / fee_ceiling,
            )
        return rows


def encode_for_inference(
    pre_state: L2State,
    ifus: Sequence[str],
    transactions: Sequence[NFTTransaction],
) -> np.ndarray:
    """One-shot encoding helper for solver/DQN comparisons."""
    return TransactionEncoder(pre_state, ifus).encode(transactions)
