"""Transaction-sequence encoding for the DQN (paper Figure 4).

Each transaction becomes an 8-element tensor: type one-hots, IFU
involvement flags, and state-dependent values (current token price,
remaining mintable supply) sampled from a dry-run replay at that
transaction's position.  Stacking the rows gives the 2D tensor the DQN
flattens into its ``8 x N`` input layer.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import TX_FEATURE_WIDTH
from ..rollup.ovm import OVM
from ..rollup.state import L2State
from ..rollup.transaction import NFTTransaction, TxKind


class TransactionEncoder:
    """Encodes transaction sequences into DQN observations.

    Normalisation constants come from the pre-state so encodings are
    comparable across candidate orderings of the same collection.
    """

    def __init__(self, pre_state: L2State, ifus: Sequence[str]) -> None:
        self.pre_state = pre_state
        self.ifus = tuple(ifus)
        self._ovm = OVM()
        max_supply = pre_state.nft_config.max_supply
        # Price at one remaining token is the model's observable maximum.
        self._price_ceiling = pre_state.pricing.price(1)
        self._supply_ceiling = float(max_supply)
        self._fee_ceiling = 1.0
        # Per-transaction features that do not depend on the ordering
        # (type one-hots, IFU flags): encoded once per distinct tx, reused
        # across every permutation of the same collection.
        self._static_rows: dict = {}

    @property
    def feature_width(self) -> int:
        """Features per transaction (always 8, Section V-C-2)."""
        return TX_FEATURE_WIDTH

    def observation_size(self, sequence_length: int) -> int:
        """Width of the flattened observation for ``sequence_length`` txs."""
        return TX_FEATURE_WIDTH * sequence_length

    def encode(self, transactions: Sequence[NFTTransaction]) -> np.ndarray:
        """Flattened ``8 x N`` observation for one candidate ordering."""
        return self.encode_2d(transactions).reshape(-1)

    def encode_from_trace(
        self, transactions: Sequence[NFTTransaction], trace
    ) -> np.ndarray:
        """Flattened observation reusing an existing replay trace.

        The environment already replays each candidate order to score it
        (Eq. 8); passing that trace here avoids a second replay per step.
        """
        return self._rows(transactions, trace).reshape(-1)

    def encode_columns(
        self,
        transactions: Sequence[NFTTransaction],
        prices_before: Sequence[float],
        remaining_after: Sequence[int],
    ) -> np.ndarray:
        """Flattened observation from replay-engine price/supply columns.

        The incremental engine's ``EvalSummary`` carries the two
        state-dependent features as plain columns; encoding them directly
        skips both the second replay and the trace-object walk.
        """
        return self._rows_from_columns(
            transactions, prices_before, remaining_after
        ).reshape(-1)

    def encode_2d(self, transactions: Sequence[NFTTransaction]) -> np.ndarray:
        """The per-transaction feature matrix of shape ``(N, 8)``."""
        trace = self._ovm.replay(self.pre_state, transactions)
        return self._rows(transactions, trace)

    def _static_features(self, tx: NFTTransaction) -> np.ndarray:
        """Order-independent feature prefix (type one-hots + IFU flags)."""
        row = self._static_rows.get(tx)
        if row is None:
            ifu_involved = any(tx.involves(ifu) for ifu in self.ifus)
            ifu_gains = tx.recipient in self.ifus or (
                tx.kind is TxKind.MINT and tx.sender in self.ifus
            )
            row = np.array(
                (
                    1.0 if tx.kind is TxKind.MINT else 0.0,
                    1.0 if tx.kind is TxKind.TRANSFER else 0.0,
                    1.0 if tx.kind is TxKind.BURN else 0.0,
                    1.0 if ifu_involved else 0.0,
                    1.0 if ifu_gains else 0.0,
                )
            )
            self._static_rows[tx] = row
        return row

    def _rows(
        self, transactions: Sequence[NFTTransaction], trace
    ) -> np.ndarray:
        return self._rows_from_columns(
            transactions,
            [step.result.price_before for step in trace.steps],
            [step.result.remaining_supply for step in trace.steps],
        )

    def _rows_from_columns(
        self,
        transactions: Sequence[NFTTransaction],
        prices_before: Sequence[float],
        remaining_after: Sequence[int],
    ) -> np.ndarray:
        count = len(transactions)
        fees = np.fromiter(
            (tx.total_fee for tx in transactions), dtype=float, count=count
        )
        fee_ceiling = (
            max(self._fee_ceiling, float(fees.max()))
            if count
            else self._fee_ceiling
        )
        rows = np.empty((count, TX_FEATURE_WIDTH))
        for index, tx in enumerate(transactions):
            rows[index, :5] = self._static_features(tx)
        rows[:, 5] = (
            np.fromiter(prices_before, dtype=float, count=count)
            / self._price_ceiling
        )
        rows[:, 6] = (
            np.fromiter(remaining_after, dtype=float, count=count)
            / self._supply_ceiling
        )
        rows[:, 7] = fees / fee_ceiling
        return rows


def encode_for_inference(
    pre_state: L2State,
    ifus: Sequence[str],
    transactions: Sequence[NFTTransaction],
) -> np.ndarray:
    """One-shot encoding helper for solver/DQN comparisons."""
    return TransactionEncoder(pre_state, ifus).encode(transactions)
