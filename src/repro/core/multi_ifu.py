"""Objectives over one or more illicitly favored users.

Figures 6 and 7 serve multiple IFUs from a single reordering.  The
environment optimises a scalar objective over the IFU set; we provide the
mean-wealth objective (the paper's "maximize the balance of the
IFU/IFUs") and a max-min variant that forbids sacrificing one IFU for
another.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..rollup.state import L2State

#: An objective maps {ifu: final_wealth} to a scalar to maximise.
Objective = Callable[[Dict[str, float]], float]


def mean_wealth(final_wealth: Dict[str, float]) -> float:
    """Average final balance across IFUs (the paper's default)."""
    if not final_wealth:
        return 0.0
    return sum(final_wealth.values()) / len(final_wealth)


def min_wealth_gain(final_wealth: Dict[str, float]) -> float:
    """Worst-off IFU's balance; maximising it shares gains fairly."""
    if not final_wealth:
        return 0.0
    return min(final_wealth.values())


def min_gain_objective(original_wealth: Dict[str, float]) -> Objective:
    """Maximise the worst IFU's *gain* over its original-order wealth.

    A candidate order only scores above zero when every IFU strictly
    benefits — the strongest reading of "serving" several IFUs, and the
    one that makes Figure 6's per-IFU profit fall with the IFU count.
    """

    def objective(final_wealth: Dict[str, float]) -> float:
        if not final_wealth:
            return 0.0
        return min(
            final_wealth[ifu] - original_wealth.get(ifu, 0.0)
            for ifu in final_wealth
        )

    return objective


def ifu_objective(name: str = "mean") -> Objective:
    """Resolve an objective by name (``"mean"`` or ``"min"``).

    The ``"min-gain"`` objective needs the original-order wealth and is
    built per-run via :func:`min_gain_objective`.
    """
    if name == "mean":
        return mean_wealth
    if name == "min":
        return min_wealth_gain
    raise ValueError(f"unknown IFU objective {name!r}")


def wealth_of(state: L2State, ifus: Sequence[str]) -> Dict[str, float]:
    """Final wealth of every IFU under ``state``."""
    return {ifu: state.wealth(ifu) for ifu in ifus}
