"""Profit accounting helpers shared by the evaluation benches."""

from __future__ import annotations

from typing import Sequence

from ..config import eth_to_satoshi


def profit_eth(final_balance: float, original_balance: float) -> float:
    """Attack profit in ETH: final minus original-order balance."""
    return final_balance - original_balance


def profit_percent(final_balance: float, original_balance: float) -> float:
    """Relative profit in percent (the case studies' +7% / +24%)."""
    if original_balance == 0.0:
        return 0.0
    return 100.0 * (final_balance - original_balance) / original_balance


def profit_satoshi(final_balance: float, original_balance: float) -> float:
    """Profit in the satoshi-equivalents Figure 7 reports."""
    return eth_to_satoshi(final_balance - original_balance)


def total_profit(per_ifu_profits: Sequence[float]) -> float:
    """Summed profit across all served IFUs (Figure 7's y-axis)."""
    return float(sum(per_ifu_profits))


def average_profit(per_ifu_profits: Sequence[float]) -> float:
    """Mean profit per IFU (Figure 6's y-axis)."""
    if not per_ifu_profits:
        return 0.0
    return float(sum(per_ifu_profits)) / len(per_ifu_profits)
