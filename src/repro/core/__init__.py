"""The paper's primary contribution: the PAROLE attack.

* :mod:`repro.core.arbitrage`   — the opportunity pre-check (Section V-B);
* :mod:`repro.core.encoding`    — transaction → 8-feature tensors (Fig. 4);
* :mod:`repro.core.environment` — the GENTRANSEQ MDP (Section V-C-1);
* :mod:`repro.core.gentranseq`  — the DQN-driven reordering module;
* :mod:`repro.core.parole`      — Algorithm 1, end-to-end orchestration;
* :mod:`repro.core.multi_ifu`   — objectives over several favored users;
* :mod:`repro.core.metrics`     — profit accounting helpers.
"""

from .arbitrage import ArbitrageAssessment, assess_opportunity
from .encoding import TransactionEncoder
from .environment import ReorderEnv, swap_action_table
from .insertion_env import InsertionReorderEnv, insertion_action_table
from .gentranseq import GenTranSeq, GenTranSeqResult
from .multi_ifu import (
    ifu_objective,
    mean_wealth,
    min_gain_objective,
    min_wealth_gain,
)
from .parole import ParoleAttack, AttackOutcome
from .campaign import AttackCampaign, CampaignReport, RoundRecord, cold_vs_warm
from .metrics import profit_eth, profit_percent, profit_satoshi

__all__ = [
    "ArbitrageAssessment",
    "assess_opportunity",
    "TransactionEncoder",
    "ReorderEnv",
    "swap_action_table",
    "InsertionReorderEnv",
    "insertion_action_table",
    "GenTranSeq",
    "GenTranSeqResult",
    "ifu_objective",
    "mean_wealth",
    "min_gain_objective",
    "min_wealth_gain",
    "ParoleAttack",
    "AttackOutcome",
    "AttackCampaign",
    "CampaignReport",
    "RoundRecord",
    "cold_vs_warm",
    "profit_eth",
    "profit_percent",
    "profit_satoshi",
]
