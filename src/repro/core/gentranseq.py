"""The GENTRANSEQ module: DQN-driven transaction re-ordering.

Wraps the :class:`~repro.core.environment.ReorderEnv` MDP and the
:class:`~repro.drl.dqn.DQNAgent` into the module Figure 3 shows inside
the PAROLE box: given the IFU information and the L2 chain state, train
for the configured episode budget and return the best profitable order
found (or the original order when none exists).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import GenTranSeqConfig
from ..drl import DQNAgent, TrainingHistory, train
from ..rollup.state import L2State
from ..rollup.transaction import NFTTransaction
from .environment import ReorderEnv
from .multi_ifu import Objective, mean_wealth


@dataclass
class GenTranSeqResult:
    """Outcome of one GENTRANSEQ run."""

    original_sequence: Tuple[NFTTransaction, ...]
    best_sequence: Tuple[NFTTransaction, ...]
    original_objective: float
    best_objective: float
    history: TrainingHistory
    elapsed_seconds: float
    first_solution_swaps: List[int] = field(default_factory=list)

    @property
    def profit(self) -> float:
        """Objective gain over the original ordering (ETH)."""
        return self.best_objective - self.original_objective

    @property
    def improved(self) -> bool:
        """Whether a strictly better feasible ordering was found."""
        return self.profit > 1e-12

    @property
    def episode_rewards(self) -> List[float]:
        """Per-episode cumulative rewards (Figure 8's raw series)."""
        return self.history.rewards


class GenTranSeq:
    """The reordering module an adversarial aggregator embeds."""

    def __init__(
        self,
        config: Optional[GenTranSeqConfig] = None,
        objective: Objective = mean_wealth,
    ) -> None:
        self.config = config or GenTranSeqConfig()
        self.objective = objective
        self._agent: Optional[DQNAgent] = None
        self._env_shape: Optional[Tuple[int, int]] = None

    def build_env(
        self,
        pre_state: L2State,
        transactions: Sequence[NFTTransaction],
        ifus: Sequence[str],
        objective: Optional[Objective] = None,
    ) -> ReorderEnv:
        """Construct the MDP for one collection."""
        return ReorderEnv(
            pre_state=pre_state,
            transactions=transactions,
            ifus=ifus,
            config=self.config,
            objective=objective or self.objective,
        )

    def _agent_for(self, env: ReorderEnv) -> DQNAgent:
        shape = (env.observation_size, env.action_count)
        if self._agent is None or self._env_shape != shape:
            rng = np.random.default_rng(self.config.seed)
            self._agent = DQNAgent(
                observation_size=shape[0],
                action_count=shape[1],
                config=self.config,
                rng=rng,
            )
            self._env_shape = shape
        return self._agent

    def optimize(
        self,
        pre_state: L2State,
        transactions: Sequence[NFTTransaction],
        ifus: Sequence[str],
        stop_when_profitable: bool = False,
        objective: Optional[Objective] = None,
        checkpointer=None,
    ) -> GenTranSeqResult:
        """Train the DQN on this collection and return the best order.

        The agent persists across calls with matching shapes, so repeated
        rounds keep accumulated experience (the IFU "trains the model
        offline", Section VII-F).  ``objective`` overrides the module's
        objective for this run only (used by the min-gain mode, whose
        objective depends on the original order's outcome).
        ``checkpointer`` (a
        :class:`~repro.store.checkpoint.TrainingCheckpointer`) resumes
        an interrupted training run from its last persisted episode.
        """
        env = self.build_env(pre_state, transactions, ifus, objective=objective)
        agent = self._agent_for(env)
        started = time.perf_counter()
        history = train(
            env,
            agent,
            self.config,
            stop_when_profitable=stop_when_profitable,
            checkpointer=checkpointer,
        )
        elapsed = time.perf_counter() - started
        # Mirror the run's replay-engine counters into the metrics
        # registry (no-op when telemetry is disabled).
        env.replay_stats()
        best_sequence = env.sequence_for(env.best_order)
        return GenTranSeqResult(
            original_sequence=tuple(transactions),
            best_sequence=best_sequence,
            original_objective=env.original_objective,
            best_objective=env.best_objective,
            history=history,
            elapsed_seconds=elapsed,
            first_solution_swaps=history.first_profit_steps(),
        )

    def infer(
        self,
        pre_state: L2State,
        transactions: Sequence[NFTTransaction],
        ifus: Sequence[str],
        max_swaps: Optional[int] = None,
    ) -> GenTranSeqResult:
        """Greedy inference with the trained Q-network (no learning).

        Used by the Figure 11 comparison: the IFU trains offline, the
        aggregator runs cheap greedy rollouts online.
        """
        env = self.build_env(pre_state, transactions, ifus)
        agent = self._agent_for(env)
        budget = max_swaps or self.config.steps_per_episode
        started = time.perf_counter()
        observation = env.reset()
        for _ in range(budget):
            action = agent.act(observation, greedy=True)
            observation, _, done, info = env.step(action)
            if done or info.get("profit", 0.0) > 0.0:
                break
        elapsed = time.perf_counter() - started
        return GenTranSeqResult(
            original_sequence=tuple(transactions),
            best_sequence=env.sequence_for(env.best_order),
            original_objective=env.original_objective,
            best_objective=env.best_objective,
            history=TrainingHistory(),
            elapsed_seconds=elapsed,
            first_solution_swaps=(
                [env.first_profit_swaps] if env.first_profit_swaps else []
            ),
        )

    def inference_memory_bytes(self) -> int:
        """Q-network parameter footprint (Figure 11(b))."""
        if self._agent is None:
            return 0
        return self._agent.inference_memory_bytes()

    def save_model(self, path) -> None:
        """Persist the trained Q-network (Section VII-F's offline model).

        Raises when no agent has been trained yet.
        """
        if self._agent is None:
            from ..errors import DRLError

            raise DRLError("no trained agent to save; run optimize() first")
        self._agent.q_network.save(path)

    def load_model(
        self,
        path,
        pre_state: L2State,
        transactions: Sequence[NFTTransaction],
        ifus: Sequence[str],
    ) -> None:
        """Load a saved Q-network, shaped for the given problem class.

        The environment built from the arguments determines the expected
        observation/action sizes; a mismatched archive raises.
        """
        import numpy as np

        from ..drl import DQNAgent, MLP
        from ..errors import DRLError

        env = self.build_env(pre_state, transactions, ifus)
        rng = np.random.default_rng(self.config.seed)
        network = MLP.load(
            path, rng, learning_rate=self.config.gradient_learning_rate
        )
        if (
            network.input_size != env.observation_size
            or network.output_size != env.action_count
        ):
            raise DRLError(
                f"archive shaped ({network.input_size} -> "
                f"{network.output_size}) does not fit problem "
                f"({env.observation_size} -> {env.action_count})"
            )
        agent = DQNAgent(
            observation_size=env.observation_size,
            action_count=env.action_count,
            config=self.config,
            rng=rng,
        )
        agent.q_network.copy_weights_from(network)
        agent.sync_target()
        self._agent = agent
        self._env_shape = (env.observation_size, env.action_count)
