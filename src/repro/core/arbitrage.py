"""Arbitrage-opportunity assessment (paper Section V-B).

Before spending DQN budget, the PAROLE module checks whether the
collected transaction set can possibly be reordered in the IFU's favor:

* the IFU must be involved in multiple transactions — "ideally at least
  a pair of minting and transfer transactions";
* the set must contain at least one price-moving transaction (mint or
  burn) whose position relative to the IFU's transactions matters;
* sequences with fewer than two transactions are trivially unalterable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..rollup.transaction import NFTTransaction, TxKind


@dataclass(frozen=True)
class ArbitrageAssessment:
    """Result of the pre-check, with per-IFU involvement detail."""

    has_opportunity: bool
    reasons: Tuple[str, ...]
    involvement: Dict[str, int]
    price_moving_count: int
    ifu_mint_count: int
    ifu_transfer_count: int
    ifu_burn_count: int

    @property
    def total_ifu_involvement(self) -> int:
        """Total transactions any IFU participates in."""
        return sum(self.involvement.values())


def assess_opportunity(
    transactions: Sequence[NFTTransaction],
    ifus: Sequence[str],
) -> ArbitrageAssessment:
    """Decide whether reordering could favor the IFUs.

    The check is conservative in the permissive direction (it may pass a
    set the DQN later fails to improve) but never blocks a genuinely
    profitable set: every profitable reordering requires IFU involvement
    plus at least one price-moving transaction, which is exactly what is
    tested here.
    """
    reasons: List[str] = []
    involvement = {ifu: 0 for ifu in ifus}
    ifu_mints = ifu_transfers = ifu_burns = 0
    price_moving = 0
    for tx in transactions:
        if tx.kind in (TxKind.MINT, TxKind.BURN):
            price_moving += 1
        for ifu in ifus:
            if tx.involves(ifu):
                involvement[ifu] += 1
                if tx.kind is TxKind.MINT:
                    ifu_mints += 1
                elif tx.kind is TxKind.TRANSFER:
                    ifu_transfers += 1
                else:
                    ifu_burns += 1

    if len(transactions) < 2:
        reasons.append("fewer than two transactions: nothing to reorder")
    if all(count == 0 for count in involvement.values()):
        reasons.append("no IFU participates in any collected transaction")
    elif all(count < 2 for count in involvement.values()):
        reasons.append(
            "no IFU is involved in multiple transactions; a single "
            "transaction cannot be repositioned against itself profitably"
        )
    if price_moving == 0:
        reasons.append(
            "no mint or burn in the set: the unit price is constant, so "
            "every ordering yields the same final balance"
        )

    has_opportunity = not reasons
    if has_opportunity and ifu_mints == 0 and ifu_burns == 0:
        # IFU only transfers; still exploitable when others move the price,
        # so flag the weaker setup without blocking it.
        reasons = (
            "IFU lacks a mint/transfer pair; relying on third-party "
            "price movement only",
        )
        reasons = tuple(reasons)
    return ArbitrageAssessment(
        has_opportunity=has_opportunity,
        reasons=tuple(reasons),
        involvement=involvement,
        price_moving_count=price_moving,
        ifu_mint_count=ifu_mints,
        ifu_transfer_count=ifu_transfers,
        ifu_burn_count=ifu_burns,
    )
