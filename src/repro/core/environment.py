"""The GENTRANSEQ MDP (paper Section V-C-1).

* **State** — the current ordering of the N collected transactions,
  observed as the flattened ``8 x N`` encoding of Figure 4.
* **Action** — swapping two transactions: :math:`\\binom{N}{2}` actions.
* **Reward** — Eq. 8: ``r_k = W * (B_IFU^{N,k} - B_IFU^{N,0})`` where
  both balances are *final* balances after a full OVM replay; ``W`` is a
  high positive penalty weight for penalizable actions (orders that break
  an originally-executable transaction or decrease the final balance) and
  1 otherwise.

The environment also tracks, per episode, the first swap count at which a
profitable and *feasible* order appeared (Figure 9's "solution size") and
the best order seen so far.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations, compress
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import GenTranSeqConfig
from ..drl.env_base import Environment
from ..errors import DRLError
from ..rollup.replay_engine import (
    BatchReplayEngine,
    EvalSummary,
    IncrementalOVM,
    PermutationCache,
    ReplayEngineStats,
)
from ..rollup.state import L2State
from ..rollup.transaction import NFTTransaction
from ..telemetry import get_metrics
from .encoding import TransactionEncoder
from .multi_ifu import Objective, mean_wealth


@lru_cache(maxsize=None)
def swap_action_table(sequence_length: int) -> Tuple[Tuple[int, int], ...]:
    """Enumerate the ``N choose 2`` swap actions as (i, j) index pairs.

    Cached: every env/solver instantiation for the same N shares one
    table instead of rebuilding the O(N²) tuple.
    """
    return tuple(combinations(range(sequence_length), 2))


class ReorderEnv(Environment):
    """Transaction-reordering MDP for one aggregator's collection."""

    def __init__(
        self,
        pre_state: L2State,
        transactions: Sequence[NFTTransaction],
        ifus: Sequence[str],
        config: Optional[GenTranSeqConfig] = None,
        objective: Objective = mean_wealth,
    ) -> None:
        if len(transactions) < 2:
            raise DRLError("need at least two transactions to reorder")
        self.config = config or GenTranSeqConfig()
        self.pre_state = pre_state
        self.transactions = tuple(transactions)
        self.ifus = tuple(ifus)
        self.objective = objective
        #: Shared counters for the replay engine and permutation cache,
        #: surfaced through :meth:`replay_stats` / ``solvers/profiling``.
        self._stats = ReplayEngineStats()
        self._engine = IncrementalOVM(
            pre_state,
            self.transactions,
            stats=self._stats,
            wealth_users=self.ifus,
        )
        # Single authoritative evaluation cache.  The batch engine below
        # is stateless and `IncrementalOVM` only keeps its resume prefix,
        # so a scored ordering is held exactly once — here.
        self._eval_cache = PermutationCache(
            maxsize=self.config.evaluation_cache_size, stats=self._stats
        )
        # Columnar batch kernel, built lazily on the first multi-miss
        # population (shares the stats object, so batch counters land in
        # the same `replay_stats()` surface).
        self._batch_engine: Optional[BatchReplayEngine] = None
        self._encoder = TransactionEncoder(pre_state, ifus)
        self._actions = swap_action_table(len(transactions))
        self._order: List[int] = list(range(len(transactions)))
        self._steps = 0
        # Bound once at construction: a shared no-op unless a metrics
        # registry was enabled beforehand, so the hot scoring path pays
        # a single inert method call when telemetry is off.
        self._m_evaluations = get_metrics().counter("env.evaluations")

        identity = tuple(self._order)
        baseline = self._engine.evaluate(identity)
        #: Final objective value of the original ordering — ``B^{N,0}``.
        self.original_objective = self.objective(baseline.wealth)
        #: Which positions executed under the original ordering; a candidate
        #: order must keep all of these executable to be feasible.
        self._original_executed = frozenset(
            compress(identity, baseline.executed)
        )
        # Seed the cache so reset() never replays the identity order again.
        self._eval_cache.put(
            identity, self._evaluation_from_summary(identity, baseline)
        )
        self.best_order: Tuple[int, ...] = tuple(self._order)
        self.best_objective = self.original_objective
        self.first_profit_swaps: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Environment protocol
    # ------------------------------------------------------------------ #

    @property
    def observation_size(self) -> int:
        """Flattened observation width (``8 x N``)."""
        return self._encoder.observation_size(len(self.transactions))

    @property
    def action_count(self) -> int:
        """``N choose 2`` pairwise swaps."""
        return len(self._actions)

    @property
    def sequence_length(self) -> int:
        """N — the aggregator's "Mempool" size."""
        return len(self.transactions)

    def action_pair(self, action: int) -> Tuple[int, int]:
        """The (position i, position j) swap an action index denotes."""
        return self._actions[action]

    def current_order(self) -> Tuple[int, ...]:
        """Current permutation as indices into the original sequence."""
        return tuple(self._order)

    def current_sequence(self) -> Tuple[NFTTransaction, ...]:
        """Current candidate ordering as transactions."""
        return tuple(self.transactions[i] for i in self._order)

    def sequence_for(self, order: Sequence[int]) -> Tuple[NFTTransaction, ...]:
        """Materialise a permutation into transactions."""
        return tuple(self.transactions[i] for i in order)

    def reset(self) -> np.ndarray:
        """Restart from the original fee-priority ordering."""
        self._order = list(range(len(self.transactions)))
        self._steps = 0
        self.first_profit_swaps = None
        # The identity evaluation is seeded at construction, so this is a
        # cache hit: no replay happens on reset.
        evaluation = self.evaluate_order(self._order)
        return self._observe(evaluation["summary"])

    def step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        """Swap two transactions and score the resulting full replay."""
        if not 0 <= action < len(self._actions):
            raise DRLError(
                f"action {action} outside [0, {len(self._actions)})"
            )
        i, j = self._actions[action]
        self._order[i], self._order[j] = self._order[j], self._order[i]
        self._steps += 1
        reward, info = self._score()
        done = self._steps >= self.config.steps_per_episode
        observation = self._observe(info.pop("summary", None))
        return observation, reward, done, info

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #

    def evaluate_order(self, order: Sequence[int]) -> Dict[str, Any]:
        """Score a permutation, reusing cached prefixes and evaluations.

        Repeated orders are answered from an LRU cache; fresh orders are
        replayed incrementally from the longest prefix shared with the
        previous evaluation (see :mod:`repro.rollup.replay_engine`).  The
        engine's :class:`~repro.rollup.replay_engine.EvalSummary` is kept
        in ``info["summary"]`` so the observation encoding can reuse its
        price/supply columns instead of replaying a second time.
        """
        key = tuple(order)
        self._m_evaluations.inc()
        cached = self._eval_cache.get(key)
        if cached is None:
            summary = self._engine.evaluate(key)
            cached = self._evaluation_from_summary(key, summary)
            self._eval_cache.put(key, cached)
        # Shallow copy: callers mutate the info dict (e.g. pop the summary).
        return dict(cached)

    def evaluate_orders(
        self, orders: Sequence[Sequence[int]]
    ) -> List[Dict[str, Any]]:
        """Score a population of permutations in one columnar replay.

        LRU-aware batch scoring: candidates already held by the
        evaluation cache are answered from it; a *single* miss routes
        through the incremental engine (which resumes from the shared
        prefix); two or more distinct misses are scored by the columnar
        batch kernel in one :meth:`BatchReplayEngine.evaluate_many`
        call.  Duplicate misses within the population replay once.

        Returns one evaluation dict per input order, positionally, each
        identical to what :meth:`evaluate_order` returns for that order
        — population solvers call this with whole candidate sets
        (neighbourhoods, restart chains, insertion frontiers) instead of
        looping over ``evaluate_order``.
        """
        keys = [tuple(order) for order in orders]
        results: List[Optional[Dict[str, Any]]] = [None] * len(keys)
        misses: Dict[Tuple[int, ...], List[int]] = {}
        for index, key in enumerate(keys):
            self._m_evaluations.inc()
            cached = self._eval_cache.get(key)
            if cached is not None:
                results[index] = dict(cached)
            else:
                misses.setdefault(key, []).append(index)
        if misses:
            miss_keys = list(misses)
            if len(miss_keys) == 1:
                summaries = [self._engine.evaluate(miss_keys[0])]
            else:
                if self._batch_engine is None:
                    self._batch_engine = BatchReplayEngine(
                        self.pre_state,
                        self.transactions,
                        stats=self._stats,
                        wealth_users=self.ifus,
                    )
                summaries = self._batch_engine.evaluate_many(miss_keys)
            for key, summary in zip(miss_keys, summaries):
                cached = self._evaluation_from_summary(key, summary)
                self._eval_cache.put(key, cached)
                for index in misses[key]:
                    results[index] = dict(cached)
        return results  # type: ignore[return-value]

    def replay_stats(self) -> Dict[str, float]:
        """Replay-engine and evaluation-cache counters for profiling.

        Also mirrors the counters into the active metrics registry (a
        no-op when telemetry is disabled), so trace snapshots and run
        manifests see the replay work avoided.
        """
        return self._stats.publish()

    def _evaluation_from_summary(
        self, order: Tuple[int, ...], summary: EvalSummary
    ) -> Dict[str, Any]:
        executed = frozenset(compress(order, summary.executed))
        feasible = (
            self._original_executed <= executed and summary.consistent
        )
        value = self.objective(summary.wealth)
        return {
            "objective": value,
            "delta": value - self.original_objective,
            "feasible": feasible,
            "executed_count": summary.executed_count,
            "final_price": summary.final_price,
            "summary": summary,
        }

    def _score(self) -> Tuple[float, Dict[str, Any]]:
        evaluation = self.evaluate_order(self._order)
        delta = evaluation["delta"]
        feasible = evaluation["feasible"]
        scale = self.config.reward_scale
        if not feasible:
            # Breaking an originally-executable transaction is the
            # penalizable case: W amplifies a guaranteed-negative reward.
            magnitude = max(
                abs(delta), self.pre_state.nft_config.initial_price_eth
            )
            reward = -self.config.penalty_weight * magnitude * scale
            profit = 0.0
        elif delta < 0.0:
            reward = self.config.penalty_weight * delta * scale
            profit = 0.0
        else:
            reward = delta * scale
            profit = delta
        if profit > 0.0:
            if self.first_profit_swaps is None:
                self.first_profit_swaps = self._steps
            if evaluation["objective"] > self.best_objective:
                self.best_objective = evaluation["objective"]
                self.best_order = tuple(self._order)
        info = dict(evaluation)
        info["profit"] = profit
        info["swaps"] = self._steps
        return reward, info

    def _observe(self, summary: Optional[EvalSummary] = None) -> np.ndarray:
        sequence = self.current_sequence()
        if summary is not None:
            return self._encoder.encode_columns(
                sequence, summary.prices_before, summary.remaining_after
            )
        return self._encoder.encode(sequence)
