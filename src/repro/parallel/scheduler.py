"""Work-stealing scheduler for heterogeneous task costs.

The static chunked pool in :mod:`.fabric` assumes tasks cost roughly
the same: it cuts the submission list into contiguous chunks up front
and lets idle workers pull whole chunks.  The workloads the fabric now
carries — chaos-matrix cells, DQN training runs, streaming lanes — are
wildly heterogeneous, and one expensive task buried in a fat chunk
serializes behind an idle pool.  This module schedules those workloads
honestly:

* :class:`TaskCostModel` — per-task cost estimates seeded from prior
  observed timings (optionally persisted in a ``fabric-cost:``
  namespace of the content-addressed result store), so known-expensive
  cells are scheduled first;
* LPT (longest-processing-time-first) initial assignment over
  per-worker local queues, built by :func:`plan_queues`;
* adaptive chunk splitting (:func:`next_chunk_size`) — early dispatches
  move big chunks to amortize IPC, the tail degrades to single tasks so
  no worker sits on a fat remainder;
* **stealing**: a worker that drains its local queue takes the
  expensive front half of the most-loaded victim's remaining queue
  (steal-half, brokered by the scheduler, counted in
  ``fabric.steals``);
* worker churn tolerance: a dead endpoint's outstanding and queued
  tasks are requeued and no task outcome is recorded twice, so store
  writes stay single-winner.

The determinism contract is untouched: results are reassembled by
submission index, every task owns its seed, and which worker ran what
is never observable in the output — only in telemetry
(``fabric.steals``, ``fabric.idle_ms``, per-worker utilization).
:class:`WorkStealingScheduler` is backend-agnostic; it drives any
:class:`WorkerEndpoint` (local pipe-connected processes in
:mod:`.fabric`, socket-connected remote workers in :mod:`.remote`).
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ParallelError, ReproError
from ..telemetry import get_metrics, get_tracer
from .worker import ChunkPayload, ChunkResult, TaskError

__all__ = [
    "COST_NAMESPACE",
    "EndpointDied",
    "TaskCostModel",
    "WorkerEndpoint",
    "WorkStealingScheduler",
    "cost_group",
    "next_chunk_size",
    "plan_queues",
]

#: Result-store namespace holding observed task costs (seconds).
COST_NAMESPACE = "fabric-cost"

_DIGIT_RUN = re.compile(r"\d+")


class EndpointDied(ReproError):
    """A worker endpoint stopped responding (crash, disconnect, timeout)."""


def cost_group(fn: Any, label: str = "") -> Optional[str]:
    """The cost-model bucket a task belongs to.

    Costs generalize across *kinds* of tasks, not exact argument
    tuples (an exact repeat would be served by the result store, never
    scheduled at all).  The bucket is the function's qualified name
    plus the task label with digit runs collapsed, so ``fig6[...]#3``
    and ``fig6[...]#17`` share a bucket while chaos scenarios with
    different names stay distinct.  Unnameable callables get no bucket
    (→ default cost).
    """
    qualname = getattr(fn, "__qualname__", None)
    module = getattr(fn, "__module__", None)
    if not qualname or not module:
        return None
    if "<lambda>" in qualname or "<locals>" in qualname:
        return None
    bucket = f"{module}:{qualname}"
    if label:
        bucket += "|" + _DIGIT_RUN.sub("#", label)
    return bucket


class TaskCostModel:
    """EWMA of observed per-task wall-clock seconds, by cost group.

    With a ``store`` the model persists across runs (namespace
    ``fabric-cost:``): the first sweep observes, later sweeps schedule
    known-expensive groups first (LPT order).  Without one it still
    learns *within* a batch — stealing keeps mid-batch estimates
    honest.  Estimates only shape the schedule; they can never change
    results, so a cold/stale/wrong model costs time, not correctness.
    """

    def __init__(
        self,
        store: Optional[Any] = None,
        default_cost: float = 1.0,
        alpha: float = 0.4,
    ) -> None:
        self._store = store.namespaced(COST_NAMESPACE) if store is not None else None
        self.default_cost = float(default_cost)
        self.alpha = float(alpha)
        self._ewma: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._loaded: Dict[str, bool] = {}
        self._dirty: set = set()

    def _load(self, group: str) -> None:
        if self._loaded.get(group) or self._store is None:
            return
        self._loaded[group] = True
        value, found = self._store.fetch_object("cost:" + group)
        if found and isinstance(value, dict) and "ewma" in value:
            self._ewma.setdefault(group, float(value["ewma"]))
            self._counts.setdefault(group, int(value.get("count", 1)))

    def estimate(self, fn: Any, label: str = "") -> float:
        """Expected seconds for one task of this kind."""
        group = cost_group(fn, label)
        if group is None:
            return self.default_cost
        self._load(group)
        return self._ewma.get(group, self.default_cost)

    def observe(self, fn: Any, label: str, seconds: float) -> None:
        """Fold one observed task duration into the model."""
        group = cost_group(fn, label)
        if group is None or seconds < 0:
            return
        self._load(group)
        previous = self._ewma.get(group)
        if previous is None:
            self._ewma[group] = float(seconds)
        else:
            self._ewma[group] = (
                self.alpha * float(seconds) + (1.0 - self.alpha) * previous
            )
        self._counts[group] = self._counts.get(group, 0) + 1
        self._dirty.add(group)

    def flush(self) -> int:
        """Persist updated groups to the store; returns how many."""
        if self._store is None:
            self._dirty.clear()
            return 0
        written = 0
        for group in sorted(self._dirty):
            self._store.put_object(
                "cost:" + group,
                {"ewma": self._ewma[group], "count": self._counts[group]},
            )
            written += 1
        self._dirty.clear()
        return written


def next_chunk_size(
    queue_length: int, chunk_factor: int = 4, min_chunk: int = 1
) -> int:
    """Adaptive dispatch granularity (guided self-scheduling).

    Each dispatch takes ``ceil(queue/chunk_factor)`` of the worker's
    remaining local queue: early chunks are large (amortizing IPC and
    pickling), the tail degrades to ``min_chunk`` so the last expensive
    task never drags a fat chunk behind it and leftovers stay stealable.
    """
    if queue_length <= 0:
        return 0
    size = -(-queue_length // max(1, chunk_factor))
    return max(min(min_chunk, queue_length), min(size, queue_length))


def plan_queues(
    estimates: Sequence[float], workers: int
) -> List[List[int]]:
    """LPT assignment of task indices onto ``workers`` local queues.

    Tasks are taken in descending estimated cost (stable on ties, so a
    cold model degrades to submission order) and each goes to the
    currently least-loaded queue — the classic longest-processing-time
    heuristic, ≤ 4/3·OPT makespan.  Each queue comes back in
    expensive-first order: dispatch pops from the *front* so long tasks
    start immediately and the cheap tail back-fills, and a thief steals
    the expensive *front* half of whatever remains.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    order = sorted(
        range(len(estimates)), key=lambda i: (-estimates[i], i)
    )
    loads = [0.0] * workers
    queues: List[List[int]] = [[] for _ in range(workers)]
    for index in order:
        target = min(range(workers), key=lambda w: (loads[w], w))
        # Appending in descending-cost order keeps every queue
        # expensive-first.
        queues[target].append(index)
        loads[target] += estimates[index]
    return queues


class WorkerEndpoint:
    """One schedulable execution resource (local process, remote host).

    The scheduler talks to every backend through this interface:
    ``send_chunk`` ships ``(chunk_id, entries)``, ``recv_outcome``
    returns one completed :class:`~.worker.ChunkResult` (or ``None``
    for non-result traffic such as heartbeat replies), ``maintain`` is
    the liveness hook called on scheduler ticks.  ``slots`` is how many
    chunks may be in flight at once (a remote host serving with
    ``--jobs 4`` advertises 4).
    """

    ident: str = "worker"
    slots: int = 1

    def waitable(self) -> Any:
        """Object accepted by ``multiprocessing.connection.wait``."""
        raise NotImplementedError

    def send_chunk(
        self,
        chunk_id: int,
        entries: Sequence[Tuple[int, Any, tuple, Dict[str, Any], Optional[int]]],
        capture_telemetry: bool,
        span_buffer_size: int,
    ) -> None:
        raise NotImplementedError

    def recv_outcome(self) -> Optional[Tuple[int, ChunkResult]]:
        """One ``(chunk_id, result)``; ``None`` if the frame was not a
        result.  Raises :class:`EndpointDied` on a dead peer."""
        raise NotImplementedError

    def maintain(self, now: float) -> None:
        """Periodic liveness check; raise :class:`EndpointDied` to kill."""

    def respawn(self) -> bool:
        """Try to bring a dead endpoint back; True on success."""
        return False

    def close(self) -> None:
        """Release the underlying resource."""


@dataclass
class _EndpointState:
    endpoint: WorkerEndpoint
    queue: List[int] = field(default_factory=list)
    #: chunk_id -> list of task indices in flight.
    inflight: Dict[int, List[int]] = field(default_factory=dict)
    busy_seconds: float = 0.0
    tasks_run: int = 0
    alive: bool = True

    @property
    def backlog(self) -> int:
        return len(self.queue)


class WorkStealingScheduler:
    """Drives a batch of tasks over a set of :class:`WorkerEndpoint`.

    One instance per ``_run_batch`` call.  The loop: fill every
    endpoint's slots from its local queue (adaptive chunk size), wait
    for results, persist/record them in submission-index terms, refill
    — stealing half of the most-loaded victim's queue when a worker
    runs dry, requeueing everything a dead endpoint held.  Completion
    order never reaches the caller: results are reassembled by index.
    """

    def __init__(
        self,
        endpoints: Sequence[WorkerEndpoint],
        cost_model: Optional[TaskCostModel] = None,
        chunk_factor: int = 4,
        min_chunk: int = 1,
        tick_seconds: float = 1.0,
        on_telemetry: Optional[Callable[[ChunkResult], None]] = None,
    ) -> None:
        if not endpoints:
            raise ValueError("at least one endpoint required")
        self.cost_model = cost_model or TaskCostModel()
        self.chunk_factor = max(1, chunk_factor)
        self.min_chunk = max(1, min_chunk)
        self.tick_seconds = tick_seconds
        self.on_telemetry = on_telemetry
        self.steals = 0
        self.chunks_dispatched = 0
        self._states = [_EndpointState(endpoint=ep) for ep in endpoints]
        self._next_chunk_id = 0

    # -- dispatch ----------------------------------------------------

    def _dispatch(self, state: _EndpointState, tasks, capture, span_buffer):
        """Send one chunk to ``state`` if it has (or can steal) work."""
        if not state.queue and not self._steal_into(state):
            return False
        size = next_chunk_size(
            len(state.queue), self.chunk_factor * state.endpoint.slots,
            self.min_chunk,
        )
        indices, state.queue = state.queue[:size], state.queue[size:]
        entries = [
            (i, tasks[i].fn, tuple(tasks[i].args), dict(tasks[i].kwargs),
             tasks[i].seed)
            for i in indices
        ]
        chunk_id = self._next_chunk_id
        self._next_chunk_id += 1
        try:
            state.endpoint.send_chunk(chunk_id, entries, capture, span_buffer)
        except EndpointDied:
            # Put the popped slice back so _bury requeues it with the
            # rest of the dead endpoint's work — a death detected on
            # *send* must lose exactly as little as one detected on
            # receive.
            state.queue = indices + state.queue
            raise
        state.inflight[chunk_id] = indices
        self.chunks_dispatched += 1
        return True

    def _steal_into(self, thief: _EndpointState) -> bool:
        victim = max(
            (s for s in self._states if s.alive and s is not thief),
            key=lambda s: s.backlog,
            default=None,
        )
        if victim is None or victim.backlog == 0:
            return False
        # Steal-half from the front: queues are expensive-first, so the
        # thief takes the high-cost half — the costliest remaining work
        # starts immediately on the idle worker while the victim keeps
        # the cheap back-fill it can finish quickly.
        count = -(-victim.backlog // 2)
        stolen, victim.queue = (
            victim.queue[:count],
            victim.queue[count:],
        )
        thief.queue.extend(stolen)
        self.steals += 1
        get_metrics().counter("fabric.steals").inc()
        get_tracer().event(
            "fabric.steal",
            thief=thief.endpoint.ident,
            victim=victim.endpoint.ident,
            tasks=count,
        )
        return True

    def _fill(self, state: _EndpointState, tasks, capture, span_buffer):
        while state.alive and len(state.inflight) < state.endpoint.slots:
            if not self._dispatch(state, tasks, capture, span_buffer):
                break

    # -- failure handling --------------------------------------------

    def _bury(self, state: _EndpointState, done: Dict[int, Any]) -> None:
        """Requeue everything a dead endpoint held, exactly once."""
        state.alive = False
        orphans = [
            i
            for indices in state.inflight.values()
            for i in indices
            if i not in done
        ]
        orphans.extend(i for i in state.queue if i not in done)
        state.inflight.clear()
        state.queue = []
        get_metrics().counter("fabric.worker_deaths").inc()
        get_tracer().event(
            "fabric.worker_died",
            worker=state.endpoint.ident,
            requeued=len(orphans),
        )
        if state.endpoint.respawn():
            state.alive = True
            state.queue = orphans
            return
        survivors = [s for s in self._states if s.alive]
        if not survivors:
            if orphans:
                raise ParallelError(
                    f"all fabric workers died with {len(orphans)} task(s) "
                    f"unfinished (last casualty: {state.endpoint.ident})"
                )
            return
        # Hand the orphans to the least-loaded survivor; stealing will
        # re-balance from there.
        target = min(survivors, key=lambda s: s.backlog)
        target.queue = orphans + target.queue

    # -- main loop ---------------------------------------------------

    def execute(
        self,
        tasks: Sequence[Any],
        persist: Optional[Callable[[int, Any], None]] = None,
        capture_telemetry: bool = False,
        span_buffer_size: int = 4096,
        make_result: Optional[Callable[[int, Any, Optional[TaskError]], Any]] = None,
    ) -> List[Any]:
        """Run every task; returns per-index results in submission order.

        ``make_result(index, value, error)`` builds the caller's result
        record (defaults to the raw triple); ``persist`` is invoked
        exactly once per index, as outcomes arrive.
        """
        from multiprocessing.connection import wait as connection_wait

        if make_result is None:
            make_result = lambda i, v, e: (i, v, e)  # noqa: E731
        total = len(tasks)
        done: Dict[int, Any] = {}
        if total == 0:
            return []
        estimates = [
            self.cost_model.estimate(task.fn, task.label) for task in tasks
        ]
        alive = [s for s in self._states if s.alive]
        queues = plan_queues(estimates, len(alive))
        for state, queue in zip(alive, queues):
            state.queue = queue
        started = time.perf_counter()
        metrics = get_metrics()
        while len(done) < total:
            for state in self._states:
                if state.alive:
                    try:
                        self._fill(
                            state, tasks, capture_telemetry, span_buffer_size
                        )
                    except EndpointDied:
                        # A worker can die between a receive and the
                        # next dispatch (remote disconnect, the
                        # max_chunks_per_connection churn hook); the
                        # failed send is handled exactly like a failed
                        # receive.
                        self._bury(state, done)
            waiting = {
                s.endpoint.waitable(): s
                for s in self._states
                if s.alive and s.inflight
            }
            if not waiting:
                # Work remains but nothing is in flight: every live
                # endpoint refused to dispatch (all dead or all queues
                # empty while tasks are lost) — a scheduler bug surfaced
                # loudly rather than a hang.
                raise ParallelError(
                    f"fabric stalled with {total - len(done)} task(s) "
                    "unassigned and no chunks in flight"
                )
            ready = connection_wait(
                list(waiting), timeout=self.tick_seconds
            )
            now = time.perf_counter()
            if not ready:
                for state in list(self._states):
                    if not state.alive or not state.inflight:
                        continue
                    try:
                        state.endpoint.maintain(now)
                    except EndpointDied:
                        self._bury(state, done)
                continue
            for waitable in ready:
                state = waiting[waitable]
                try:
                    received = state.endpoint.recv_outcome()
                except EndpointDied:
                    self._bury(state, done)
                    continue
                if received is None:
                    continue
                chunk_id, result = received
                indices = state.inflight.pop(chunk_id, None)
                if indices is None:
                    # Late duplicate from a churned worker; everything
                    # in it was already requeued/recorded.
                    continue
                self._absorb(state, result, tasks, done, persist, make_result)
        elapsed = time.perf_counter() - started
        self._publish_utilization(metrics, elapsed)
        self.cost_model.flush()
        return [done[index] for index in range(total)]

    def _absorb(
        self, state, result: ChunkResult, tasks, done, persist, make_result
    ):
        if self.on_telemetry is not None:
            self.on_telemetry(result)
        state.busy_seconds += sum(result.task_seconds) or result.elapsed_seconds
        seconds = list(result.task_seconds) or [None] * len(result.outcomes)
        for (index, value, error), task_secs in zip(result.outcomes, seconds):
            if index not in done:
                # Single-winner: churn can re-run a task, never re-record
                # (or re-persist) its outcome.
                record = make_result(index, value, error)
                done[index] = record
                state.tasks_run += 1
                if persist is not None:
                    persist(index, record)
            # Feed the cost model so the *rest of this batch* (and, with
            # a store, the next run) schedules with observed costs.
            if task_secs is not None:
                task = tasks[index]
                self.cost_model.observe(task.fn, task.label, task_secs)

    def _publish_utilization(self, metrics, elapsed: float) -> None:
        for state in self._states:
            ident = state.endpoint.ident
            budget = max(elapsed, 1e-9) * state.endpoint.slots
            idle = max(0.0, budget - state.busy_seconds)
            metrics.counter("fabric.worker_tasks", worker=ident).inc(
                state.tasks_run
            )
            metrics.counter("fabric.idle_ms", worker=ident).inc(
                round(idle * 1000.0, 3)
            )
            metrics.gauge("fabric.utilization", worker=ident).set(
                min(1.0, state.busy_seconds / budget)
            )
        metrics.gauge("fabric.steals_last_batch").set(self.steals)

    def utilization_report(self) -> List[Dict[str, Any]]:
        """Per-endpoint accounting for benches and debugging."""
        return [
            {
                "worker": state.endpoint.ident,
                "tasks": state.tasks_run,
                "busy_seconds": state.busy_seconds,
                "alive": state.alive,
            }
            for state in self._states
        ]
