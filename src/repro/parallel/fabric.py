"""Deterministic parallel execution fabric for embarrassingly parallel sweeps.

Every PAROLE evaluation is a sweep over independent points — Fig. 6/7
trials, one DQN training run per Fig. 8 epsilon, Fig. 9/11 solver
trials, the chaos matrix.  This module gives them one orchestration
shape:

* a declarative :class:`Task` record — ``(fn, args, kwargs, seed)`` with
  the seed passed explicitly so the task owns its entire random state;
* a :class:`TaskRunner` abstraction with three backends:
  :class:`SerialRunner` (the reference implementation),
  :class:`ProcessRunner` (chunked ``ProcessPoolExecutor`` dispatch with
  spawn-safe worker init), and :class:`AutoRunner` (picks by task count
  x CPU count);
* :func:`spawn_task_seeds` — per-task seeds derived from the sweep seed
  via ``np.random.SeedSequence.spawn``, the recommended derivation for
  new sweeps (statistically independent streams, stable across numpy
  versions and platforms).

**Determinism contract.**  Results are reassembled in submission order
and every task's randomness comes from its explicit seed, so a sweep
produces identical results on every backend, for every worker count,
regardless of completion order.  ``tests/parallel`` asserts byte-equal
JSON payloads for the Fig. 6/7/9 harnesses across ``--jobs 1/2/4``.

**Telemetry.**  When the parent process has a live metrics registry,
workers record into their own chunk-local registry/tracer and ship a
serialized state + span buffer back; the parent folds them in
(``MetricsRegistry.merge`` / ``Tracer.absorb``) in chunk-submission
order, so ``--telemetry --jobs N`` manifests carry the same counts as a
serial run.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ParallelError
from ..store import CodecError, ResultStore, UnkeyableError, task_key
from ..telemetry import get_metrics, get_tracer
from .scheduler import (
    EndpointDied,
    TaskCostModel,
    WorkerEndpoint,
    WorkStealingScheduler,
)
from .worker import (
    ChunkPayload,
    ChunkResult,
    TaskError,
    init_worker,
    run_chunk,
    steal_worker_main,
)

__all__ = [
    "Task",
    "TaskResult",
    "TaskRunner",
    "SerialRunner",
    "ProcessRunner",
    "StealingRunner",
    "AutoRunner",
    "get_runner",
    "parse_worker_addresses",
    "resolve_cache_key",
    "spawn_task_seeds",
]


def spawn_task_seeds(sweep_seed: int, count: int) -> Tuple[int, ...]:
    """Derive ``count`` independent task seeds from one sweep seed.

    Uses ``np.random.SeedSequence(sweep_seed).spawn(count)`` — children
    are statistically independent streams whose values are documented as
    reproducible across numpy versions and platforms — and collapses
    each child to one ``uint32`` so the result can feed any config that
    takes a plain integer seed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    sequence = np.random.SeedSequence(sweep_seed)
    return tuple(
        int(child.generate_state(1, dtype=np.uint32)[0])
        for child in sequence.spawn(count)
    )


@dataclass(frozen=True)
class Task:
    """One declarative unit of sweep work.

    ``fn`` must be picklable for the process backend — a module-level
    function, not a lambda or closure.  A non-None ``seed`` is passed to
    ``fn`` as the keyword argument ``seed``; tasks whose functions need
    several seed streams carry them in ``args``/``kwargs`` instead.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    label: str = ""
    #: Result-store key for this task.  ``None`` (the default) derives a
    #: content-addressed key from ``(fn, args, kwargs, seed)`` whenever
    #: the runner carries a store; set explicitly to pin a key.
    cache_key: Optional[str] = None


def resolve_cache_key(task: Task) -> Optional[str]:
    """The store key a task caches under, or None when uncacheable.

    Explicit ``task.cache_key`` wins; otherwise the key is derived from
    the code fingerprint plus a canonical encoding of the task record
    (see :func:`repro.store.task_key`).  Tasks whose arguments cannot be
    canonically encoded simply run uncached.
    """
    if task.cache_key is not None:
        return task.cache_key
    try:
        return task_key(task.fn, task.args, task.kwargs, task.seed)
    except UnkeyableError:
        return None


@dataclass
class TaskResult:
    """Outcome of one task, tagged with its submission index."""

    index: int
    value: Any = None
    error: Optional[TaskError] = None
    label: str = ""

    @property
    def ok(self) -> bool:
        return self.error is None


class TaskRunner:
    """Executes a batch of tasks; results come back in submission order.

    When :attr:`store` is set (see ``--cache DIR`` / ``get_runner``),
    every cacheable task is looked up in the store *before* dispatch and
    persisted *as its result arrives* — so a killed sweep resumes from
    completed tasks on the next run, and a fully warm batch never
    touches the backend at all.  Cached values round-trip through the
    store codec exactly, keeping warm results byte-identical to cold
    ones (asserted by ``tests/parallel/test_determinism.py``).
    """

    name = "base"

    #: Optional :class:`~repro.store.ResultStore`; assign (or pass to
    #: ``get_runner``) to memoize task results.
    store: Optional[ResultStore] = None

    def run(self, tasks: Sequence[Task]) -> List[TaskResult]:
        """Execute every task; per-task failures land in ``.error``."""
        store = self.store
        if store is None or not tasks:
            return self._run_batch(list(tasks), None)
        metrics = get_metrics()
        m_hits = metrics.counter("store.task_hits")
        m_misses = metrics.counter("store.task_misses")
        m_uncacheable = metrics.counter("store.task_uncacheable")
        results: Dict[int, TaskResult] = {}
        pending: List[Task] = []
        pending_meta: List[Tuple[int, Optional[str]]] = []
        for index, task in enumerate(tasks):
            key = resolve_cache_key(task)
            if key is not None:
                value, found = store.fetch_object(key)
                if found:
                    m_hits.inc()
                    results[index] = TaskResult(
                        index=index, value=value, label=task.label
                    )
                    continue
                m_misses.inc()
            else:
                m_uncacheable.inc()
            pending.append(task)
            pending_meta.append((index, key))

        def persist(local_index: int, result: TaskResult) -> None:
            _, key = pending_meta[local_index]
            if key is None or result.error is not None:
                return
            try:
                store.put_object(key, result.value)
            except CodecError:
                metrics.counter("store.task_unstorable").inc()

        if pending:
            for local_index, result in enumerate(
                self._run_batch(pending, persist)
            ):
                global_index, _ = pending_meta[local_index]
                results[global_index] = TaskResult(
                    index=global_index,
                    value=result.value,
                    error=result.error,
                    label=result.label,
                )
        return [results[index] for index in range(len(tasks))]

    def _run_batch(
        self,
        tasks: List[Task],
        persist: Optional[Callable[[int, TaskResult], None]],
    ) -> List[TaskResult]:
        """Backend hook: execute ``tasks``, calling ``persist`` with each
        ``(batch index, result)`` as results become available (so an
        interrupted batch keeps what already finished)."""
        raise NotImplementedError

    def map(self, tasks: Sequence[Task]) -> List[Any]:
        """Execute every task and return the values in submission order.

        Raises :class:`~repro.errors.ParallelError` on the first failed
        task (carrying the worker-side traceback), mirroring what the
        equivalent serial loop would have raised.
        """
        results = self.run(tasks)
        for result in results:
            if result.error is not None:
                detail = result.label or f"task #{result.index}"
                raise ParallelError(
                    f"{detail} failed with {result.error}\n"
                    f"{result.error.traceback}"
                )
        return [result.value for result in results]

    def close(self) -> None:
        """Release pooled resources (no-op for stateless backends)."""

    def __enter__(self) -> "TaskRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class SerialRunner(TaskRunner):
    """Reference backend: run in-process, in submission order.

    The default everywhere (``--jobs 1``): zero overhead, identical call
    graph to the pre-fabric code, and the behaviour every other backend
    must reproduce byte-for-byte.
    """

    name = "serial"

    def __init__(self, store: Optional[ResultStore] = None) -> None:
        self.store = store

    def _run_batch(
        self,
        tasks: List[Task],
        persist: Optional[Callable[[int, TaskResult], None]],
    ) -> List[TaskResult]:
        from .worker import call_task

        results: List[TaskResult] = []
        for index, task in enumerate(tasks):
            try:
                value = call_task(task.fn, task.args, task.kwargs, task.seed)
                result = TaskResult(index=index, value=value, label=task.label)
            except Exception as exc:
                import traceback as tb_module

                result = TaskResult(
                    index=index,
                    error=TaskError(
                        exc_type=type(exc).__name__,
                        message=str(exc),
                        traceback=tb_module.format_exc(),
                    ),
                    label=task.label,
                )
            # Persist before the failure propagates out of ``map``:
            # everything that completed stays completed.
            if persist is not None:
                persist(index, result)
            results.append(result)
        return results


def _default_start_method() -> str:
    """``fork`` where available (cheap startup), else ``spawn``.

    Workers are spawn-safe either way: the task protocol only ships
    picklable module-level functions, and ``init_worker`` resets any
    telemetry state a fork might have inherited.
    """
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ProcessRunner(TaskRunner):
    """Process-pool backend with chunked dispatch.

    Tasks are split into contiguous chunks (default: enough chunks for
    ~4 per worker, for load balancing without per-task IPC overhead) and
    submitted to a lazily created ``ProcessPoolExecutor``.  The pool is
    kept alive across ``run`` calls so one ``run_all --jobs N`` session
    pays worker startup once; call :meth:`close` (or use the runner as a
    context manager) to tear it down.
    """

    name = "process"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        span_buffer_size: int = 4096,
        store: Optional[ResultStore] = None,
    ) -> None:
        cpu = os.cpu_count() or 1
        self.max_workers = max(1, max_workers if max_workers is not None else cpu)
        self.chunk_size = chunk_size
        self.start_method = start_method or _default_start_method()
        self.span_buffer_size = span_buffer_size
        self.store = store
        self._executor: Optional[ProcessPoolExecutor] = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            import multiprocessing

            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=multiprocessing.get_context(self.start_method),
                initializer=init_worker,
            )
        return self._executor

    def _chunks(
        self, tasks: Sequence[Task]
    ) -> List[Tuple[Tuple[int, Any, tuple, Dict[str, Any], Optional[int]], ...]]:
        total = len(tasks)
        if total == 0:
            return []
        size = self.chunk_size
        if size is None:
            size = max(1, -(-total // (self.max_workers * 4)))
        # Remainder-balanced sizing: the old ``[size, size, ..., rest]``
        # split left a ragged last chunk — with ``total`` slightly above
        # a chunk boundary, one task (possibly the expensive one)
        # serialized behind an otherwise idle pool.  Keep the same chunk
        # *count* but spread the remainder so sizes differ by at most 1
        # and never exceed an explicitly requested ``chunk_size``.
        count = -(-total // size)
        base, extra = divmod(total, count)
        indexed = [
            (index, task.fn, tuple(task.args), dict(task.kwargs), task.seed)
            for index, task in enumerate(tasks)
        ]
        chunks = []
        start = 0
        for chunk_index in range(count):
            length = base + (1 if chunk_index < extra else 0)
            chunks.append(tuple(indexed[start : start + length]))
            start += length
        return chunks

    def _run_batch(
        self,
        tasks: List[Task],
        persist: Optional[Callable[[int, TaskResult], None]],
    ) -> List[TaskResult]:
        if not tasks:
            return []
        capture = bool(get_metrics().enabled)
        payloads = [
            ChunkPayload(
                tasks=chunk,
                capture_telemetry=capture,
                span_buffer_size=self.span_buffer_size,
            )
            for chunk in self._chunks(tasks)
        ]
        pool = self._pool()
        with get_tracer().span(
            "fabric.dispatch",
            tasks=len(tasks),
            chunks=len(payloads),
            workers=self.max_workers,
        ):
            futures = [pool.submit(run_chunk, payload) for payload in payloads]
            # Collect and merge in *submission* order, not completion
            # order: that keeps merged gauges (last-write-wins) and the
            # span stream deterministic for a fixed task list and worker
            # count.  Each chunk's results are persisted as soon as it is
            # collected, so a killed ``--jobs N`` run keeps every chunk
            # it got through.
            by_index: Dict[int, TaskResult] = {}
            for chunk_index, future in enumerate(futures):
                with get_tracer().span(
                    "fabric.chunk_wait",
                    chunk=chunk_index,
                    tasks=len(payloads[chunk_index].tasks),
                ):
                    chunk_result: ChunkResult = future.result()
                self._merge_telemetry(chunk_result)
                for index, value, error in chunk_result.outcomes:
                    result = TaskResult(
                        index=index,
                        value=value,
                        error=error,
                        label=tasks[index].label,
                    )
                    by_index[index] = result
                    if persist is not None:
                        persist(index, result)
        return [by_index[index] for index in range(len(tasks))]

    @staticmethod
    def _merge_telemetry(chunk_result: ChunkResult) -> None:
        if chunk_result.metrics_state is not None:
            get_metrics().merge(chunk_result.metrics_state)
        if chunk_result.spans:
            get_tracer().absorb(chunk_result.spans, worker=chunk_result.pid)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


class _ProcessEndpoint(WorkerEndpoint):
    """One pipe-connected local worker process for the stealing fabric."""

    slots = 1

    def __init__(self, ident: str, start_method: str) -> None:
        self.ident = ident
        self.start_method = start_method
        self._conn = None
        self._proc = None
        self._start()

    def _start(self) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context(self.start_method)
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=steal_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        self._conn, self._proc = parent_conn, proc

    @property
    def connected(self) -> bool:
        return self._conn is not None

    def waitable(self):
        return self._conn

    def send_chunk(self, chunk_id, entries, capture_telemetry, span_buffer_size):
        if self._conn is None:
            raise EndpointDied(f"{self.ident}: worker pipe is closed")
        payload = ChunkPayload(
            tasks=tuple(entries),
            capture_telemetry=capture_telemetry,
            span_buffer_size=span_buffer_size,
        )
        try:
            self._conn.send((chunk_id, payload))
        except (BrokenPipeError, OSError) as exc:
            raise EndpointDied(f"{self.ident}: {exc}") from exc

    def recv_outcome(self):
        if self._conn is None:
            raise EndpointDied(f"{self.ident}: worker pipe is closed")
        try:
            return self._conn.recv()
        except (EOFError, OSError) as exc:
            raise EndpointDied(f"{self.ident}: worker pipe closed") from exc

    def respawn(self) -> bool:
        self.close(graceful=False)
        try:
            self._start()
            return True
        except OSError:
            return False

    def close(self, graceful: bool = True) -> None:
        if self._conn is not None:
            try:
                if graceful:
                    self._conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None
        if self._proc is not None:
            self._proc.join(timeout=5.0 if graceful else 0.5)
            if self._proc.is_alive():
                self._proc.terminate()
                self._proc.join(timeout=1.0)
            self._proc = None


class StealingRunner(ProcessRunner):
    """Work-stealing process backend for heterogeneous task costs.

    Replaces static contiguous chunking with the scheduler in
    :mod:`.scheduler`: per-worker local queues built in LPT order from
    a :class:`~.scheduler.TaskCostModel` (fed by prior observed
    timings when a store is attached), adaptive chunk splitting, and
    steal-half rebalancing when a worker runs dry.  Worker processes
    are long-lived pipe loops (started once, reused across ``run``
    calls) and are respawned if they die mid-batch, with their tasks
    requeued exactly once.

    The determinism contract is identical to every other backend:
    submission-order reassembly plus explicit per-task seeds make the
    results byte-identical to :class:`SerialRunner` regardless of cost
    skew, steal pattern, or worker churn
    (``tests/parallel/test_determinism_chaos.py``).
    """

    name = "stealing"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        start_method: Optional[str] = None,
        span_buffer_size: int = 4096,
        store: Optional[ResultStore] = None,
        cost_model: Optional[TaskCostModel] = None,
        chunk_factor: int = 4,
        min_chunk: int = 1,
        tick_seconds: float = 1.0,
    ) -> None:
        super().__init__(
            max_workers=max_workers,
            start_method=start_method,
            span_buffer_size=span_buffer_size,
            store=store,
        )
        self.cost_model = (
            cost_model if cost_model is not None else TaskCostModel(store=store)
        )
        self.chunk_factor = chunk_factor
        self.min_chunk = min_chunk
        self.tick_seconds = tick_seconds
        self.last_scheduler: Optional[WorkStealingScheduler] = None
        self._endpoints: Optional[List[_ProcessEndpoint]] = None

    def _ensure_endpoints(self) -> List[_ProcessEndpoint]:
        if self._endpoints is None:
            self._endpoints = [
                _ProcessEndpoint(f"local-{index}", self.start_method)
                for index in range(self.max_workers)
            ]
            return self._endpoints
        # Worker processes are reused across batches; one whose respawn
        # failed in a prior batch has a closed pipe.  Restart it here,
        # and run on the live subset if the restart fails again.
        live = [
            endpoint
            for endpoint in self._endpoints
            if endpoint.connected or endpoint.respawn()
        ]
        if not live:
            raise ParallelError(
                "no stealing-fabric workers left: every worker process "
                "died and refused to restart"
            )
        return live

    def _run_batch(
        self,
        tasks: List[Task],
        persist: Optional[Callable[[int, TaskResult], None]],
    ) -> List[TaskResult]:
        if not tasks:
            return []
        capture = bool(get_metrics().enabled)
        scheduler = WorkStealingScheduler(
            self._ensure_endpoints(),
            cost_model=self.cost_model,
            chunk_factor=self.chunk_factor,
            min_chunk=self.min_chunk,
            tick_seconds=self.tick_seconds,
            on_telemetry=self._merge_telemetry,
        )
        with get_tracer().span(
            "fabric.dispatch",
            tasks=len(tasks),
            workers=self.max_workers,
            schedule="stealing",
        ):
            results = scheduler.execute(
                tasks,
                persist=persist,
                capture_telemetry=capture,
                span_buffer_size=self.span_buffer_size,
                make_result=lambda index, value, error: TaskResult(
                    index=index,
                    value=value,
                    error=error,
                    label=tasks[index].label,
                ),
            )
        self.last_scheduler = scheduler
        return results

    def close(self) -> None:
        if self._endpoints is not None:
            for endpoint in self._endpoints:
                endpoint.close()
            self._endpoints = None


class AutoRunner(TaskRunner):
    """Picks a backend per batch: serial for small work, processes else.

    The crossover is ``min_tasks`` tasks *and* at least two effective
    workers (``min(max_workers, cpu_count)``) — a single-core box or a
    two-point sweep never pays pool startup for nothing.
    """

    name = "auto"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        min_tasks: int = 4,
        chunk_size: Optional[int] = None,
        store: Optional[ResultStore] = None,
    ) -> None:
        self.max_workers = max_workers
        self.min_tasks = max(1, min_tasks)
        self.store = store
        self._serial = SerialRunner()
        # An explicit chunk_size pins the static path; the default is
        # the work-stealing scheduler (strictly better on skewed costs,
        # equivalent on uniform ones).
        if chunk_size is not None:
            self._process: TaskRunner = ProcessRunner(
                max_workers=max_workers, chunk_size=chunk_size
            )
        else:
            self._process = StealingRunner(max_workers=max_workers, store=store)

    def effective_workers(self) -> int:
        cpu = os.cpu_count() or 1
        return min(self.max_workers or cpu, cpu)

    def select(self, task_count: int) -> TaskRunner:
        """The backend a batch of ``task_count`` tasks would use."""
        if task_count >= self.min_tasks and self.effective_workers() >= 2:
            return self._process
        return self._serial

    def _run_batch(
        self,
        tasks: List[Task],
        persist: Optional[Callable[[int, TaskResult], None]],
    ) -> List[TaskResult]:
        # Delegate to the selected backend's raw batch hook: caching
        # already happened in this runner's ``run``, so the sub-runner
        # must not consult its own (unset) store again.
        return self.select(len(tasks))._run_batch(tasks, persist)

    def close(self) -> None:
        self._process.close()


def parse_worker_addresses(workers: Sequence[str]) -> List[Tuple[str, int]]:
    """Parse ``host:port`` worker specs (commas and repeats both work)."""
    addresses: List[Tuple[str, int]] = []
    for spec in workers:
        for part in str(spec).split(","):
            part = part.strip()
            if not part:
                continue
            host, separator, port_text = part.rpartition(":")
            if not separator or not host:
                raise ValueError(
                    f"worker address {part!r} is not of the form host:port"
                )
            try:
                port = int(port_text)
            except ValueError as exc:
                raise ValueError(
                    f"worker address {part!r} has a non-integer port"
                ) from exc
            addresses.append((host, port))
    if not addresses:
        raise ValueError("no worker addresses given")
    return addresses


def get_runner(
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    workers: Optional[Sequence[str]] = None,
    schedule: Optional[str] = None,
) -> TaskRunner:
    """Map the CLI's ``--jobs``/``--workers``/``--schedule`` onto a backend.

    ``workers`` (a list of ``host:port`` specs) selects the remote
    fabric: a :class:`~repro.parallel.remote.RemoteRunner` driving
    ``parole worker serve`` processes over the length-prefixed JSON
    socket protocol.  Otherwise ``jobs`` picks the local backend:
    ``None``/``0``/``1`` — :class:`SerialRunner` (the default keeps
    current behaviour); ``N > 1`` — the work-stealing
    :class:`StealingRunner` with ``N`` workers (``schedule="static"``
    falls back to the chunked :class:`ProcessRunner`); any negative
    value — :class:`AutoRunner` (use every core when the batch is big
    enough).  ``store`` attaches a result store (``--cache DIR``):
    every backend then consults it before dispatch and persists task
    results as they complete — with remote workers it doubles as the
    shared dedupe cache.
    """
    if schedule is not None and schedule not in ("stealing", "static"):
        raise ValueError(
            f"schedule must be 'stealing' or 'static', not {schedule!r}"
        )
    if workers:
        from .remote import RemoteRunner

        return RemoteRunner(parse_worker_addresses(workers), store=store)
    if jobs is None or jobs in (0, 1):
        return SerialRunner(store=store)
    if jobs < 0:
        return AutoRunner(store=store)
    if schedule == "static":
        return ProcessRunner(max_workers=jobs, store=store)
    return StealingRunner(max_workers=jobs, store=store)
