"""Worker-process side of the execution fabric.

Everything a :class:`~repro.parallel.fabric.ProcessRunner` ships across
the process boundary lives here as plain module-level functions and
picklable dataclasses, so the fabric works under both ``fork`` and
``spawn`` start methods (spawn re-imports this module in the child
instead of inheriting the parent's memory image).

A worker receives a :class:`ChunkPayload` — a slice of the submitted
task list — and returns a :class:`ChunkResult` carrying, per task, the
return value (or the formatted error) plus, when the parent runs with
telemetry enabled, a serialized metrics state and span buffer recorded
by the worker's *own* registry/tracer.  The parent folds those into its
registry in chunk-submission order, so ``--telemetry --jobs N`` run
manifests carry the same counts a serial run would.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..telemetry import (
    MetricsRegistry,
    RingBufferSink,
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
    reset_for_worker,
)

__all__ = [
    "ChunkPayload",
    "ChunkResult",
    "TaskError",
    "init_worker",
    "run_chunk",
    "steal_worker_main",
]


@dataclass(frozen=True)
class TaskError:
    """Picklable record of one task's failure."""

    exc_type: str
    message: str
    traceback: str

    def __str__(self) -> str:
        return f"{self.exc_type}: {self.message}"


@dataclass(frozen=True)
class ChunkPayload:
    """One worker-bound slice of the task list.

    ``tasks`` entries are ``(index, fn, args, kwargs, seed)`` where
    ``index`` is the task's position in the original submission order —
    the parent reassembles results by it regardless of which worker
    finished first.
    """

    tasks: Tuple[Tuple[int, Any, tuple, Dict[str, Any], Optional[int]], ...]
    capture_telemetry: bool = False
    span_buffer_size: int = 4096


@dataclass
class ChunkResult:
    """What one worker sends back for one chunk."""

    #: ``(index, value, error)`` per task, in chunk order.
    outcomes: List[Tuple[int, Any, Optional[TaskError]]]
    #: Worker PID (diagnostics; stamped onto absorbed spans).
    pid: int = 0
    #: Wall-clock seconds the chunk took inside the worker.
    elapsed_seconds: float = 0.0
    #: ``MetricsRegistry.dump_state()`` of the worker's chunk-local
    #: registry, or None when telemetry capture was off.
    metrics_state: Optional[Dict[str, Any]] = None
    #: Buffered span/event records from the worker's chunk-local tracer.
    spans: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-task wall-clock seconds, aligned with ``outcomes``.  Feeds
    #: the work-stealing scheduler's task-cost model; empty on results
    #: produced by pre-timing workers (the field is additive).
    task_seconds: Tuple[float, ...] = ()


def init_worker() -> None:
    """Process-pool initializer: start from clean telemetry backends.

    Under ``fork`` the child begins life holding the parent's live
    registry and tracer; anything it recorded there would be counted
    twice once the parent merges the chunk's explicit snapshot.  Under
    ``spawn`` this is a no-op (fresh interpreter, no-op backends), which
    is exactly why task functions must not rely on inherited state.
    """
    reset_for_worker()


def call_task(
    fn: Any, args: tuple, kwargs: Dict[str, Any], seed: Optional[int]
) -> Any:
    """Invoke one declarative task record.

    A non-None ``seed`` is passed as the keyword argument ``seed`` — the
    fabric's seeding contract: task functions take their entire random
    state from that one explicit value.
    """
    if seed is not None:
        kwargs = dict(kwargs)
        kwargs["seed"] = seed
    return fn(*args, **kwargs)


def run_chunk(payload: ChunkPayload) -> ChunkResult:
    """Execute one chunk inside a worker process.

    With ``capture_telemetry`` the chunk runs against a fresh, private
    registry and a ring-buffer tracer; both are torn down before
    returning so pool workers (which are reused across chunks) never
    leak observations from one chunk into the next.
    """
    started = time.perf_counter()
    registry: Optional[MetricsRegistry] = None
    ring: Optional[RingBufferSink] = None
    if payload.capture_telemetry:
        registry = enable_metrics(MetricsRegistry())
        ring = RingBufferSink(capacity=payload.span_buffer_size)
        enable_tracing(ring)
    try:
        outcomes: List[Tuple[int, Any, Optional[TaskError]]] = []
        task_seconds: List[float] = []
        for index, fn, args, kwargs, seed in payload.tasks:
            task_started = time.perf_counter()
            try:
                value = call_task(fn, args, kwargs, seed)
                outcomes.append((index, value, None))
            except Exception as exc:  # ship the failure, keep the chunk
                outcomes.append(
                    (
                        index,
                        None,
                        TaskError(
                            exc_type=type(exc).__name__,
                            message=str(exc),
                            traceback=traceback.format_exc(),
                        ),
                    )
                )
            task_seconds.append(time.perf_counter() - task_started)
        metrics_state = registry.dump_state() if registry is not None else None
        spans = ring.events() if ring is not None else []
    finally:
        if payload.capture_telemetry:
            disable_metrics()
            disable_tracing()
    return ChunkResult(
        outcomes=outcomes,
        pid=os.getpid(),
        elapsed_seconds=time.perf_counter() - started,
        metrics_state=metrics_state,
        spans=spans,
        task_seconds=tuple(task_seconds),
    )


def steal_worker_main(conn) -> None:
    """Long-lived loop for one work-stealing fabric worker.

    Unlike the pool path (one ``run_chunk`` call per submission), a
    stealing worker stays attached to its pipe for the whole batch:
    the scheduler sends ``(chunk_id, ChunkPayload)`` messages and the
    worker answers each with ``(chunk_id, ChunkResult)``.  ``None`` (or
    a closed pipe) is the shutdown signal.  A crash inside the protocol
    machinery itself — not a task failure, which :func:`run_chunk`
    already ships as a :class:`TaskError` — is reported as a failed
    chunk so the scheduler can requeue rather than hang.
    """
    init_worker()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        chunk_id, payload = message
        try:
            result = run_chunk(payload)
        except BaseException:  # noqa: BLE001 - must answer or the batch hangs
            result = ChunkResult(
                outcomes=[
                    (
                        index,
                        None,
                        TaskError(
                            exc_type="WorkerProtocolError",
                            message="worker crashed outside task code",
                            traceback=traceback.format_exc(),
                        ),
                    )
                    for index, *_rest in payload.tasks
                ],
                pid=os.getpid(),
            )
        try:
            conn.send((chunk_id, result))
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass
