"""Length-prefixed JSON socket protocol for the remote-worker fabric.

Frames are ``8-byte big-endian length || UTF-8 JSON object``; every
object carries a ``"type"``.  The conversation between a
:class:`~repro.parallel.remote.RemoteRunner` (client) and a
``parole worker serve`` process (server):

1. client → ``hello`` — protocol version, environment fingerprint
   (python/numpy/platform), **source-tree digest**
   (:func:`repro.store.code_fingerprint`) and the store schema version;
2. server → ``welcome`` (advertising its parallelism ``slots``) or
   ``reject`` with a human-readable reason.  A worker running different
   code or a different numpy **refuses the work** — silently divergent
   floats would break the byte-identity contract, so the handshake
   fails closed;
3. client → ``chunk`` frames (task entries encoded with the store's
   tagged JSON codec, functions by qualified name); server → ``result``
   frames, plus ``ping``/``pong`` heartbeats in both directions.

Values cross the wire through :mod:`repro.store.codec` — the exact
round-trip codec the result store already uses — so a value computed
remotely decodes bit-identical to one computed locally.  Function
references resolve through the same import allow-list as the codec;
anything outside ``repro.``/``tests.``/``benchmarks.`` is refused.

**Trust model.**  The handshake proves *compatibility* (same code,
same numeric stack), not *identity*: every field in the ``hello``
frame is a non-secret fact anyone with a repo checkout can produce,
and the allow-list still spans every test/benchmark callable.  A
worker must therefore only listen on loopback or a trusted private
network — or be given a shared secret: set ``PAROLE_FABRIC_TOKEN``
(or pass ``token=`` / ``--token``) on both sides and the server
refuses any ``hello`` whose token does not match
(constant-time compare, never echoed back).
:class:`~repro.store.ResultStore` handles in task kwargs encode to
``null`` (a store handle must not cross hosts; tasks treat a missing
store as "run without checkpointing", which never changes results).
"""

from __future__ import annotations

import hmac
import importlib
import json
import os
import platform
import socket
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..store import STORE_SCHEMA_VERSION, code_fingerprint
from ..store.codec import CodecError, decode, encode
from .worker import TaskError

__all__ = [
    "AUTH_TOKEN_ENV",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "fabric_token",
    "ProtocolError",
    "ConnectionClosed",
    "HandshakeRefused",
    "send_frame",
    "recv_frame",
    "hello_message",
    "handshake_mismatch",
    "encode_entries",
    "decode_entries",
    "encode_outcomes",
    "decode_outcomes",
    "resolve_fn",
]

#: Bump on any frame-shape change; mismatched peers refuse each other.
PROTOCOL_VERSION = 1

#: Environment variable carrying the optional shared-secret fabric
#: token; when set on a server, every client must present it.
AUTH_TOKEN_ENV = "PAROLE_FABRIC_TOKEN"


def fabric_token() -> Optional[str]:
    """The shared-secret token from the environment, or None."""
    return os.environ.get(AUTH_TOKEN_ENV) or None

#: Upper bound on a single frame (tasks ship arguments, results ship
#: whole experiment payloads — generous, but a garbage length prefix
#: must not allocate gigabytes).
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">Q")

_ALLOWED_FN_PREFIXES = (
    "repro.",
    "tests.",
    "benchmarks.",
    "test_",
    "bench_",
    "conftest",
)


class ProtocolError(ReproError):
    """A malformed or oversized frame, or an unresolvable reference."""


class ConnectionClosed(ProtocolError):
    """The peer closed the socket (mid-frame or between frames)."""


class HandshakeRefused(ProtocolError):
    """The worker refused the handshake (env/source mismatch)."""


def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Serialize ``message`` and write one length-prefixed frame."""
    data = json.dumps(message, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"outgoing frame of {len(data)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    sock.sendall(_LENGTH.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        piece = sock.recv(min(remaining, 1 << 20))
        if not piece:
            raise ConnectionClosed(
                f"peer closed with {remaining} of {count} byte(s) unread"
            )
        chunks.append(piece)
        remaining -= len(piece)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Dict[str, Any]:
    """Read one frame; raises :class:`ConnectionClosed` on EOF."""
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"incoming frame claims {length} bytes "
            f"(limit {MAX_FRAME_BYTES}); refusing to allocate"
        )
    payload = _recv_exact(sock, int(length))
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame is not an object with a 'type' field")
    return message


# -- handshake -------------------------------------------------------


def _env_summary() -> Dict[str, Any]:
    """The environment facts that must match for bit-identical floats."""
    try:
        import numpy as np

        numpy_version: Optional[str] = np.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep today
        numpy_version = None
    return {
        "python_version": platform.python_version(),
        "python_impl": platform.python_implementation(),
        "numpy_version": numpy_version,
        "machine": platform.machine(),
    }


def hello_message(
    source_digest: Optional[str] = None, token: Optional[str] = None
) -> Dict[str, Any]:
    """The client's opening frame.

    ``token`` defaults to ``$PAROLE_FABRIC_TOKEN``; it is only included
    when set, so tokenless deployments keep the v1 frame shape.
    """
    message = {
        "type": "hello",
        "protocol": PROTOCOL_VERSION,
        "env": _env_summary(),
        "source_digest": source_digest or code_fingerprint(),
        "store_schema": STORE_SCHEMA_VERSION,
    }
    token = token if token is not None else fabric_token()
    if token:
        message["token"] = token
    return message


def handshake_mismatch(
    hello: Dict[str, Any], token: Optional[str] = None
) -> Optional[str]:
    """Why this host must refuse ``hello``, or None when compatible.

    ``token`` is the shared secret this host requires (default:
    ``$PAROLE_FABRIC_TOKEN``); when set, a missing or different client
    token is refused before anything else, and the reason never echoes
    either value.
    """
    expected = token if token is not None else fabric_token()
    if expected:
        presented = hello.get("token")
        if not isinstance(presented, str) or not hmac.compare_digest(
            presented, expected
        ):
            return "authentication token missing or mismatched"
    if hello.get("protocol") != PROTOCOL_VERSION:
        return (
            f"protocol version {hello.get('protocol')!r} != "
            f"{PROTOCOL_VERSION}"
        )
    if hello.get("store_schema") != STORE_SCHEMA_VERSION:
        return (
            f"store schema {hello.get('store_schema')!r} != "
            f"{STORE_SCHEMA_VERSION!r}"
        )
    local_digest = code_fingerprint()
    if hello.get("source_digest") != local_digest:
        return (
            f"source-tree digest {str(hello.get('source_digest'))[:16]}… "
            f"!= local {local_digest[:16]}… (sync the code first)"
        )
    local_env = _env_summary()
    remote_env = hello.get("env") or {}
    for key, local_value in local_env.items():
        remote_value = remote_env.get(key)
        if remote_value != local_value:
            return (
                f"environment mismatch on {key}: "
                f"{remote_value!r} != {local_value!r}"
            )
    return None


# -- task / result payloads ------------------------------------------


def _fn_ref(fn: Any) -> str:
    qualname = getattr(fn, "__qualname__", None)
    module = getattr(fn, "__module__", None)
    if not qualname or not module or "<" in qualname:
        raise ProtocolError(
            f"cannot ship non-module-level callable {fn!r} to a remote "
            "worker"
        )
    return f"{module}:{qualname}"


def resolve_fn(ref: str) -> Any:
    """Import-restricted resolution of a ``module:qualname`` reference."""
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ProtocolError(f"malformed function reference {ref!r}")
    if not module_name.startswith(_ALLOWED_FN_PREFIXES):
        raise ProtocolError(
            f"refusing to import {module_name!r}: outside the allowed "
            "namespaces"
        )
    try:
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as exc:
        raise ProtocolError(f"cannot resolve {ref!r}: {exc}") from exc
    if not callable(obj):
        raise ProtocolError(f"{ref!r} resolved to a non-callable")
    return obj


def _encode_value(value: Any) -> Any:
    from ..store.result_store import ResultStore

    if isinstance(value, ResultStore):
        # A store handle never crosses hosts: remote tasks run without
        # it (store handles are key-neutral and results-neutral — they
        # only enable mid-task checkpointing).
        return None
    return encode(value)


def encode_entries(
    entries: Sequence[Tuple[int, Any, tuple, Dict[str, Any], Optional[int]]],
) -> List[Dict[str, Any]]:
    """Task entries → JSON-able chunk payload."""
    encoded = []
    for index, fn, args, kwargs, seed in entries:
        try:
            encoded.append(
                {
                    "index": index,
                    "fn": _fn_ref(fn),
                    "args": [_encode_value(a) for a in args],
                    "kwargs": {k: _encode_value(v) for k, v in kwargs.items()},
                    "seed": seed,
                }
            )
        except CodecError as exc:
            raise ProtocolError(
                f"task #{index} has arguments the wire codec cannot "
                f"carry: {exc}"
            ) from exc
    return encoded


def decode_entries(
    payload: Sequence[Dict[str, Any]],
) -> List[Tuple[int, Any, tuple, Dict[str, Any], Optional[int]]]:
    """Chunk payload → task entries ready for ``run_chunk``."""
    entries = []
    for item in payload:
        entries.append(
            (
                int(item["index"]),
                resolve_fn(item["fn"]),
                tuple(decode(a) for a in item["args"]),
                {k: decode(v) for k, v in item["kwargs"].items()},
                item["seed"],
            )
        )
    return entries


def encode_outcomes(
    outcomes: Sequence[Tuple[int, Any, Optional[TaskError]]],
) -> List[Dict[str, Any]]:
    """Per-task outcomes → JSON.  Unencodable values become errors."""
    encoded = []
    for index, value, error in outcomes:
        if error is not None:
            encoded.append(
                {
                    "index": index,
                    "error": {
                        "exc_type": error.exc_type,
                        "message": error.message,
                        "traceback": error.traceback,
                    },
                }
            )
            continue
        try:
            encoded.append({"index": index, "value": encode(value)})
        except CodecError as exc:
            encoded.append(
                {
                    "index": index,
                    "error": {
                        "exc_type": "CodecError",
                        "message": (
                            f"task result not wire-encodable: {exc}"
                        ),
                        "traceback": "",
                    },
                }
            )
    return encoded


def decode_outcomes(
    payload: Sequence[Dict[str, Any]],
) -> List[Tuple[int, Any, Optional[TaskError]]]:
    outcomes: List[Tuple[int, Any, Optional[TaskError]]] = []
    for item in payload:
        error_payload = item.get("error")
        if error_payload is not None:
            outcomes.append(
                (
                    int(item["index"]),
                    None,
                    TaskError(
                        exc_type=str(error_payload.get("exc_type", "Error")),
                        message=str(error_payload.get("message", "")),
                        traceback=str(error_payload.get("traceback", "")),
                    ),
                )
            )
        else:
            outcomes.append((int(item["index"]), decode(item["value"]), None))
    return outcomes
