"""Remote-worker fabric backend: many hosts, one byte-identical sweep.

Two halves:

* :class:`WorkerServer` — what ``parole worker serve`` runs.  Listens
  for :class:`RemoteRunner` connections, validates the handshake (env
  fingerprint + source-tree digest; see :mod:`.protocol`), then
  executes ``chunk`` frames through :func:`~.worker.run_chunk` — in a
  single worker thread by default, or its own process pool with
  ``jobs > 1`` (advertised to the client as ``slots`` so the scheduler
  keeps that many chunks in flight).  Heartbeat ``ping`` frames are
  answered while chunks execute.  A dropped client never kills the
  server: it returns to ``accept`` and serves the reconnect.

* :class:`RemoteRunner` — a :class:`~.fabric.TaskRunner` that drives
  one or more ``host:port`` workers through the same
  :class:`~.scheduler.WorkStealingScheduler` as the local stealing
  backend: LPT local queues per endpoint, adaptive chunks, steal-half
  rebalancing, and churn handling — a worker that disconnects or times
  out has its tasks requeued (exactly once) and is reconnected with
  backoff.  Combined with a shared content-addressed
  :class:`~repro.store.ResultStore` (``store=``), many coordinator
  runs on many hosts dedupe against the same cache: the coordinator
  consults the store before dispatch and persists single-winner as
  results arrive — the store's atomic-rename writes were built for
  exactly this.

Determinism: submission-order reassembly + explicit task seeds + the
handshake's refusal of mismatched python/numpy/source mean a sweep's
output is byte-identical no matter which host ran which task
(``tests/parallel/test_remote.py``, ``test_determinism_chaos.py``).
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ParallelError
from ..store import ResultStore
from ..telemetry import get_metrics, get_tracer
from .fabric import Task, TaskResult, TaskRunner
from .protocol import (
    ConnectionClosed,
    HandshakeRefused,
    ProtocolError,
    decode_entries,
    encode_entries,
    encode_outcomes,
    decode_outcomes,
    fabric_token,
    handshake_mismatch,
    hello_message,
    recv_frame,
    send_frame,
)
from .scheduler import (
    EndpointDied,
    TaskCostModel,
    WorkerEndpoint,
    WorkStealingScheduler,
)
from .worker import ChunkPayload, ChunkResult, init_worker, run_chunk

__all__ = ["WorkerServer", "RemoteRunner"]

logger = logging.getLogger(__name__)

Address = Tuple[str, int]

_LOOPBACK_HOSTS = ("127.0.0.1", "localhost", "::1")


def _run_chunk_frame(message: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one decoded ``chunk`` frame; returns the ``result`` frame.

    Module-level so the server's process-pool path can ship it to a
    child under ``spawn`` as well as ``fork``.
    """
    try:
        entries = decode_entries(message["entries"])
    except ProtocolError as exc:
        # A chunk this host *cannot decode* (unimportable function,
        # unknown codec tag) fails the same way on every retry — ship
        # it back as per-task errors so the scheduler records the
        # failure instead of burying the endpoint and retrying forever.
        from .worker import TaskError

        return {
            "type": "result",
            "chunk_id": message["chunk_id"],
            "outcomes": encode_outcomes(
                [
                    (
                        int(item["index"]),
                        None,
                        TaskError(
                            exc_type="ProtocolError",
                            message=str(exc),
                            traceback="",
                        ),
                    )
                    for item in message["entries"]
                ]
            ),
            "task_seconds": [],
            "elapsed_seconds": 0.0,
            "pid": os.getpid(),
            "metrics_state": None,
            "spans": [],
        }
    payload = ChunkPayload(
        tasks=tuple(entries),
        capture_telemetry=bool(message.get("capture", False)),
        span_buffer_size=int(message.get("span_buffer", 4096)),
    )
    result = run_chunk(payload)
    return {
        "type": "result",
        "chunk_id": message["chunk_id"],
        "outcomes": encode_outcomes(result.outcomes),
        "task_seconds": list(result.task_seconds),
        "elapsed_seconds": result.elapsed_seconds,
        "pid": result.pid,
        "metrics_state": result.metrics_state,
        "spans": result.spans,
    }


class WorkerServer:
    """``parole worker serve``: one fabric worker host.

    ``jobs`` sets the host's parallelism (and the advertised ``slots``).
    ``max_chunks_per_connection`` hard-closes a connection after N
    served chunks — the churn-injection hook the determinism tests use
    to prove reassignment is loss-free and single-winner.  ``once``
    stops the server when its first client disconnects (handy for
    bounded CI soaks).  ``token`` (default ``$PAROLE_FABRIC_TOKEN``)
    makes the handshake require that shared secret; without one the
    server should only bind loopback or a trusted network (see the
    trust-model note in :mod:`.protocol`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        max_chunks_per_connection: Optional[int] = None,
        once: bool = False,
        token: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.jobs = max(1, jobs)
        self.max_chunks_per_connection = max_chunks_per_connection
        self.once = once
        self.token = token
        self.chunks_served = 0
        self.connections_served = 0
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._executor = None
        #: Guards executor creation and the served counters — both are
        #: touched from per-connection handler threads.
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------

    def _ensure_executor(self):
        with self._lock:
            if self._executor is None:
                if self.jobs > 1:
                    from concurrent.futures import ProcessPoolExecutor

                    self._executor = ProcessPoolExecutor(
                        max_workers=self.jobs, initializer=init_worker
                    )
                else:
                    from concurrent.futures import ThreadPoolExecutor

                    self._executor = ThreadPoolExecutor(max_workers=1)
            return self._executor

    def start(self) -> Address:
        """Bind, listen and serve on a background thread.

        Returns the bound ``(host, port)`` — useful with ``port=0``.
        """
        if self._listener is not None:
            raise ParallelError("worker server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(8)
        listener.settimeout(0.25)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        if (
            self.host not in _LOOPBACK_HOSTS
            and (self.token or fabric_token()) is None
        ):
            logger.warning(
                "fabric worker listening on %s:%s without an "
                "authentication token: any peer with a repo checkout can "
                "submit work; set %s or --token, or bind loopback",
                self.host,
                self.port,
                "PAROLE_FABRIC_TOKEN",
            )
        self._stop.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="parole-worker-accept", daemon=True
        )
        self._accept_thread.start()
        return (self.host, self.port)

    def wait(self) -> None:
        """Block until :meth:`stop` is called (or ``once`` fires)."""
        while not self._stop.wait(0.5):
            pass

    def serve_forever(self) -> None:
        """Blocking entry point for the CLI."""
        self.start()
        try:
            self.wait()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    def __enter__(self) -> "WorkerServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- serving -----------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                conn, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            handler = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name="parole-worker-conn",
                daemon=True,
            )
            handler.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        try:
            self._serve_connection(conn)
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                self.connections_served += 1
            if self.once:
                self._stop.set()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(None)
        try:
            hello = recv_frame(conn)
        except ProtocolError:
            return
        if hello.get("type") != "hello":
            send_frame(
                conn, {"type": "reject", "reason": "expected hello frame"}
            )
            return
        reason = handshake_mismatch(hello, token=self.token)
        if reason is not None:
            send_frame(conn, {"type": "reject", "reason": reason})
            return
        send_frame(
            conn,
            {"type": "welcome", "slots": self.jobs, "pid": os.getpid()},
        )
        send_lock = threading.Lock()
        served_here = 0
        pending: List[Any] = []

        def _send_result(frame: Dict[str, Any]) -> None:
            with send_lock:
                send_frame(conn, frame)

        while not self._stop.is_set():
            try:
                message = recv_frame(conn)
            except ProtocolError:
                break
            kind = message.get("type")
            if kind == "ping":
                with send_lock:
                    send_frame(conn, {"type": "pong"})
            elif kind == "shutdown":
                break
            elif kind == "chunk":
                served_here += 1
                with self._lock:
                    self.chunks_served += 1
                limit = self.max_chunks_per_connection
                executor = self._ensure_executor()
                if self.jobs > 1:
                    future = executor.submit(_run_chunk_frame, message)
                else:
                    future = executor.submit(self._run_chunk_local, message)
                last = limit is not None and served_here >= limit

                def _done(completed, _last=last):
                    try:
                        frame = completed.result()
                    except BaseException as exc:  # noqa: BLE001
                        frame = {
                            "type": "error",
                            "reason": f"{type(exc).__name__}: {exc}",
                        }
                    try:
                        _send_result(frame)
                    except OSError:
                        return
                    if _last:
                        # Churn hook: hard-close after the final chunk;
                        # the client sees a disconnect and must
                        # reconnect or reassign.
                        try:
                            conn.shutdown(socket.SHUT_RDWR)
                        except OSError:
                            pass

                future.add_done_callback(_done)
                pending.append(future)
                if last:
                    break
            else:
                with send_lock:
                    send_frame(
                        conn,
                        {
                            "type": "error",
                            "reason": f"unknown frame type {kind!r}",
                        },
                    )
        for future in pending:
            try:
                future.result(timeout=60.0)
            except BaseException:  # noqa: BLE001 - already reported inline
                pass

    @staticmethod
    def _run_chunk_local(message: Dict[str, Any]) -> Dict[str, Any]:
        return _run_chunk_frame(message)


class _RemoteEndpoint(WorkerEndpoint):
    """Client side of one ``parole worker serve`` connection."""

    def __init__(
        self,
        address: Address,
        connect_timeout: float = 10.0,
        heartbeat_interval: float = 15.0,
        heartbeat_timeout: float = 60.0,
        reconnect_attempts: int = 2,
        reconnect_backoff: float = 0.2,
        token: Optional[str] = None,
    ) -> None:
        self.address = address
        self.ident = f"{address[0]}:{address[1]}"
        self.connect_timeout = connect_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.reconnect_attempts = max(0, reconnect_attempts)
        self.reconnect_backoff = reconnect_backoff
        self.token = token
        self.slots = 1
        self._sock: Optional[socket.socket] = None
        self._last_rx = 0.0
        self._ping_sent: Optional[float] = None
        self._connect()

    def _connect(self) -> None:
        sock = socket.create_connection(
            self.address, timeout=self.connect_timeout
        )
        try:
            sock.settimeout(self.connect_timeout)
            hello = hello_message()
            if self.token is not None:
                hello["token"] = self.token
            send_frame(sock, hello)
            reply = recv_frame(sock)
            if reply.get("type") == "reject":
                raise HandshakeRefused(
                    f"worker {self.ident} refused the handshake: "
                    f"{reply.get('reason', 'no reason given')}"
                )
            if reply.get("type") != "welcome":
                raise ProtocolError(
                    f"worker {self.ident} answered the handshake with "
                    f"{reply.get('type')!r}"
                )
            sock.settimeout(None)
        except BaseException:
            sock.close()
            raise
        self.slots = max(1, int(reply.get("slots", 1)))
        self._sock = sock
        self._last_rx = time.perf_counter()
        self._ping_sent = None

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def waitable(self):
        return self._sock

    def send_chunk(self, chunk_id, entries, capture_telemetry, span_buffer_size):
        if self._sock is None:
            raise EndpointDied(f"{self.ident}: connection is closed")
        try:
            send_frame(
                self._sock,
                {
                    "type": "chunk",
                    "chunk_id": chunk_id,
                    "entries": encode_entries(entries),
                    "capture": capture_telemetry,
                    "span_buffer": span_buffer_size,
                },
            )
        except OSError as exc:
            raise EndpointDied(f"{self.ident}: {exc}") from exc

    def recv_outcome(self):
        if self._sock is None:
            raise EndpointDied(f"{self.ident}: connection is closed")
        try:
            frame = recv_frame(self._sock)
        except (ConnectionClosed, OSError) as exc:
            raise EndpointDied(f"{self.ident}: {exc}") from exc
        self._last_rx = time.perf_counter()
        self._ping_sent = None
        kind = frame.get("type")
        if kind == "pong":
            return None
        if kind == "error":
            raise EndpointDied(
                f"{self.ident}: worker reported {frame.get('reason')!r}"
            )
        if kind != "result":
            raise EndpointDied(
                f"{self.ident}: unexpected frame type {kind!r}"
            )
        result = ChunkResult(
            outcomes=decode_outcomes(frame["outcomes"]),
            pid=int(frame.get("pid", 0)),
            elapsed_seconds=float(frame.get("elapsed_seconds", 0.0)),
            metrics_state=frame.get("metrics_state"),
            spans=list(frame.get("spans") or []),
            task_seconds=tuple(frame.get("task_seconds") or ()),
        )
        return int(frame["chunk_id"]), result

    def maintain(self, now: float) -> None:
        if self._sock is None:
            raise EndpointDied(f"{self.ident}: connection is closed")
        if self._ping_sent is not None:
            if now - self._ping_sent > self.heartbeat_timeout:
                raise EndpointDied(
                    f"{self.ident}: no heartbeat answer in "
                    f"{self.heartbeat_timeout:.0f}s"
                )
            return
        if now - self._last_rx > self.heartbeat_interval:
            try:
                send_frame(self._sock, {"type": "ping"})
            except OSError as exc:
                raise EndpointDied(f"{self.ident}: {exc}") from exc
            self._ping_sent = now

    def respawn(self) -> bool:
        self.close()
        for attempt in range(self.reconnect_attempts):
            time.sleep(self.reconnect_backoff * (attempt + 1))
            try:
                self._connect()
                return True
            except (OSError, ProtocolError):
                continue
        return False

    def close(self) -> None:
        if self._sock is not None:
            try:
                send_frame(self._sock, {"type": "shutdown"})
            except (OSError, ProtocolError):
                pass
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


class RemoteRunner(TaskRunner):
    """Work-stealing fabric over socket-connected worker hosts.

    ``addresses`` are ``(host, port)`` pairs (``parole worker serve``
    processes).  Endpoints are connected lazily on the first non-empty
    batch and reused across ``run`` calls.  With some endpoints down at
    connect time the runner degrades to the reachable subset (recorded
    as ``fabric.worker_unreachable``); with none reachable it raises
    :class:`~repro.errors.ParallelError`.
    """

    name = "remote"

    def __init__(
        self,
        addresses: Sequence[Union[Address, str]],
        store: Optional[ResultStore] = None,
        cost_model: Optional[TaskCostModel] = None,
        connect_timeout: float = 10.0,
        heartbeat_interval: float = 15.0,
        heartbeat_timeout: float = 60.0,
        reconnect_attempts: int = 2,
        chunk_factor: int = 4,
        min_chunk: int = 1,
        tick_seconds: float = 0.5,
        span_buffer_size: int = 4096,
        token: Optional[str] = None,
    ) -> None:
        parsed: List[Address] = []
        for address in addresses:
            if isinstance(address, str):
                host, _, port_text = address.rpartition(":")
                parsed.append((host, int(port_text)))
            else:
                parsed.append((address[0], int(address[1])))
        if not parsed:
            raise ValueError("RemoteRunner needs at least one address")
        self.addresses = parsed
        self.store = store
        self.cost_model = (
            cost_model if cost_model is not None else TaskCostModel(store=store)
        )
        self.connect_timeout = connect_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.reconnect_attempts = reconnect_attempts
        self.chunk_factor = chunk_factor
        self.min_chunk = min_chunk
        self.tick_seconds = tick_seconds
        self.span_buffer_size = span_buffer_size
        self.token = token
        self.last_scheduler: Optional[WorkStealingScheduler] = None
        self._endpoints: Optional[List[_RemoteEndpoint]] = None

    def _ensure_endpoints(self) -> List[_RemoteEndpoint]:
        if self._endpoints is not None:
            # Endpoints are reused across batches, but a respawn that
            # failed in a *prior* batch leaves a closed connection
            # behind.  Give each one a fresh reconnect attempt and run
            # this batch on the live subset; a still-dead endpoint
            # stays in the list so later batches retry it.
            live = [
                endpoint
                for endpoint in self._endpoints
                if endpoint.connected or endpoint.respawn()
            ]
            dead = len(self._endpoints) - len(live)
            if dead:
                get_metrics().counter("fabric.worker_unreachable").inc(dead)
                get_tracer().event(
                    "fabric.workers_degraded", unreachable=dead
                )
            if not live:
                raise ParallelError(
                    "no remote workers reachable: every endpoint died in "
                    "earlier batches and refused to reconnect"
                )
            return live
        endpoints: List[_RemoteEndpoint] = []
        failures: List[str] = []
        for address in self.addresses:
            try:
                endpoints.append(
                    _RemoteEndpoint(
                        address,
                        connect_timeout=self.connect_timeout,
                        heartbeat_interval=self.heartbeat_interval,
                        heartbeat_timeout=self.heartbeat_timeout,
                        reconnect_attempts=self.reconnect_attempts,
                        token=self.token,
                    )
                )
            except HandshakeRefused:
                # A refusal is a *correctness* signal (wrong code or
                # env on the worker); degrading silently would risk
                # non-identical bytes.  Fail the whole runner loudly.
                for endpoint in endpoints:
                    endpoint.close()
                raise
            except (OSError, ProtocolError) as exc:
                failures.append(f"{address[0]}:{address[1]} ({exc})")
                get_metrics().counter("fabric.worker_unreachable").inc()
        if not endpoints:
            raise ParallelError(
                "no remote workers reachable: " + "; ".join(failures)
            )
        if failures:
            get_tracer().event(
                "fabric.workers_degraded", unreachable=len(failures)
            )
        self._endpoints = endpoints
        return endpoints

    def _run_batch(
        self,
        tasks: List[Task],
        persist: Optional[Callable[[int, TaskResult], None]],
    ) -> List[TaskResult]:
        if not tasks:
            return []
        capture = bool(get_metrics().enabled)
        endpoints = self._ensure_endpoints()
        scheduler = WorkStealingScheduler(
            endpoints,
            cost_model=self.cost_model,
            chunk_factor=self.chunk_factor,
            min_chunk=self.min_chunk,
            tick_seconds=self.tick_seconds,
            on_telemetry=self._merge_telemetry,
        )
        with get_tracer().span(
            "fabric.dispatch",
            tasks=len(tasks),
            workers=len(endpoints),
            schedule="remote",
        ):
            results = scheduler.execute(
                tasks,
                persist=persist,
                capture_telemetry=capture,
                span_buffer_size=self.span_buffer_size,
                make_result=lambda index, value, error: TaskResult(
                    index=index,
                    value=value,
                    error=error,
                    label=tasks[index].label,
                ),
            )
        self.last_scheduler = scheduler
        return results

    @staticmethod
    def _merge_telemetry(chunk_result: ChunkResult) -> None:
        if chunk_result.metrics_state is not None:
            get_metrics().merge(chunk_result.metrics_state)
        if chunk_result.spans:
            get_tracer().absorb(chunk_result.spans, worker=chunk_result.pid)

    def close(self) -> None:
        if self._endpoints is not None:
            for endpoint in self._endpoints:
                endpoint.close()
            self._endpoints = None
