"""Deterministic parallel execution fabric (see :mod:`.fabric`).

Typical sweep::

    from repro.parallel import Task, get_runner, spawn_task_seeds

    seeds = spawn_task_seeds(sweep_seed, len(points))
    tasks = [
        Task(fn=run_point, args=(point,), seed=seed, label=str(point))
        for point, seed in zip(points, seeds)
    ]
    with get_runner(jobs) as runner:
        values = runner.map(tasks)   # submission order, any backend

Backends produce identical results for identical task lists — the
experiment harnesses (`fig6`/`fig7`/`fig8`/`fig9`/`fig11`/`defense`),
``run_all --jobs N``, the chaos matrix and the sweep benches all ride
on this package.  Local backends: :class:`SerialRunner`,
:class:`ProcessRunner` (static chunks), :class:`StealingRunner`
(work-stealing scheduler, the ``--jobs N`` default).  The remote
backend (:class:`~.remote.RemoteRunner` + ``parole worker serve``)
drives the same scheduler over socket-connected hosts sharing one
result store; see :mod:`.protocol` for the wire format.
"""

from .fabric import (
    AutoRunner,
    ProcessRunner,
    SerialRunner,
    StealingRunner,
    Task,
    TaskResult,
    TaskRunner,
    get_runner,
    parse_worker_addresses,
    resolve_cache_key,
    spawn_task_seeds,
)
from .scheduler import (
    COST_NAMESPACE,
    EndpointDied,
    TaskCostModel,
    WorkerEndpoint,
    WorkStealingScheduler,
    cost_group,
    next_chunk_size,
    plan_queues,
)
from .worker import ChunkPayload, ChunkResult, TaskError, init_worker, run_chunk

__all__ = [
    "AutoRunner",
    "ProcessRunner",
    "SerialRunner",
    "StealingRunner",
    "Task",
    "TaskResult",
    "TaskRunner",
    "get_runner",
    "parse_worker_addresses",
    "resolve_cache_key",
    "spawn_task_seeds",
    "COST_NAMESPACE",
    "EndpointDied",
    "TaskCostModel",
    "WorkerEndpoint",
    "WorkStealingScheduler",
    "cost_group",
    "next_chunk_size",
    "plan_queues",
    "ChunkPayload",
    "ChunkResult",
    "TaskError",
    "init_worker",
    "run_chunk",
]
