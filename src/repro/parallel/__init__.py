"""Deterministic parallel execution fabric (see :mod:`.fabric`).

Typical sweep::

    from repro.parallel import Task, get_runner, spawn_task_seeds

    seeds = spawn_task_seeds(sweep_seed, len(points))
    tasks = [
        Task(fn=run_point, args=(point,), seed=seed, label=str(point))
        for point, seed in zip(points, seeds)
    ]
    with get_runner(jobs) as runner:
        values = runner.map(tasks)   # submission order, any backend

Backends produce identical results for identical task lists — the
experiment harnesses (`fig6`/`fig7`/`fig8`/`fig9`/`fig11`/`defense`),
``run_all --jobs N``, the chaos matrix and the sweep benches all ride
on this package.
"""

from .fabric import (
    AutoRunner,
    ProcessRunner,
    SerialRunner,
    Task,
    TaskResult,
    TaskRunner,
    get_runner,
    resolve_cache_key,
    spawn_task_seeds,
)
from .worker import ChunkPayload, ChunkResult, TaskError, init_worker, run_chunk

__all__ = [
    "AutoRunner",
    "ProcessRunner",
    "SerialRunner",
    "Task",
    "TaskResult",
    "TaskRunner",
    "get_runner",
    "resolve_cache_key",
    "spawn_task_seeds",
    "ChunkPayload",
    "ChunkResult",
    "TaskError",
    "init_worker",
    "run_chunk",
]
