"""Gaussian kernel density estimation (Figure 9's KDE curves).

Thin wrapper over :func:`scipy.stats.gaussian_kde` that degrades
gracefully for degenerate samples (all-identical values get a narrow
Gaussian bump instead of a crash) and evaluates on an explicit grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from ..errors import ReproError


@dataclass(frozen=True)
class KDECurve:
    """A density curve sampled on a grid."""

    grid: Tuple[float, ...]
    density: Tuple[float, ...]
    sample_size: int

    def peak(self) -> Tuple[float, float]:
        """(x, density) of the curve's highest point."""
        index = int(np.argmax(self.density))
        return self.grid[index], self.density[index]

    def peaks(self, min_prominence: float = 0.05) -> List[float]:
        """Grid locations of local maxima above a prominence floor."""
        density = np.asarray(self.density)
        ceiling = density.max() if density.size else 0.0
        found: List[float] = []
        for i in range(1, len(density) - 1):
            if (
                density[i] > density[i - 1]
                and density[i] >= density[i + 1]
                and density[i] >= min_prominence * ceiling
            ):
                found.append(self.grid[i])
        return found


def kde_curve(
    samples: Sequence[float],
    grid_min: Optional[float] = None,
    grid_max: Optional[float] = None,
    points: int = 200,
    bandwidth: Optional[float] = None,
) -> KDECurve:
    """Gaussian KDE of ``samples`` evaluated on a uniform grid."""
    data = np.asarray(list(samples), dtype=np.float64)
    if data.size == 0:
        raise ReproError("cannot estimate a density from zero samples")
    spread = data.max() - data.min()
    low = grid_min if grid_min is not None else data.min() - max(spread, 1.0)
    high = grid_max if grid_max is not None else data.max() + max(spread, 1.0)
    grid = np.linspace(low, high, points)
    if data.size < 2 or spread == 0.0:
        # Degenerate sample: a single Gaussian bump at the common value.
        sigma = bandwidth or 1.0
        density = np.exp(-0.5 * ((grid - data[0]) / sigma) ** 2)
        density /= density.sum() * (grid[1] - grid[0])
    else:
        kde = stats.gaussian_kde(data, bw_method=bandwidth)
        density = kde(grid)
    return KDECurve(
        grid=tuple(float(x) for x in grid),
        density=tuple(float(d) for d in density),
        sample_size=int(data.size),
    )
