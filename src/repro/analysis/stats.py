"""Moving averages and summary statistics.

Figure 8 plots "the moving average of the episode rewards ... with a
window size of 9"; :func:`moving_average` reproduces that exact
smoothing (trailing window, partial at the start).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import ReproError


def moving_average(values: Sequence[float], window: int = 9) -> List[float]:
    """Trailing moving average with a partially-filled warm-up.

    Element ``i`` averages ``values[max(0, i - window + 1) : i + 1]``, so
    the output has the same length as the input and the first points
    average fewer samples — matching how Fig. 8's first plotted moving
    average covers the first nine episodes.
    """
    if window <= 0:
        raise ReproError("window must be positive")
    data = list(values)
    output: List[float] = []
    running = 0.0
    for index, value in enumerate(data):
        running += value
        if index >= window:
            running -= data[index - window]
        count = min(index + 1, window)
        output.append(running / count)
    return output


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    if not len(values):
        raise ReproError("cannot summarize an empty sample")
    array = np.asarray(values, dtype=np.float64)
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=0)),
        minimum=float(array.min()),
        maximum=float(array.max()),
        median=float(np.median(array)),
    )
