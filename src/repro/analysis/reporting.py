"""Plain-text tables and series printers used by the benches.

Every benchmark regenerates its paper table/figure as text; these
helpers keep the formatting consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Fixed-width table with a header rule."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        )
    rule = "  ".join("-" * width for width in widths)
    body = [line(headers), rule]
    body.extend(line(row) for row in materialized)
    return "\n".join(body)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[float], precision: int = 4
) -> str:
    """One labelled (x, y) series as ``name: x=y`` pairs."""
    pairs = ", ".join(
        f"{x}={y:.{precision}f}" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"
