"""Learning-curve convergence analysis.

Figure 8's discussion says the eps=1 agent "does not increase the reward
prominently after around 70 episodes since the maximum achievable reward
is reached".  These helpers quantify that: the convergence episode (the
first episode after which the smoothed curve stays within a tolerance
band of its final level), the curve's area-under-curve (total learning
progress), and plateau detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ReproError
from .stats import moving_average


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary of one learning curve."""

    converged: bool
    convergence_episode: Optional[int]
    final_level: float
    auc: float
    improvement: float


def convergence_episode(
    rewards: Sequence[float],
    window: int = 9,
    tolerance: float = 0.1,
) -> Optional[int]:
    """First episode after which the smoothed curve stays within
    ``tolerance`` (relative to the curve's range) of its final level.

    Returns ``None`` when the curve never settles.
    """
    if not len(rewards):
        raise ReproError("cannot analyse an empty curve")
    smoothed = moving_average(rewards, window)
    final = smoothed[-1]
    spread = max(smoothed) - min(smoothed)
    if spread == 0.0:
        return 0
    band = tolerance * spread
    for episode in range(len(smoothed)):
        tail = smoothed[episode:]
        if all(abs(value - final) <= band for value in tail):
            return episode
    return None  # pragma: no cover - last episode always qualifies


def analyse_curve(
    rewards: Sequence[float],
    window: int = 9,
    tolerance: float = 0.1,
) -> ConvergenceReport:
    """Full convergence report for one reward curve."""
    if not len(rewards):
        raise ReproError("cannot analyse an empty curve")
    smoothed = moving_average(rewards, window)
    episode = convergence_episode(rewards, window, tolerance)
    auc = float(np.trapezoid(smoothed)) if len(smoothed) > 1 else float(smoothed[0])
    return ConvergenceReport(
        converged=episode is not None and episode < len(smoothed) - 1,
        convergence_episode=episode,
        final_level=float(smoothed[-1]),
        auc=auc,
        improvement=float(smoothed[-1] - smoothed[0]),
    )


def is_plateaued(
    rewards: Sequence[float],
    window: int = 9,
    lookback: int = 10,
    tolerance: float = 0.05,
) -> bool:
    """Whether the last ``lookback`` smoothed points are flat.

    Useful as an early-stopping signal for long GENTRANSEQ campaigns.
    """
    if len(rewards) < lookback + 1:
        return False
    smoothed = moving_average(rewards, window)
    tail = smoothed[-lookback:]
    spread = max(smoothed) - min(smoothed)
    if spread == 0.0:
        return True
    return (max(tail) - min(tail)) <= tolerance * spread
