"""Bootstrap confidence intervals for experiment aggregates.

The evaluation sweeps average noisy per-trial profits; reporting a point
estimate alone overstates certainty.  :func:`bootstrap_ci` resamples the
trial values with replacement and returns a percentile confidence
interval for any statistic (mean by default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import ReproError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    resamples: int

    @property
    def width(self) -> float:
        """Interval width."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.estimate:.4f} "
            f"[{self.low:.4f}, {self.high:.4f}] "
            f"@{self.confidence:.0%}"
        )


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> ConfidenceInterval:
    """Percentile-bootstrap interval for ``statistic`` over ``values``."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ReproError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ReproError("confidence must be in (0, 1)")
    if resamples < 10:
        raise ReproError("need at least 10 resamples")
    random = rng or np.random.default_rng(0)
    estimate = float(statistic(data))
    if data.size == 1:
        return ConfidenceInterval(
            estimate=estimate, low=estimate, high=estimate,
            confidence=confidence, resamples=resamples,
        )
    stats = np.empty(resamples)
    for index in range(resamples):
        sample = random.choice(data, size=data.size, replace=True)
        stats[index] = statistic(sample)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(stats, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        estimate=estimate,
        low=float(low),
        high=float(high),
        confidence=confidence,
        resamples=resamples,
    )
