"""Analysis utilities shared by the evaluation benches.

* :mod:`repro.analysis.stats`     — moving averages, summaries;
* :mod:`repro.analysis.kde`       — Gaussian kernel density estimates
  (Figure 9's solution-size curves);
* :mod:`repro.analysis.reporting` — plain-text tables/series printers.
"""

from .stats import moving_average, summarize, Summary
from .kde import KDECurve, kde_curve
from .reporting import format_table, format_series
from .convergence import (
    ConvergenceReport,
    analyse_curve,
    convergence_episode,
    is_plateaued,
)
from .bootstrap import ConfidenceInterval, bootstrap_ci

__all__ = [
    "moving_average",
    "summarize",
    "Summary",
    "KDECurve",
    "kde_curve",
    "format_table",
    "format_series",
    "ConvergenceReport",
    "analyse_curve",
    "convergence_episode",
    "is_plateaued",
    "ConfidenceInterval",
    "bootstrap_ci",
]
