"""Zero-dependency metrics registry: counters, gauges, histograms.

Design constraints, in order of priority:

1. **Hot paths pay ~nothing when telemetry is off.**  The default active
   backend is :class:`NullMetrics`, whose instruments are shared inert
   singletons — ``counter(...).inc()`` is a single no-op method call
   with no lock, no dict lookup, no allocation.  Callers on true hot
   loops (the incremental replay engine) keep their own plain-int
   counters and *publish* snapshots at span boundaries instead.
2. **Thread-safe when on.**  :class:`MetricsRegistry` guards instrument
   creation and every update with locks; experiments that shard work
   across threads can share one registry.
3. **Self-describing snapshots.**  ``snapshot()`` renders every
   instrument into plain JSON-able dicts (histograms include fixed-
   bucket percentile estimates), which is what run manifests and the
   span tracer attach.

Metric names are dotted paths ``<layer>.<thing>`` (``mempool.submitted``,
``drl.episode_reward``); optional labels qualify a series
(``counter("verifier.outcomes", outcome="challenged")``).  See
``docs/telemetry.md`` for the naming conventions.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "get_metrics",
    "set_metrics",
    "enable_metrics",
    "disable_metrics",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds: exponential decade/half-decade
#: ladder from 1 microsecond to 100 seconds — wide enough for both
#: latencies (seconds) and small magnitudes (ETH deltas, swap counts).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3,
    1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
)

LabelValue = Union[str, int, float, bool]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Point-in-time value (set freely, up or down)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated percentile estimates.

    Buckets are defined by sorted upper bounds; observations above the
    last bound land in a +Inf overflow bucket.  Percentiles interpolate
    linearly inside the winning bucket (clamped by the observed min/max,
    so single-observation histograms report exact values).

    **Empty histograms**: with zero observations there is no meaningful
    central value or extremum, so :attr:`mean`, :attr:`min`, :attr:`max`
    and :meth:`percentile` all return ``NaN`` (never a fake ``0.0`` that
    could be mistaken for a real measurement).  :meth:`summary` of an
    empty histogram reports only ``count``/``sum`` and omits the NaN
    statistics, keeping snapshots strict-JSON safe.
    """

    __slots__ = ("bounds", "_lock", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered:
            raise ValueError("histogram needs at least one bucket bound")
        if list(ordered) != sorted(set(ordered)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = ordered
        self._lock = threading.Lock()
        self._counts = [0] * (len(ordered) + 1)  # +1: overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        """Mean of all observations; ``NaN`` when empty."""
        return self._sum / self._count if self._count else float("nan")

    @property
    def min(self) -> float:
        """Smallest observation; ``NaN`` when empty."""
        return self._min if self._count else float("nan")

    @property
    def max(self) -> float:
        """Largest observation; ``NaN`` when empty."""
        return self._max if self._count else float("nan")

    def bucket_counts(self) -> Tuple[int, ...]:
        """Per-bucket observation counts (last entry is the overflow)."""
        return tuple(self._counts)

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``q`` in [0, 100]).

        Walks the cumulative bucket counts to the target rank, then
        interpolates linearly between the bucket's lower and upper
        bounds.  The overflow bucket reports the observed maximum; every
        estimate is clamped into ``[min, max]``.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self._count:
            return float("nan")
        rank = q / 100.0 * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.bounds):  # overflow bucket
                    return self._max
                upper = self.bounds[index]
                lower = self.bounds[index - 1] if index else min(self._min, upper)
                within = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = lower + (upper - lower) * max(0.0, min(1.0, within))
                return max(self._min, min(self._max, estimate))
        return self._max

    def summary(self) -> Dict[str, float]:
        """JSON-able digest used by snapshots and manifests.

        An empty histogram reports only ``count`` and ``sum`` — its
        other statistics are ``NaN`` (see the class docstring) and NaN
        is not valid strict JSON, so they are omitted rather than faked.
        """
        if not self._count:
            return {"count": 0.0, "sum": 0.0}
        return {
            "count": float(self._count),
            "sum": self._sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }

    def state(self) -> Dict[str, Any]:
        """Lossless serializable state (bucket counts, not percentiles).

        Unlike :meth:`summary`, two histograms can be exactly recombined
        from their states — the basis of cross-process metric merging.
        """
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        The bucket bounds must match exactly; merging is equivalent to
        having observed the union of both histograms' samples (bucket
        counts, totals and extrema combine losslessly — only the exact
        sample order, which percentile estimates never see, is lost).
        """
        bounds = tuple(float(b) for b in state["bounds"])
        if bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{bounds} != {self.bounds}"
            )
        counts = list(state["counts"])
        if len(counts) != len(self._counts):
            raise ValueError("bucket count vectors differ in length")
        with self._lock:
            for index, count in enumerate(counts):
                self._counts[index] += int(count)
            self._count += int(state["count"])
            self._sum += float(state["sum"])
            self._min = min(self._min, float(state["min"]))
            self._max = max(self._max, float(state["max"]))


class _NullCounter:
    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    bounds: Tuple[float, ...] = ()
    count = 0
    sum = 0.0
    mean = 0.0
    min = 0.0
    max = 0.0

    def observe(self, value: float) -> None:
        pass

    def bucket_counts(self) -> Tuple[int, ...]:
        return ()

    def percentile(self, q: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


def _series_key(name: str, labels: Dict[str, LabelValue]) -> str:
    """Canonical series key: ``name`` or ``name{k=v,...}`` (sorted)."""
    if not labels:
        return name
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Thread-safe home of every live instrument.

    Instruments are created on first use and shared thereafter — calling
    ``registry.counter("x")`` twice returns the same object, so call
    sites can either cache the instrument (hot paths) or re-resolve it
    each time (cold paths).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels: LabelValue) -> Counter:
        key = _series_key(name, labels)
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: LabelValue) -> Gauge:
        key = _series_key(name, labels)
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        **labels: LabelValue,
    ) -> Histogram:
        key = _series_key(name, labels)
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(
                    bounds if bounds is not None else DEFAULT_BUCKETS
                )
        return instrument

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Flat JSON-able view of every instrument's current state."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {key: c.value for key, c in sorted(counters.items())},
            "gauges": {key: g.value for key, g in sorted(gauges.items())},
            "histograms": {
                key: h.summary() for key, h in sorted(histograms.items())
            },
        }

    def series_names(self) -> List[str]:
        """Every live series key, sorted."""
        with self._lock:
            return sorted(
                list(self._counters)
                + list(self._gauges)
                + list(self._histograms)
            )

    def dump_state(self) -> Dict[str, Dict[str, Any]]:
        """Lossless, picklable view of every instrument.

        Counters and gauges dump their raw values; histograms dump full
        bucket states (:meth:`Histogram.state`).  A worker process sends
        this back to the parent, which folds it in via :meth:`merge` —
        ``registry.merge(other.dump_state())`` leaves ``registry`` exactly
        as if it had recorded both processes' observations itself.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {key: c.value for key, c in sorted(counters.items())},
            "gauges": {key: g.value for key, g in sorted(gauges.items())},
            "histograms": {
                key: h.state() for key, h in sorted(histograms.items())
            },
        }

    def merge(self, state: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold a :meth:`dump_state` payload into this registry.

        Counters add, histograms combine bucket-for-bucket, and gauges
        take the incoming value (last merge wins — callers that need
        deterministic gauges must merge worker states in a fixed order,
        which the parallel fabric does by folding chunks in submission
        order).  Series keys already carry their labels, so labelled
        series merge like any other.
        """
        for key, value in state.get("counters", {}).items():
            self._counter_by_key(key).inc(float(value))
        for key, value in state.get("gauges", {}).items():
            self._gauge_by_key(key).set(float(value))
        for key, hist_state in state.get("histograms", {}).items():
            bounds = tuple(float(b) for b in hist_state["bounds"])
            with self._lock:
                instrument = self._histograms.get(key)
                if instrument is None:
                    instrument = self._histograms[key] = Histogram(bounds)
            instrument.merge_state(hist_state)

    def _counter_by_key(self, key: str) -> Counter:
        """Counter lookup by full series key (merging path)."""
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
        return instrument

    def _gauge_by_key(self, key: str) -> Gauge:
        """Gauge lookup by full series key (merging path)."""
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
        return instrument

    def reset(self) -> None:
        """Drop every instrument (tests and fresh experiment runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


class NullMetrics:
    """No-op backend: every instrument is a shared inert singleton."""

    enabled = False

    def counter(self, name: str, **labels: LabelValue) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: LabelValue) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        **labels: LabelValue,
    ) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def series_names(self) -> List[str]:
        return []

    def dump_state(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, state: Mapping[str, Mapping[str, Any]]) -> None:
        pass

    def reset(self) -> None:
        pass


Metrics = Union[MetricsRegistry, NullMetrics]

#: Process-wide active backend.  Swapped atomically (name rebinding) by
#: :func:`set_metrics`; readers grab it once per object lifetime.
_ACTIVE: Metrics = NullMetrics()
_ACTIVE_LOCK = threading.Lock()
#: PID that installed the active backend.  A forked worker inherits the
#: parent's live registry object; recording into it would double-count
#: once the parent merges the worker's own snapshot back in, so
#: :func:`get_metrics` demotes inherited registries to ``NullMetrics``.
_ACTIVE_PID: int = os.getpid()


def get_metrics() -> Metrics:
    """The active metrics backend (``NullMetrics`` unless enabled).

    Fork-safe: when called in a child process that inherited a *live*
    parent registry, the child's backend is reset to ``NullMetrics``
    first (the parallel fabric gives workers their own registry and
    merges it back explicitly — see ``repro.parallel``).
    """
    if _ACTIVE.enabled and os.getpid() != _ACTIVE_PID:
        set_metrics(NullMetrics())
    return _ACTIVE


def set_metrics(backend: Metrics) -> Metrics:
    """Install ``backend`` as the active one; returns the previous."""
    global _ACTIVE, _ACTIVE_PID
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = backend
        _ACTIVE_PID = os.getpid()
    return previous


def enable_metrics(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Activate (and return) a live registry."""
    live = registry if registry is not None else MetricsRegistry()
    set_metrics(live)
    return live


def disable_metrics() -> None:
    """Return to the no-op backend."""
    set_metrics(NullMetrics())
