"""Structured span tracing with JSONL sinks.

A *span* wraps a unit of work (``with span("aggregator.reorder",
n_txs=N):``) and emits one JSON event when it closes, carrying:

* ``name`` — dotted span name, same conventions as metric names;
* ``span_id`` / ``parent_id`` — deterministic per-tracer sequence
  numbers; nesting is per-thread, so concurrent experiments keep their
  parent chains separate;
* ``start`` / ``end`` / ``duration_s`` — monotonic seconds since the
  tracer's epoch (``time.perf_counter`` based, immune to wall-clock
  steps);
* ``attrs`` — any keyword attributes, including ones attached mid-span
  via :meth:`Span.add`.

Because events are emitted at span *close*, a child's event always
precedes its parent's in the JSONL stream — consumers can rebuild the
tree from ``parent_id`` alone, and tail-reading a live file shows
finished work first.

Sinks are pluggable: an in-memory ring buffer (tests, `parole
telemetry`), an append-only JSONL file, or stderr.  The module-level
:func:`span` / :func:`event` helpers delegate to the active tracer and
collapse to shared no-op objects when tracing is disabled, so
instrumented call sites cost almost nothing by default.
"""

from __future__ import annotations

import itertools
import json
import sys
import threading
import time
from collections import deque
from typing import Any, Dict, IO, List, Optional, Union

from .metrics import get_metrics

__all__ = [
    "Span",
    "Tracer",
    "TraceSink",
    "NullSink",
    "RingBufferSink",
    "FileSink",
    "StderrSink",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "span",
    "event",
]


class TraceSink:
    """Interface every sink implements."""

    def emit(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class NullSink(TraceSink):
    """Swallows everything."""

    def emit(self, record: Dict[str, Any]) -> None:
        pass


class RingBufferSink(TraceSink):
    """Keeps the last ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._events: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def emit(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(record)

    def events(self) -> List[Dict[str, Any]]:
        """Buffered events, oldest first."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()


class _StreamSink(TraceSink):
    """Writes one compact JSON document per line to a stream."""

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream
        self._lock = threading.Lock()

    def emit(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            self._stream.write(line + "\n")


class StderrSink(_StreamSink):
    """JSONL to stderr (live debugging)."""

    def __init__(self) -> None:
        super().__init__(sys.stderr)


class FileSink(TraceSink):
    """Append-only JSONL file sink (opened lazily, line-buffered)."""

    def __init__(self, path: Union[str, "Any"]) -> None:
        self.path = str(path)
        self._stream: Optional[IO[str]] = None
        self._lock = threading.Lock()

    def emit(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            if self._stream is None:
                self._stream = open(self.path, "a", buffering=1)
            self._stream.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if self._stream is not None:
                self._stream.close()
                self._stream = None


class Span:
    """One open span; emitted to the sink when the ``with`` block exits."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "_tracer", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._start = tracer.clock()

    def add(self, **attrs: Any) -> "Span":
        """Attach more attributes mid-span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self)
        end = self._tracer.clock()
        record = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": round(self._start, 9),
            "end": round(end, 9),
            "duration_s": round(end - self._start, 9),
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = self.attrs
        self._tracer.sink.emit(record)


class _NullSpan:
    """Inert stand-in returned when tracing is disabled."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    attrs: Dict[str, Any] = {}

    def add(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Emits spans and point events into a sink.

    ``clock`` returns monotonic seconds relative to the tracer's epoch;
    span ids come from a deterministic per-tracer counter, so traces are
    reproducible modulo timing.
    """

    def __init__(self, sink: Optional[TraceSink] = None) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.enabled = not isinstance(self.sink, NullSink)
        self._epoch = time.perf_counter()
        self._ids = itertools.count(1)
        self._local = threading.local()

    def clock(self) -> float:
        """Monotonic seconds since the tracer's epoch."""
        return time.perf_counter() - self._epoch

    # ------------------------------------------------------------------ #
    # Span stack (per-thread)
    # ------------------------------------------------------------------ #

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span_obj: Span) -> None:
        self._stack().append(span_obj)

    def _pop(self, span_obj: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span_obj:
            stack.pop()
        elif span_obj in stack:  # exited out of order; drop through it
            stack.remove(span_obj)

    def current_span_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def span(self, name: str, **attrs: Any) -> Union[Span, _NullSpan]:
        """Open a span; use as a context manager."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(
            tracer=self,
            name=name,
            span_id=next(self._ids),
            parent_id=self.current_span_id(),
            attrs=attrs,
        )

    def event(self, name: str, **attrs: Any) -> None:
        """Emit a point event under the current span (if any)."""
        if not self.enabled:
            return
        record: Dict[str, Any] = {
            "type": "event",
            "name": name,
            "parent_id": self.current_span_id(),
            "t": round(self.clock(), 9),
        }
        if attrs:
            record["attrs"] = attrs
        self.sink.emit(record)

    def absorb(self, records: List[Dict[str, Any]], **attrs: Any) -> int:
        """Re-emit span/event records captured in another process.

        Worker processes trace into a :class:`RingBufferSink`; the parent
        calls ``absorb`` with the buffered records to splice them into its
        own trace.  Span ids are remapped into this tracer's id sequence
        (keeping parent/child chains intact within the absorbed batch);
        records whose parent lies outside the batch are re-parented under
        the parent process's current span.  Extra ``attrs`` (e.g.
        ``worker=<pid>``) are stamped onto every absorbed record.
        Returns the number of records emitted.
        """
        if not self.enabled:
            return 0
        id_map: Dict[int, int] = {}
        for record in records:
            old_id = record.get("span_id")
            if isinstance(old_id, int):
                id_map[old_id] = next(self._ids)
        anchor = self.current_span_id()
        emitted = 0
        for record in records:
            copy = dict(record)
            old_id = copy.get("span_id")
            if isinstance(old_id, int):
                copy["span_id"] = id_map[old_id]
            parent = copy.get("parent_id")
            copy["parent_id"] = id_map.get(parent, anchor)
            if attrs:
                merged = dict(copy.get("attrs") or {})
                merged.update(attrs)
                copy["attrs"] = merged
            self.sink.emit(copy)
            emitted += 1
        return emitted

    def emit_metrics(self, name: str = "metrics") -> None:
        """Attach a snapshot of the active metrics registry to the trace."""
        if not self.enabled:
            return
        self.sink.emit(
            {
                "type": "metrics",
                "name": name,
                "parent_id": self.current_span_id(),
                "t": round(self.clock(), 9),
                "metrics": get_metrics().snapshot(),
            }
        )

    def close(self) -> None:
        self.sink.close()


#: Process-wide active tracer (disabled by default).
_ACTIVE_TRACER = Tracer()
_TRACER_LOCK = threading.Lock()


def get_tracer() -> Tracer:
    """The active tracer (a disabled one unless tracing was enabled)."""
    return _ACTIVE_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the active one; returns the previous."""
    global _ACTIVE_TRACER
    with _TRACER_LOCK:
        previous = _ACTIVE_TRACER
        _ACTIVE_TRACER = tracer
    return previous


def enable_tracing(sink: TraceSink) -> Tracer:
    """Activate (and return) a tracer writing into ``sink``."""
    return_tracer = Tracer(sink)
    set_tracer(return_tracer)
    return return_tracer


def disable_tracing() -> None:
    """Return to the no-op tracer (closing nothing; sinks are caller-owned)."""
    set_tracer(Tracer())


def span(name: str, **attrs: Any) -> Union[Span, _NullSpan]:
    """``get_tracer().span(...)`` shorthand for instrumented call sites."""
    return _ACTIVE_TRACER.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """``get_tracer().event(...)`` shorthand."""
    _ACTIVE_TRACER.event(name, **attrs)
