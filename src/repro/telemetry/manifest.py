"""Run manifests: the self-describing record written next to results.

A manifest answers "what exactly produced this artifact?" — experiment
id, effort preset, RNG seed, a stable hash of the config parameters, the
git revision, wall time, peak traced memory, and a dump of every metric
the run recorded.  ``experiments/runner.run_all`` writes one per
experiment (``<id>.manifest.json``); benches and ad-hoc scripts can use
:class:`ManifestRecorder` directly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

from .metrics import get_metrics

__all__ = [
    "MANIFEST_SCHEMA",
    "RunManifest",
    "ManifestRecorder",
    "config_hash",
    "git_revision",
]

MANIFEST_SCHEMA = "repro.telemetry/manifest/v1"


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to deterministic JSON-able primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canonical(dataclasses.asdict(value))
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=str)
        return [_canonical(item) for item in items]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def config_hash(params: Any) -> str:
    """Stable SHA-256 over a config mapping/dataclass (order-insensitive)."""
    payload = json.dumps(_canonical(params), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def git_revision(root: Union[str, pathlib.Path, None] = None) -> Optional[str]:
    """Current git commit hash, read straight from ``.git`` (no subprocess).

    Walks up from ``root`` (default: this package's repository) to the
    first ``.git`` directory; returns ``None`` when not in a checkout.
    """
    start = pathlib.Path(root) if root is not None else pathlib.Path(__file__)
    for candidate in [start] + list(start.parents):
        git_dir = candidate / ".git"
        if not git_dir.is_dir():
            continue
        try:
            head = (git_dir / "HEAD").read_text().strip()
            if head.startswith("ref:"):
                ref = head.split(None, 1)[1]
                ref_path = git_dir / ref
                if ref_path.exists():
                    return ref_path.read_text().strip()
                packed = git_dir / "packed-refs"
                if packed.exists():
                    for line in packed.read_text().splitlines():
                        if line.endswith(ref) and not line.startswith("#"):
                            return line.split()[0]
                return None
            return head
        except OSError:
            return None
    return None


@dataclass(frozen=True)
class RunManifest:
    """Everything needed to reproduce (and audit) one run."""

    experiment_id: str
    description: str = ""
    preset: str = ""
    seed: Optional[int] = None
    config: Dict[str, Any] = field(default_factory=dict)
    config_digest: str = ""
    git_rev: Optional[str] = None
    started_at: str = ""
    duration_seconds: float = 0.0
    peak_memory_bytes: int = 0
    metrics: Dict[str, Any] = field(default_factory=dict)
    artifacts: Dict[str, str] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)
    schema: str = MANIFEST_SCHEMA

    def to_json(self) -> Dict[str, Any]:
        return _canonical(dataclasses.asdict(self))

    def write(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    @classmethod
    def read(cls, path: Union[str, pathlib.Path]) -> "RunManifest":
        payload = json.loads(pathlib.Path(path).read_text())
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


class ManifestRecorder:
    """Context manager that measures a run and writes its manifest.

    Wall-clocks the block, tracks peak traced memory (starting
    ``tracemalloc`` only if nothing else is already tracing), snapshots
    the active metrics registry on exit, and — when ``out_dir`` is given
    — writes ``<experiment_id>.manifest.json`` there.  The finished
    manifest is available as ``recorder.manifest`` afterwards.
    """

    def __init__(
        self,
        experiment_id: str,
        description: str = "",
        preset: str = "",
        seed: Optional[int] = None,
        config: Optional[Mapping[str, Any]] = None,
        out_dir: Union[str, pathlib.Path, None] = None,
        extra: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.experiment_id = experiment_id
        self.description = description
        self.preset = preset
        self.seed = seed
        self.config = dict(config or {})
        self.out_dir = pathlib.Path(out_dir) if out_dir is not None else None
        self.extra = dict(extra or {})
        self.manifest: Optional[RunManifest] = None
        self.path: Optional[pathlib.Path] = None
        self._started = 0.0
        self._started_wall = ""
        self._owns_tracemalloc = False

    def add_artifact(self, name: str, path: Union[str, pathlib.Path]) -> None:
        """Register an output file the manifest should point at."""
        self.extra.setdefault("artifacts", {})[name] = str(path)

    def __enter__(self) -> "ManifestRecorder":
        self._started_wall = time.strftime("%Y-%m-%dT%H:%M:%S%z")
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True
        else:
            tracemalloc.reset_peak()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._started
        peak = 0
        if tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            if self._owns_tracemalloc:
                tracemalloc.stop()
        extra = dict(self.extra)
        artifacts = {str(k): str(v) for k, v in extra.pop("artifacts", {}).items()}
        if exc_type is not None:
            extra["error"] = f"{exc_type.__name__}: {exc}"
        self.manifest = RunManifest(
            experiment_id=self.experiment_id,
            description=self.description,
            preset=self.preset,
            seed=self.seed,
            config=_canonical(self.config),
            config_digest=config_hash(self.config),
            git_rev=git_revision(),
            started_at=self._started_wall,
            duration_seconds=duration,
            peak_memory_bytes=peak,
            metrics=get_metrics().snapshot(),
            artifacts=artifacts,
            extra=extra,
        )
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            self.path = self.manifest.write(
                self.out_dir / f"{self.experiment_id}.manifest.json"
            )
