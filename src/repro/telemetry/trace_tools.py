"""Reading side of the JSONL traces: summarize and tail.

Backs the ``parole telemetry`` CLI subcommand.  Both helpers are
tolerant of in-progress files: lines that fail to parse (e.g. a
partially flushed final line) are counted and skipped, never fatal.
"""

from __future__ import annotations

import json
import pathlib
from collections import defaultdict
from typing import Any, Dict, List, Tuple, Union

from ..errors import ReproError

__all__ = ["read_trace", "summarize_trace", "tail_trace"]


def read_trace(
    path: Union[str, pathlib.Path],
) -> Tuple[List[Dict[str, Any]], int]:
    """Parse a JSONL trace; returns (events, unparseable-line count).

    A trace file may be mid-write (truncated final line), contain
    undecodable bytes, or carry records of the wrong shape — all of
    those are counted and skipped, never raised.  Only a missing or
    unreadable file is fatal.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ReproError(f"trace file not found: {path}")
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as exc:
        raise ReproError(f"cannot read trace file {path}: {exc}") from exc
    events: List[Dict[str, Any]] = []
    bad = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            bad += 1
            continue
        if isinstance(record, dict):
            events.append(record)
        else:
            bad += 1
    return events, bad


def _as_float(value: Any, default: float = 0.0) -> float:
    """Coerce a trace field to a finite float, falling back on garbage.

    Truncated or hand-edited traces can carry strings, nulls, lists or
    NaN where a number belongs; the summarizer degrades those to
    ``default`` instead of crashing mid-report.
    """
    try:
        result = float(value)
    except (TypeError, ValueError):
        return default
    if result != result or result in (float("inf"), float("-inf")):
        return default
    return result


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile over already-sorted values."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(q / 100.0 * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def summarize_trace(path: Union[str, pathlib.Path]) -> str:
    """Human-readable digest: per-span-name latency stats and event counts."""
    events, bad = read_trace(path)
    spans = [e for e in events if e.get("type") == "span"]
    points = [e for e in events if e.get("type") == "event"]
    metrics_events = [e for e in events if e.get("type") == "metrics"]

    durations: Dict[str, List[float]] = defaultdict(list)
    for record in spans:
        durations[str(record.get("name", "?"))].append(
            _as_float(record.get("duration_s", 0.0))
        )

    lines = [
        f"trace: {path}",
        f"events: {len(events)} total — {len(spans)} spans, "
        f"{len(points)} point events, {len(metrics_events)} metrics snapshots"
        + (f", {bad} unparseable lines" if bad else ""),
    ]
    if spans:
        clocks = [_as_float(e.get("end", 0.0)) for e in spans]
        lines.append(f"span clock range: 0.000s .. {max(clocks):.3f}s")
        lines.append("")
        lines.append(
            f"{'span':<32} {'count':>6} {'total s':>9} {'mean ms':>9} "
            f"{'p95 ms':>9} {'max ms':>9}"
        )
        for name in sorted(durations, key=lambda n: -sum(durations[n])):
            values = sorted(durations[name])
            total = sum(values)
            lines.append(
                f"{name:<32} {len(values):>6} {total:>9.3f} "
                f"{1000.0 * total / len(values):>9.3f} "
                f"{1000.0 * _percentile(values, 95.0):>9.3f} "
                f"{1000.0 * values[-1]:>9.3f}"
            )
    if metrics_events:
        last = metrics_events[-1].get("metrics", {})
        counters = last.get("counters", {}) if isinstance(last, dict) else {}
        if isinstance(counters, dict) and counters:
            lines.append("")
            lines.append("final counter values:")
            for key in sorted(counters, key=str):
                lines.append(f"  {key} = {_as_float(counters[key]):g}")
    return "\n".join(lines)


def _format_event(record: Dict[str, Any]) -> str:
    kind = record.get("type", "?")
    name = record.get("name", "?")
    if kind == "span":
        extra = (
            f"id={record.get('span_id')} parent={record.get('parent_id')} "
            f"dur={1000.0 * _as_float(record.get('duration_s', 0.0)):.3f}ms"
        )
    else:
        extra = f"t={_as_float(record.get('t', 0.0)):.6f}s"
    attrs = record.get("attrs")
    suffix = f" {json.dumps(attrs, default=str)}" if attrs else ""
    return f"[{kind}] {name} {extra}{suffix}"


def tail_trace(path: Union[str, pathlib.Path], count: int = 20) -> str:
    """The last ``count`` events, one formatted line each."""
    if count < 1:
        raise ReproError("tail count must be positive")
    events, _ = read_trace(path)
    return "\n".join(_format_event(record) for record in events[-count:])
