"""Unified telemetry layer: metrics, span tracing, run manifests.

Three cooperating pieces, all zero-dependency and off by default:

* :mod:`~repro.telemetry.metrics` — a process-wide metrics registry
  (counters, gauges, fixed-bucket histograms with percentiles, labelled
  series).  ``get_metrics()`` returns the no-op :class:`NullMetrics`
  until enabled, so instrumented hot paths pay ~nothing when
  observability is off.
* :mod:`~repro.telemetry.tracing` — structured span tracing emitting
  JSONL events (monotonic timestamps, parent/child span ids, attached
  metric snapshots) into pluggable sinks: in-memory ring buffer, file,
  or stderr.
* :mod:`~repro.telemetry.manifest` — run manifests: config hash, seed,
  git revision, duration, peak memory and a metrics dump written next
  to experiment artifacts.

Typical session::

    from repro.config import TelemetryConfig
    from repro import telemetry

    session = telemetry.configure(
        TelemetryConfig(enabled=True, trace_path="trace.jsonl")
    )
    ...  # run experiments; layers record into the registry/tracer
    session.shutdown()  # flush + restore the no-op backends

The ``parole telemetry`` CLI subcommand summarizes or tails a JSONL
trace; see ``docs/telemetry.md`` for the event schema and naming
conventions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..config import TelemetryConfig
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    disable_metrics,
    enable_metrics,
    get_metrics,
    set_metrics,
)
from .tracing import (
    FileSink,
    NullSink,
    RingBufferSink,
    Span,
    StderrSink,
    TraceSink,
    Tracer,
    disable_tracing,
    enable_tracing,
    event,
    get_tracer,
    set_tracer,
    span,
)
from .manifest import (
    MANIFEST_SCHEMA,
    ManifestRecorder,
    RunManifest,
    config_hash,
    git_revision,
)
from .trace_tools import read_trace, summarize_trace, tail_trace

__all__ = [
    "TelemetryConfig",
    "TelemetrySession",
    "configure",
    "reset_for_worker",
    # metrics
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "get_metrics",
    "set_metrics",
    "enable_metrics",
    "disable_metrics",
    # tracing
    "Tracer",
    "Span",
    "TraceSink",
    "NullSink",
    "RingBufferSink",
    "FileSink",
    "StderrSink",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "span",
    "event",
    # manifests
    "MANIFEST_SCHEMA",
    "RunManifest",
    "ManifestRecorder",
    "config_hash",
    "git_revision",
    # trace tools
    "read_trace",
    "summarize_trace",
    "tail_trace",
]


def reset_for_worker() -> None:
    """Restore no-op telemetry backends in a freshly started worker.

    A forked worker inherits the parent's live registry, tracer and open
    sinks; recording into them would double-count metrics (the parent
    also merges the worker's explicit snapshot) and interleave writes on
    shared file descriptors.  Process-pool initializers call this first;
    the worker then enables its *own* registry/tracer per work chunk and
    ships the results back for the parent to merge.
    """
    disable_metrics()
    disable_tracing()


class _FanOutSink(TraceSink):
    """Duplicates every event into several sinks."""

    def __init__(self, *sinks: TraceSink) -> None:
        self.sinks = tuple(sinks)

    def emit(self, record) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


@dataclass
class TelemetrySession:
    """Handle over one configured telemetry setup."""

    config: TelemetryConfig
    metrics: Union[MetricsRegistry, NullMetrics]
    tracer: Tracer
    ring: Optional[RingBufferSink] = None

    def shutdown(self) -> None:
        """Flush sinks and restore the no-op backends."""
        self.tracer.close()
        disable_tracing()
        disable_metrics()


def configure(config: Optional[TelemetryConfig] = None) -> TelemetrySession:
    """Install the backends ``config`` asks for and return the session.

    With ``enabled=False`` (the default config) this restores the no-op
    backends — useful to tear down a previous session deterministically.
    """
    cfg = config or TelemetryConfig()
    if not cfg.enabled:
        disable_metrics()
        disable_tracing()
        return TelemetrySession(
            config=cfg, metrics=get_metrics(), tracer=get_tracer(), ring=None
        )
    registry = enable_metrics()
    ring: Optional[RingBufferSink] = None
    sinks: list = []
    if cfg.trace_path is not None:
        sinks.append(FileSink(cfg.trace_path))
    else:
        ring = RingBufferSink(capacity=cfg.ring_buffer_size)
        sinks.append(ring)
    if cfg.trace_to_stderr:
        sinks.append(StderrSink())
    sink = sinks[0] if len(sinks) == 1 else _FanOutSink(*sinks)
    tracer = enable_tracing(sink)
    return TelemetrySession(
        config=cfg, metrics=registry, tracer=tracer, ring=ring
    )
