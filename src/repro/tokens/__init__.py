"""Ethereum token standards used by the paper.

* :mod:`repro.tokens.erc20` — fungible tokens (background Section II-B);
* :mod:`repro.tokens.erc721` — the limited-edition NFT state machine with
  the mint/transfer/burn constraints of Eq. 1-6;
* :mod:`repro.tokens.pricing` — the scarcity pricing rule of Eq. 10.
"""

from .erc20 import ERC20Token
from .erc721 import (
    LimitedEditionNFT,
    NFTEvent,
    TxValidity,
)
from .pricing import ScarcityPricing
from .registry import TokenRegistry

__all__ = [
    "ERC20Token",
    "LimitedEditionNFT",
    "NFTEvent",
    "TxValidity",
    "ScarcityPricing",
    "TokenRegistry",
]
