"""Scarcity-driven pricing of limited-edition NFTs (paper Eq. 10).

The unit price of a limited-edition token after the ``t``-th transaction is

.. math::  P^t = \\frac{S^0}{S^t} \\cdot P^0

where :math:`S^0` is the total mintable supply, :math:`S^t` the number of
tokens *still mintable* after transaction ``t``, and :math:`P^0` the
initial price.  Minting decreases :math:`S^t` (price rises); burning
increases it (price falls); transfers leave it unchanged.

Eq. 10 is undefined at :math:`S^t = 0` (everything minted).  We clamp the
denominator at 1 so a fully-minted collection plateaus at the
one-remaining price; this choice is documented in DESIGN.md and never
affects the paper's experiments, which always leave supply headroom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import TokenError

#: Supplies up to this size get a precomputed price table; Eq. 10 prices
#: then cost one bounds check and an index instead of a division.  Larger
#: collections fall back to the closed form (the table would be bigger
#: than the arithmetic is worth).
PRICE_TABLE_LIMIT = 65536


@dataclass(frozen=True)
class ScarcityPricing:
    """Price model parameterised by total supply and initial price."""

    max_supply: int
    initial_price_eth: float

    def __post_init__(self) -> None:
        if self.max_supply <= 0:
            raise TokenError("max_supply must be positive")
        if self.initial_price_eth <= 0:
            raise TokenError("initial price must be positive")
        object.__setattr__(self, "_price_table", None)

    def table(self) -> Optional[Tuple[float, ...]]:
        """Precomputed ``remaining -> price`` table (``None`` above the limit).

        The replay engine indexes this directly on its hot path; entries
        use the same expression as the closed form below, so table
        lookups are bit-identical to computed prices.
        """
        table = self._price_table
        if table is None and self.max_supply <= PRICE_TABLE_LIMIT:
            table = tuple(
                self.max_supply / max(remaining, 1) * self.initial_price_eth
                for remaining in range(self.max_supply + 1)
            )
            object.__setattr__(self, "_price_table", table)
        return table

    def price(self, remaining_supply: int) -> float:
        """Unit price in ETH given ``remaining_supply`` mintable tokens."""
        if remaining_supply < 0:
            raise TokenError(
                f"remaining supply cannot be negative ({remaining_supply})"
            )
        if remaining_supply > self.max_supply:
            raise TokenError(
                f"remaining supply {remaining_supply} exceeds max {self.max_supply}"
            )
        table = self.table()
        if table is not None:
            return table[remaining_supply]
        denominator = max(remaining_supply, 1)
        return self.max_supply / denominator * self.initial_price_eth

    def price_after_mint(self, remaining_supply: int) -> float:
        """Price after one further mint from ``remaining_supply``."""
        if remaining_supply < 1:
            raise TokenError("cannot mint from zero remaining supply")
        return self.price(remaining_supply - 1)

    def price_after_burn(self, remaining_supply: int) -> float:
        """Price after one burn returns a unit to the mintable pool."""
        return self.price(remaining_supply + 1)

    def appreciation_from(self, remaining_supply: int) -> float:
        """Relative price increase caused by one mint (demand pressure)."""
        before = self.price(remaining_supply)
        after = self.price_after_mint(remaining_supply)
        return (after - before) / before
