"""Limited-edition ERC-721 NFT state machine (paper Section V-B).

:class:`LimitedEditionNFT` implements the three transaction types and
their execution constraints exactly as Eq. 1-6:

* **Mint** ``M_k^{i,t}`` — requires ``B_k >= P`` and remaining supply
  ``S >= 1``; debits the price, assigns ownership, decrements supply.
* **Transfer** ``T_{k,j}^{i,t}`` — requires the buyer's balance covers the
  price and the seller owns the token; moves the price buyer → seller.
* **Burn** ``D_k^{i,t}`` — requires ownership; releases the token back to
  the mintable pool (supply increments, price falls per Eq. 10).

Payments settle against a mutable ``balances`` mapping (address → ETH
float) supplied by the caller, so the same contract logic runs inside the
OVM replay, the RL environment and the end-to-end rollup pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, MutableMapping, Optional, Set, Tuple

from ..config import NFTContractConfig
from ..errors import NotOwnerError, SupplyExhaustedError, TokenError, UnknownTokenError
from .pricing import ScarcityPricing


class TxValidity(enum.Enum):
    """Outcome classes of a constraint check (Eq. 1, 3, 5)."""

    VALID = "valid"
    INSUFFICIENT_BALANCE = "insufficient_balance"
    SUPPLY_EXHAUSTED = "supply_exhausted"
    NOT_OWNER = "not_owner"
    TOKEN_ALREADY_MINTED = "token_already_minted"
    UNKNOWN_TOKEN = "unknown_token"


@dataclass(frozen=True)
class NFTEvent:
    """One applied state transition, for audit trails and fraud proofs."""

    kind: str
    actor: str
    counterparty: Optional[str]
    token_id: int
    price_before: float
    price_after: float
    remaining_supply: int


class LimitedEditionNFT:
    """A scarcity-priced ERC-721 contract.

    Parameters
    ----------
    config:
        Supply and initial-price parameters (defaults are the PAROLE Token).
    owners:
        Optional pre-existing ownership map ``{token_id: owner}`` for
        mid-life snapshots such as the case studies (5 of 10 PT minted).
    """

    def __init__(
        self,
        config: Optional[NFTContractConfig] = None,
        owners: Optional[Dict[int, str]] = None,
    ) -> None:
        self.config = config or NFTContractConfig()
        self.pricing = ScarcityPricing(
            max_supply=self.config.max_supply,
            initial_price_eth=self.config.initial_price_eth,
        )
        self._owners: Dict[int, str] = dict(owners or {})
        if len(self._owners) > self.config.max_supply:
            raise TokenError("more pre-minted tokens than max supply")
        for token_id in self._owners:
            if not 0 <= token_id < self.config.max_supply:
                raise TokenError(
                    f"pre-minted token id {token_id} outside [0, {self.config.max_supply})"
                )
        self._burned: Set[int] = set()
        self._events: List[NFTEvent] = []
        self._token_approvals: Dict[int, str] = {}
        self._operator_approvals: Dict[Tuple[str, str], bool] = {}
        self._metadata: Dict[int, Dict[str, str]] = {}

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @property
    def minted_count(self) -> int:
        """Number of currently-live tokens."""
        return len(self._owners)

    @property
    def remaining_supply(self) -> int:
        """``S^t`` — tokens still available to mint (burns replenish it)."""
        return self.config.max_supply - len(self._owners)

    @property
    def unit_price(self) -> float:
        """``P^t`` — current price per token (Eq. 10)."""
        return self.pricing.price(self.remaining_supply)

    @property
    def events(self) -> Tuple[NFTEvent, ...]:
        """All applied transitions, oldest first."""
        return tuple(self._events)

    def owner_of(self, token_id: int) -> str:
        """Current owner of a live token."""
        try:
            return self._owners[token_id]
        except KeyError:
            raise UnknownTokenError(f"token {token_id} is not live") from None

    def exists(self, token_id: int) -> bool:
        """Whether ``token_id`` is currently live (minted, not burned)."""
        return token_id in self._owners

    def tokens_of(self, owner: str) -> Tuple[int, ...]:
        """Sorted ids of all live tokens held by ``owner``."""
        return tuple(sorted(t for t, o in self._owners.items() if o == owner))

    def holdings_value(self, owner: str) -> float:
        """ETH valuation of ``owner``'s tokens at the current unit price."""
        return len(self.tokens_of(owner)) * self.unit_price

    def next_token_id(self) -> int:
        """Lowest id that has never been minted (fresh-mint assignment)."""
        for candidate in range(self.config.max_supply):
            if candidate not in self._owners and candidate not in self._burned:
                return candidate
        # All ids have lived at some point; reuse the lowest burned id.
        for candidate in range(self.config.max_supply):
            if candidate not in self._owners:
                return candidate
        raise SupplyExhaustedError("every token id is live")

    def snapshot(self) -> "LimitedEditionNFT":
        """Deep copy of the contract state for speculative execution."""
        clone = LimitedEditionNFT(config=self.config, owners=dict(self._owners))
        clone._burned = set(self._burned)
        clone._events = list(self._events)
        clone._token_approvals = dict(self._token_approvals)
        clone._operator_approvals = dict(self._operator_approvals)
        clone._metadata = {k: dict(v) for k, v in self._metadata.items()}
        return clone

    # ------------------------------------------------------------------ #
    # ERC-721 approvals (`approve` / `setApprovalForAll`)
    # ------------------------------------------------------------------ #

    def approve(self, owner: str, approved: str, token_id: int) -> None:
        """Authorise ``approved`` to transfer one specific token."""
        if self.owner_of(token_id) != owner:
            raise NotOwnerError(
                f"{owner!r} cannot approve token {token_id}: not the owner"
            )
        self._token_approvals[token_id] = approved

    def get_approved(self, token_id: int) -> Optional[str]:
        """The single-token approvee, if any."""
        if not self.exists(token_id):
            raise UnknownTokenError(f"token {token_id} is not live")
        return self._token_approvals.get(token_id)

    def set_approval_for_all(
        self, owner: str, operator: str, approved: bool
    ) -> None:
        """Authorise (or revoke) an operator over all of ``owner``'s tokens."""
        self._operator_approvals[(owner, operator)] = approved

    def is_approved_for_all(self, owner: str, operator: str) -> bool:
        """Whether ``operator`` may act on all of ``owner``'s tokens."""
        return self._operator_approvals.get((owner, operator), False)

    def is_authorized(self, actor: str, token_id: int) -> bool:
        """ERC-721's transfer authorisation: owner, approvee or operator."""
        owner = self.owner_of(token_id)
        return (
            actor == owner
            or self._token_approvals.get(token_id) == actor
            or self.is_approved_for_all(owner, actor)
        )

    def transfer_from(
        self,
        operator: str,
        seller: str,
        buyer: str,
        token_id: int,
        balances: MutableMapping[str, float],
    ) -> None:
        """Third-party transfer under ERC-721 authorisation rules."""
        if self.owner_of(token_id) != seller:
            raise NotOwnerError(
                f"{seller!r} does not own token {token_id}"
            )
        if not self.is_authorized(operator, token_id):
            raise TokenError(
                f"{operator!r} is not authorised for token {token_id}"
            )
        self.transfer(seller, buyer, token_id, balances)

    # ------------------------------------------------------------------ #
    # Metadata (`tokenURI`)
    # ------------------------------------------------------------------ #

    def set_metadata(self, token_id: int, **attributes: str) -> None:
        """Attach metadata attributes to a live token."""
        if not self.exists(token_id):
            raise UnknownTokenError(f"token {token_id} is not live")
        self._metadata.setdefault(token_id, {}).update(attributes)

    def metadata(self, token_id: int) -> Dict[str, str]:
        """A token's metadata attributes (empty dict when unset)."""
        if not self.exists(token_id):
            raise UnknownTokenError(f"token {token_id} is not live")
        return dict(self._metadata.get(token_id, {}))

    def token_uri(self, token_id: int) -> str:
        """The ERC-721 ``tokenURI``: a deterministic per-token locator."""
        if not self.exists(token_id):
            raise UnknownTokenError(f"token {token_id} is not live")
        return f"nft://{self.config.symbol.lower()}/{token_id}"

    # ------------------------------------------------------------------ #
    # Constraint checks (non-mutating)
    # ------------------------------------------------------------------ #

    def check_mint(
        self, minter: str, balances: MutableMapping[str, float]
    ) -> TxValidity:
        """Eq. 1: balance covers price and supply remains."""
        if self.remaining_supply < 1:
            return TxValidity.SUPPLY_EXHAUSTED
        if balances.get(minter, 0.0) < self.unit_price:
            return TxValidity.INSUFFICIENT_BALANCE
        return TxValidity.VALID

    def check_transfer(
        self,
        seller: str,
        buyer: str,
        token_id: int,
        balances: MutableMapping[str, float],
    ) -> TxValidity:
        """Eq. 3: buyer balance covers price and seller owns the token."""
        if token_id not in self._owners:
            return TxValidity.UNKNOWN_TOKEN
        if self._owners[token_id] != seller:
            return TxValidity.NOT_OWNER
        if balances.get(buyer, 0.0) < self.unit_price:
            return TxValidity.INSUFFICIENT_BALANCE
        return TxValidity.VALID

    def check_burn(self, owner: str, token_id: int) -> TxValidity:
        """Eq. 5: only the owner can burn a live token."""
        if token_id not in self._owners:
            return TxValidity.UNKNOWN_TOKEN
        if self._owners[token_id] != owner:
            return TxValidity.NOT_OWNER
        return TxValidity.VALID

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #

    def mint(
        self,
        minter: str,
        balances: MutableMapping[str, float],
        token_id: Optional[int] = None,
    ) -> int:
        """Execute ``M_k^{i,t}`` (Eq. 2); returns the minted token id."""
        validity = self.check_mint(minter, balances)
        if validity is TxValidity.SUPPLY_EXHAUSTED:
            raise SupplyExhaustedError(f"{self.config.symbol} is fully minted")
        if validity is TxValidity.INSUFFICIENT_BALANCE:
            raise TokenError(
                f"{minter!r} cannot afford mint at {self.unit_price:.6f} ETH"
            )
        if token_id is None:
            token_id = self.next_token_id()
        if token_id in self._owners:
            raise TokenError(f"token {token_id} is already live")
        price_before = self.unit_price
        balances[minter] = balances.get(minter, 0.0) - price_before
        self._owners[token_id] = minter
        self._burned.discard(token_id)
        self._events.append(
            NFTEvent(
                kind="mint",
                actor=minter,
                counterparty=None,
                token_id=token_id,
                price_before=price_before,
                price_after=self.unit_price,
                remaining_supply=self.remaining_supply,
            )
        )
        return token_id

    def transfer(
        self,
        seller: str,
        buyer: str,
        token_id: int,
        balances: MutableMapping[str, float],
    ) -> None:
        """Execute ``T_{k,j}^{i,t}`` (Eq. 4): buyer pays seller at ``P^t``."""
        validity = self.check_transfer(seller, buyer, token_id, balances)
        if validity is TxValidity.UNKNOWN_TOKEN:
            raise UnknownTokenError(f"token {token_id} is not live")
        if validity is TxValidity.NOT_OWNER:
            raise NotOwnerError(
                f"{seller!r} does not own token {token_id} "
                f"(owner is {self._owners[token_id]!r})"
            )
        if validity is TxValidity.INSUFFICIENT_BALANCE:
            raise TokenError(
                f"buyer {buyer!r} cannot afford token {token_id} "
                f"at {self.unit_price:.6f} ETH"
            )
        price = self.unit_price
        balances[buyer] = balances.get(buyer, 0.0) - price
        balances[seller] = balances.get(seller, 0.0) + price
        self._owners[token_id] = buyer
        self._token_approvals.pop(token_id, None)  # ERC-721: cleared on transfer
        self._events.append(
            NFTEvent(
                kind="transfer",
                actor=seller,
                counterparty=buyer,
                token_id=token_id,
                price_before=price,
                price_after=price,
                remaining_supply=self.remaining_supply,
            )
        )

    def burn(self, owner: str, token_id: int) -> None:
        """Execute ``D_k^{i,t}`` (Eq. 6): destroy and replenish supply."""
        validity = self.check_burn(owner, token_id)
        if validity is TxValidity.UNKNOWN_TOKEN:
            raise UnknownTokenError(f"token {token_id} is not live")
        if validity is TxValidity.NOT_OWNER:
            raise NotOwnerError(
                f"{owner!r} does not own token {token_id} "
                f"(owner is {self._owners[token_id]!r})"
            )
        price_before = self.unit_price
        del self._owners[token_id]
        self._burned.add(token_id)
        self._token_approvals.pop(token_id, None)
        self._metadata.pop(token_id, None)
        self._events.append(
            NFTEvent(
                kind="burn",
                actor=owner,
                counterparty=None,
                token_id=token_id,
                price_before=price_before,
                price_after=self.unit_price,
                remaining_supply=self.remaining_supply,
            )
        )
