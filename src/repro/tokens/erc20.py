"""A minimal ERC-20 fungible token.

The paper's L2 token (used to pay for NFTs) behaves like an ERC-20
balance: transferable, divisible, with the usual allowance mechanics.
Amounts are integers in the token's smallest unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..errors import InsufficientBalanceError, TokenError


@dataclass
class ERC20Token:
    """Fungible token with balances, allowances and a capped supply."""

    symbol: str
    name: str
    decimals: int = 18
    _balances: Dict[str, int] = field(default_factory=dict)
    _allowances: Dict[Tuple[str, str], int] = field(default_factory=dict)
    _total_supply: int = 0

    def total_supply(self) -> int:
        """Total units in circulation."""
        return self._total_supply

    def balance_of(self, owner: str) -> int:
        """Units held by ``owner`` (zero for unknown addresses)."""
        return self._balances.get(owner, 0)

    def mint(self, recipient: str, amount: int) -> None:
        """Create ``amount`` new units for ``recipient``."""
        if amount <= 0:
            raise TokenError("mint amount must be positive")
        self._balances[recipient] = self._balances.get(recipient, 0) + amount
        self._total_supply += amount

    def burn(self, owner: str, amount: int) -> None:
        """Destroy ``amount`` units held by ``owner``."""
        held = self.balance_of(owner)
        if amount <= 0 or held < amount:
            raise InsufficientBalanceError(owner, amount, held)
        self._balances[owner] = held - amount
        self._total_supply -= amount

    def transfer(self, sender: str, recipient: str, amount: int) -> None:
        """Move units between accounts."""
        held = self.balance_of(sender)
        if amount <= 0 or held < amount:
            raise InsufficientBalanceError(sender, amount, held)
        self._balances[sender] = held - amount
        self._balances[recipient] = self.balance_of(recipient) + amount

    def approve(self, owner: str, spender: str, amount: int) -> None:
        """Authorise ``spender`` to move up to ``amount`` of ``owner``'s units."""
        if amount < 0:
            raise TokenError("allowance cannot be negative")
        self._allowances[(owner, spender)] = amount

    def allowance(self, owner: str, spender: str) -> int:
        """Remaining authorised amount for a (owner, spender) pair."""
        return self._allowances.get((owner, spender), 0)

    def transfer_from(
        self, spender: str, owner: str, recipient: str, amount: int
    ) -> None:
        """Spend an allowance to move ``owner``'s units to ``recipient``."""
        allowed = self.allowance(owner, spender)
        if amount <= 0 or allowed < amount:
            raise TokenError(
                f"spender {spender!r} allowance {allowed} insufficient for {amount}"
            )
        self.transfer(owner, recipient, amount)
        self._allowances[(owner, spender)] = allowed - amount
