"""Registry of deployed token contracts on the simulated L2.

Maps symbolic contract addresses to live contract objects so the OVM can
resolve the contract a transaction targets, mirroring how the ORSC and
marketplace resolve collections by minting-contract address.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple, Union

from ..crypto import hash_value
from ..errors import TokenError
from .erc20 import ERC20Token
from .erc721 import LimitedEditionNFT

Contract = Union[ERC20Token, LimitedEditionNFT]


class TokenRegistry:
    """Address → contract resolution for the simulated chain."""

    def __init__(self) -> None:
        self._contracts: Dict[str, Contract] = {}

    def __contains__(self, address: str) -> bool:
        return address in self._contracts

    def __len__(self) -> int:
        return len(self._contracts)

    def __iter__(self) -> Iterator[Tuple[str, Contract]]:
        return iter(self._contracts.items())

    def deploy(self, contract: Contract, deployer: str = "0x0") -> str:
        """Register a contract and return its deterministic address."""
        symbol = getattr(contract, "symbol", None) or contract.config.symbol
        address = "0x" + hash_value(["deploy", deployer, symbol, len(self._contracts)])[:40]
        self._contracts[address] = contract
        return address

    def resolve(self, address: str) -> Contract:
        """Look up a deployed contract or raise :class:`TokenError`."""
        try:
            return self._contracts[address]
        except KeyError:
            raise TokenError(f"no contract deployed at {address!r}") from None

    def nft_contracts(self) -> Dict[str, LimitedEditionNFT]:
        """All deployed ERC-721 contracts keyed by address."""
        return {
            address: contract
            for address, contract in self._contracts.items()
            if isinstance(contract, LimitedEditionNFT)
        }
