"""Command-line interface: ``parole <subcommand>``.

Subcommands map one-to-one onto the experiment harnesses so every paper
table and figure can be regenerated from the shell::

    parole case-studies           # Figure 5
    parole attack --mempool 20    # one end-to-end attack round
    parole table3                 # Table III
    parole fig6 / fig7 / fig8 / fig9 / fig10 / fig11
    parole defense                # Section VIII evaluation
    parole telemetry trace.jsonl  # summarize a recorded span trace
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import experiments
from .config import eth_to_satoshi
from .experiments import FULL, QUICK, EffortPreset
from .parallel import TaskRunner, get_runner


def _preset(args: argparse.Namespace) -> EffortPreset:
    effort = getattr(args, "effort", None)
    if effort is not None:
        return FULL if effort == "full" else QUICK
    return FULL if getattr(args, "full", False) else QUICK


def _runner(args: argparse.Namespace) -> TaskRunner:
    """The fabric backend selected by ``--jobs``/``--schedule``/``--workers``."""
    return get_runner(
        getattr(args, "jobs", 1),
        workers=getattr(args, "workers", None),
        schedule=getattr(args, "schedule", None),
    )


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep (1 = serial, the default; "
             "negative = auto-size to the machine); results are "
             "identical for every value",
    )
    parser.add_argument(
        "--schedule", choices=("stealing", "static"), default=None,
        help="multi-process schedule: 'stealing' (work-stealing with "
             "adaptive chunks, the default for --jobs > 1) or 'static' "
             "(contiguous up-front chunks); results are identical",
    )


def _add_workers_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", action="append", default=None, metavar="HOST:PORT",
        help="remote 'parole worker serve' address; repeat the flag or "
             "comma-separate to add hosts (overrides --jobs/--schedule; "
             "results stay byte-identical to a local run)",
    )


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="content-addressed result store directory; completed "
             "experiments and sweep cells are reused across runs, so a "
             "killed run resumes where it stopped",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache and run everything cold",
    )
    parser.add_argument(
        "--cache-clear", action="store_true",
        help="empty the store before running",
    )


def _store(args: argparse.Namespace):
    """The ResultStore selected by the cache flags (None when disabled)."""
    cache_dir = getattr(args, "cache", None)
    if cache_dir is None or getattr(args, "no_cache", False):
        return None
    from .store import ResultStore

    store = ResultStore(cache_dir)
    if getattr(args, "cache_clear", False):
        store.clear()
    return store


def _cmd_case_studies(args: argparse.Namespace) -> int:
    cases = experiments.run_case_studies(certify_optimum=args.certify)
    print(experiments.render_case_studies(cases))
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    outcome = experiments.attack_round(
        mempool_size=args.mempool,
        num_ifus=args.ifus,
        preset=_preset(args),
        seed=args.seed,
    )
    print(f"arbitrage opportunity: {outcome.assessment.has_opportunity}")
    if outcome.result is not None:
        print(f"original objective : {outcome.result.original_objective:.4f} ETH")
        print(f"best objective     : {outcome.result.best_objective:.4f} ETH")
        print(f"profit             : {outcome.profit:.4f} ETH "
              f"({eth_to_satoshi(outcome.profit):,.0f} satoshi)")
    for ifu, profit in outcome.per_ifu_profit.items():
        print(f"  {ifu}: {profit:+.4f} ETH")
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    print(experiments.render_table3())
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    with _runner(args) as runner:
        points = experiments.run_fig6(preset=_preset(args), runner=runner)
    print(experiments.render_fig6(points))
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    with _runner(args) as runner:
        points = experiments.run_fig7(preset=_preset(args), runner=runner)
    print(experiments.render_fig7(points))
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    with _runner(args) as runner:
        series = experiments.run_fig8(preset=_preset(args), runner=runner)
    print(experiments.render_fig8(series))
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    with _runner(args) as runner:
        curves = experiments.run_fig9(preset=_preset(args), runner=runner)
    print(experiments.render_fig9(curves))
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    print(experiments.render_fig10())
    return 0


def _cmd_fig11(args: argparse.Namespace) -> int:
    with _runner(args) as runner:
        rows = experiments.run_fig11(runner=runner)
    print(experiments.render_fig11(rows))
    return 0


def _cmd_defense(args: argparse.Namespace) -> int:
    with _runner(args) as runner:
        points = experiments.run_defense_eval(
            preset=_preset(args), runner=runner
        )
    print(experiments.render_defense_eval(points))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .config import WorkloadConfig
    from .core import AttackCampaign

    preset = _preset(args)
    campaign = AttackCampaign(
        WorkloadConfig(
            mempool_size=args.mempool, num_users=max(8, args.mempool // 2),
            num_ifus=args.ifus, min_ifu_involvement=max(2, args.mempool // 4),
            seed=args.seed,
        ),
        preset.config(seed=args.seed),
    )
    report = campaign.run(args.rounds, store=_store(args))
    for record in report.rounds:
        print(f"round {record.round_index}: {record.profit_eth:+.4f} ETH "
              f"(attacked: {record.attacked})")
    print(f"cumulative profit: {report.total_profit_eth:.4f} ETH, "
          f"hit rate {report.hit_rate:.0%}")
    return 0


def _cmd_bisect(args: argparse.Namespace) -> int:
    from .rollup import BisectionGame, CorruptExecutor, honest_commitment
    from .workloads import case_study_fixture

    workload = case_study_fixture()
    game = BisectionGame(workload.pre_state)

    honest = honest_commitment(workload.pre_state, workload.transactions)
    clean = game.play(honest)
    print(f"honest batch       : fraud found = {clean.fraud_found}")

    corrupt = CorruptExecutor(fault_step=args.fault_step)
    forged = corrupt.commitment(workload.pre_state, workload.transactions)
    caught = game.play(forged)
    print(f"corrupted at step {args.fault_step}: fraud found = "
          f"{caught.fraud_found}, localised to step "
          f"{caught.divergent_step} in {caught.rounds_played} rounds")
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    import pathlib

    from .config import TelemetryConfig
    from .experiments import run_all

    store = _store(args)
    telemetry = TelemetryConfig(enabled=True) if args.telemetry else None
    records = run_all(
        pathlib.Path(args.out), preset=_preset(args), only=args.only,
        telemetry=telemetry, jobs=args.jobs, store=store,
        workers=args.workers, schedule=args.schedule,
    )
    failures = 0
    for record in records:
        status = "ok" if record.ok else f"FAILED ({record.error})"
        note = ""
        if record.cache is not None:
            if record.cache["experiment_hit"]:
                note = "  [cached]"
            elif record.cache["hits"] or record.cache["misses"]:
                note = (
                    f"  [tasks cached {record.cache['hits']}/"
                    f"{record.cache['hits'] + record.cache['misses']}]"
                )
        print(f"{record.experiment_id:<10} "
              f"{record.elapsed_seconds:7.1f}s  {status}{note}")
        failures += 0 if record.ok else 1
    from .experiments import write_report

    report_path = write_report(args.out)
    print(f"artifacts in {args.out}/, report at {report_path}")
    if store is not None:
        stats = store.stats
        print(f"cache: {stats.hits} hits / {stats.misses} misses "
              f"(hit ratio {stats.hit_ratio:.0%}), "
              f"{store.size_bytes()} bytes in {args.cache}")
    return 1 if failures else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import dataclasses

    from .faults import DEFAULT_MATRIX, ChaosScenario, run_matrix

    if args.matrix:
        scenarios = [
            dataclasses.replace(scenario, seed=scenario.seed + args.seed)
            for scenario in DEFAULT_MATRIX
        ]
    else:
        scenarios = [
            ChaosScenario(
                name="cli",
                seed=args.seed,
                rounds=args.rounds,
                crashes=args.crashes,
                partitions=args.partitions,
                commit_failures=args.commit_failures,
                drop_bursts=args.drop_bursts,
                stalls=args.stalls,
                corrupt_every=args.corrupt_every,
                flaky_every=args.flaky_every,
            )
        ]
    with _runner(args) as runner:
        reports = run_matrix(scenarios, runner=runner, store=_store(args))
    failures = 0
    for report in reports:
        print(report.render())
        print()
        if not report.ok:
            failures += 1
    print(f"{len(scenarios)} scenario(s), {failures} with invariant violations")
    return 1 if failures else 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .streaming import ScannerConfig, StreamConfig, run_stream

    cache_dir = getattr(args, "cache", None)
    if getattr(args, "no_cache", False):
        cache_dir = None
    if cache_dir is not None and getattr(args, "cache_clear", False):
        from .store import ResultStore

        ResultStore(cache_dir).clear()
    config = StreamConfig(
        lanes=args.lanes,
        duration_batches=args.duration_batches,
        batch_size=args.batch_size,
        submit_per_batch=args.submit_per_batch,
        shards=args.shards,
        seed=args.seed,
        scanner=ScannerConfig(max_swaps=args.max_swaps),
        cache_dir=cache_dir,
    )
    with _runner(args) as runner:
        report = run_stream(config, runner=runner)
    if args.json:
        print(report.deterministic_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_matrix(args: argparse.Namespace) -> int:
    import pathlib

    from .matrix import matrix_config_for, run_matrix

    store = _store(args)
    config = matrix_config_for(
        _preset(args).name,
        seed=args.seed,
        strategies=tuple(args.strategies) if args.strategies else None,
        defenses=tuple(args.defenses) if args.defenses else None,
        fault_plans=(
            tuple(args.fault_plans) if args.fault_plans is not None else None
        ),
    )
    with _runner(args) as runner:
        report = run_matrix(config, runner=runner, store=store)
    if args.json:
        print(report.deterministic_json())
    else:
        print(report.render())
    if args.out:
        pathlib.Path(args.out).write_text(report.deterministic_json() + "\n")
    if store is not None:
        stats = store.stats
        # stderr so a --json stdout stays byte-comparable across runs.
        print(
            f"cache: {stats.hits} hits / {stats.misses} misses "
            f"(hit ratio {stats.hit_ratio:.0%})",
            file=sys.stderr,
        )
    return 0 if report.ok else 1


def _cmd_worker_serve(args: argparse.Namespace) -> int:
    from .parallel.remote import WorkerServer

    server = WorkerServer(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        max_chunks_per_connection=args.max_chunks,
        once=args.once,
        token=args.token,
    )
    host, port = server.start()
    # Machine-readable bind line first: scripts (and the CI soak) parse
    # the port out of it when serving on --port 0.
    print(f"serving on {host}:{port} jobs={server.jobs}", flush=True)
    try:
        server.wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print(
        f"served {server.chunks_served} chunk(s) over "
        f"{server.connections_served} connection(s)"
    )
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from .telemetry import summarize_trace, tail_trace

    if args.tail is not None:
        print(tail_trace(args.path, count=args.tail))
    else:
        print(summarize_trace(args.path))
    return 0


def _perf_trend(args: argparse.Namespace):
    import os

    from .perf import PERF_STORE_ENV, open_trend

    root = getattr(args, "store", None) or os.environ.get(PERF_STORE_ENV)
    if not root:
        root = ".perf"
    return open_trend(root)


def _perf_latest_records(trend, bench_ids=None):
    """The newest record per bench (the 'candidate' set for checks)."""
    ids = list(bench_ids) if bench_ids else trend.bench_ids()
    records = []
    for bench_id in ids:
        latest = trend.latest(bench_id)
        if latest is not None:
            records.append(latest)
    return records


def _cmd_perf_report(args: argparse.Namespace) -> int:
    import pathlib

    from .perf import render_report

    trend = _perf_trend(args)
    text = render_report(trend, bench_ids=args.bench or None)
    print(text)
    if args.out:
        pathlib.Path(args.out).write_text(text + "\n")
        print(f"report written to {args.out}")
    return 0


def _cmd_perf_compare(args: argparse.Namespace) -> int:
    from .perf import render_compare

    trend = _perf_trend(args)
    print(
        render_compare(
            trend, args.rev_a, args.rev_b, bench_ids=args.bench or None
        )
    )
    return 0


def _cmd_perf_check(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .perf import (
        RegressionPolicy,
        check_against_baseline,
        detect_regressions,
    )

    trend = _perf_trend(args)
    policy = RegressionPolicy(
        rel_threshold=args.rel_threshold,
        mad_k=args.mad_k,
        min_history=args.min_history,
        baseline_window=args.window,
    )
    candidates = _perf_latest_records(trend, args.bench or None)
    if not candidates:
        print("perf check: no bench records in the trend store")
        return 0 if not args.strict else 1
    if args.against == "trend":
        history = {c.bench_id: trend.history(c.bench_id) for c in candidates}
        report = detect_regressions(candidates, history, policy)
    else:
        baseline_path = pathlib.Path(args.against)
        baseline = json.loads(baseline_path.read_text())
        report = check_against_baseline(candidates, baseline, policy)
    print(report.render())
    if report.regressions:
        return 1
    if args.strict and report.unarmed:
        # --strict: unarmed gates are failures too (opt-in; the default
        # reports them loudly but does not fail machines that cannot arm).
        return 1
    return 0


def _cmd_perf_baseline(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .perf import make_baseline

    trend = _perf_trend(args)
    records = _perf_latest_records(trend, args.bench or None)
    if not records:
        print("perf baseline: no bench records in the trend store")
        return 1
    payload = make_baseline(records)
    pathlib.Path(args.out).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"baseline for {len(records)} bench(es) written to {args.out}"
    )
    return 0


def _cmd_perf_export_trace(args: argparse.Namespace) -> int:
    from .perf import export_chrome_trace

    out, counts = export_chrome_trace(args.trace, args.out)
    print(
        f"exported {counts['events']} trace events from "
        f"{counts['records']} records to {out}"
        + (
            f" ({counts['skipped']} unparseable records skipped)"
            if counts["skipped"]
            else ""
        )
    )
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_perf_ingest(args: argparse.Namespace) -> int:
    from .perf import read_record

    trend = _perf_trend(args)
    count = 0
    for path in args.records:
        try:
            record = read_record(path)
        except (OSError, ValueError, KeyError) as error:
            print(f"skipping {path}: {error}")
            continue
        trend.append(record)
        count += 1
        print(f"ingested {record.bench_id} ({path})")
    print(f"{count} record(s) appended to the trend store")
    return 0 if count or not args.records else 1


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="parole",
        description="PAROLE (DSN 2024) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    cases = subparsers.add_parser(
        "case-studies", help="replay the Figure 5 case studies"
    )
    cases.add_argument(
        "--certify", action="store_true",
        help="also exhaustively certify the optimal order",
    )
    cases.set_defaults(handler=_cmd_case_studies)

    attack = subparsers.add_parser("attack", help="run one attack round")
    attack.add_argument("--mempool", type=int, default=20)
    attack.add_argument("--ifus", type=int, default=1)
    attack.add_argument("--seed", type=int, default=0)
    attack.add_argument("--full", action="store_true",
                        help="use the paper's full Table II budget")
    attack.set_defaults(handler=_cmd_attack)

    for name, handler, help_text in (
        ("table3", _cmd_table3, "regenerate Table III"),
        ("fig6", _cmd_fig6, "profit vs number of IFUs"),
        ("fig7", _cmd_fig7, "profit vs adversarial fraction"),
        ("fig8", _cmd_fig8, "DQN learning curves"),
        ("fig9", _cmd_fig9, "solution-size KDEs"),
        ("fig10", _cmd_fig10, "NFT snapshot study"),
        ("fig11", _cmd_fig11, "solver comparison"),
        ("defense", _cmd_defense, "Section VIII defense evaluation"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--full", action="store_true",
                         help="use the paper's full budgets")
        if name not in ("table3", "fig10"):
            _add_jobs_flag(sub)
        sub.set_defaults(handler=handler)

    campaign = subparsers.add_parser(
        "campaign", help="multi-round attack with a persistent agent"
    )
    campaign.add_argument("--rounds", type=int, default=5)
    campaign.add_argument("--mempool", type=int, default=12)
    campaign.add_argument("--ifus", type=int, default=1)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--full", action="store_true")
    _add_cache_flags(campaign)
    campaign.set_defaults(handler=_cmd_campaign)

    bisect = subparsers.add_parser(
        "bisect", help="interactive fraud-proof bisection demo"
    )
    bisect.add_argument("--fault-step", type=int, default=3)
    bisect.set_defaults(handler=_cmd_bisect)

    run_all = subparsers.add_parser(
        "run-all", help="run every experiment, archiving text+JSON artifacts"
    )
    run_all.add_argument("--out", default="experiment-artifacts")
    run_all.add_argument("--only", nargs="*", default=None,
                         help="experiment ids to run (default: all)")
    run_all.add_argument("--full", action="store_true")
    run_all.add_argument(
        "--effort", choices=("quick", "full"), default=None,
        help="effort preset (equivalent to --full when 'full')",
    )
    run_all.add_argument(
        "--telemetry", action="store_true",
        help="record metrics, per-experiment manifests and a JSONL trace",
    )
    _add_jobs_flag(run_all)
    _add_workers_flag(run_all)
    _add_cache_flags(run_all)
    run_all.set_defaults(handler=_cmd_run_all)

    chaos = subparsers.add_parser(
        "chaos",
        help="seeded fault-injection run with per-round invariant checks",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--rounds", type=int, default=10)
    chaos.add_argument(
        "--matrix", action="store_true",
        help="run the full seeded scenario matrix instead of one scenario",
    )
    chaos.add_argument("--crashes", type=int, default=2,
                       help="aggregator/verifier crash-restart pairs")
    chaos.add_argument("--partitions", type=int, default=1)
    chaos.add_argument("--commit-failures", type=int, default=1)
    chaos.add_argument("--drop-bursts", type=int, default=1)
    chaos.add_argument("--stalls", type=int, default=0)
    chaos.add_argument("--corrupt-every", type=int, default=0, metavar="K",
                       help="aggregator 0 forges every K-th post-state root")
    chaos.add_argument("--flaky-every", type=int, default=0, metavar="K",
                       help="aggregator 1 dies on every K-th execution")
    _add_jobs_flag(chaos)
    _add_workers_flag(chaos)
    _add_cache_flags(chaos)
    chaos.set_defaults(handler=_cmd_chaos)

    stream = subparsers.add_parser(
        "stream",
        help="bounded soak of the always-on streaming attack pipeline "
             "(traffic -> sharded mempool -> scanner -> rollup lanes)",
    )
    stream.add_argument("--lanes", type=int, default=2,
                        help="independent rollup deployments to drive")
    stream.add_argument("--duration-batches", type=int, default=50,
                        help="block intervals to serve per lane")
    stream.add_argument("--batch-size", type=int, default=16,
                        help="transactions collected per interval")
    stream.add_argument("--submit-per-batch", type=int, default=24,
                        help="transactions submitted per interval "
                             "(above --batch-size builds a backlog)")
    stream.add_argument("--shards", type=int, default=4,
                        help="mempool shards (throughput knob; drain "
                             "order is identical for every value)")
    stream.add_argument("--max-swaps", type=int, default=12,
                        help="DQN rollout depth per scanned batch")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--json", action="store_true",
                        help="print the deterministic report as JSON")
    _add_jobs_flag(stream)
    _add_workers_flag(stream)
    _add_cache_flags(stream)
    stream.set_defaults(handler=_cmd_stream)

    matrix = subparsers.add_parser(
        "matrix",
        help="strategies x defenses x fault-plans leaderboard "
             "(profit, detection rate, revert rate per cell)",
    )
    matrix.add_argument(
        "--strategies", nargs="*", default=None, metavar="NAME",
        help="strategy plug-ins to run (default: every registered one; "
             "see 'repro.api.list_strategies()')",
    )
    matrix.add_argument(
        "--defenses", nargs="*", default=None, metavar="NAME",
        help="sequencing defenses to cross (default: every registered one)",
    )
    matrix.add_argument(
        "--fault-plans", nargs="*", default=None, metavar="NAME",
        help="chaos fault plans for the designated fault strategy "
             "(default: commit-failure mempool-stall aggregator-crash; "
             "pass with no values to skip fault cells)",
    )
    matrix.add_argument("--seed", type=int, default=0)
    matrix.add_argument("--full", action="store_true",
                        help="use the full-effort grid (more rounds)")
    matrix.add_argument("--json", action="store_true",
                        help="print the deterministic leaderboard as JSON")
    matrix.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the deterministic JSON to FILE",
    )
    _add_jobs_flag(matrix)
    _add_workers_flag(matrix)
    _add_cache_flags(matrix)
    matrix.set_defaults(handler=_cmd_matrix)

    worker = subparsers.add_parser(
        "worker",
        help="remote execution-fabric worker (serve sweeps for "
             "--workers HOST:PORT runs)",
    )
    worker_sub = worker.add_subparsers(dest="worker_command", required=True)
    worker_serve = worker_sub.add_parser(
        "serve",
        help="listen for fabric clients; refuses mismatched "
             "code/environment at handshake",
    )
    worker_serve.add_argument("--host", default="127.0.0.1")
    worker_serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = pick a free port and print it)",
    )
    worker_serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parallel chunks this host executes (advertised as slots)",
    )
    worker_serve.add_argument(
        "--once", action="store_true",
        help="exit after the first client disconnects",
    )
    worker_serve.add_argument(
        "--max-chunks", type=int, default=None, metavar="N",
        help="drop each connection after N chunks (fault-injection "
             "hook for churn testing)",
    )
    worker_serve.add_argument(
        "--token", default=None, metavar="SECRET",
        help="shared secret clients must present at handshake "
             "(default: $PAROLE_FABRIC_TOKEN; required for any "
             "non-loopback --host)",
    )
    worker_serve.set_defaults(handler=_cmd_worker_serve)

    telemetry = subparsers.add_parser(
        "telemetry", help="summarize or tail a recorded JSONL trace"
    )
    telemetry.add_argument("path", help="path to a trace.jsonl file")
    telemetry.add_argument(
        "--tail", type=int, default=None, metavar="N",
        help="show the last N events instead of the summary",
    )
    telemetry.set_defaults(handler=_cmd_telemetry)

    perf = subparsers.add_parser(
        "perf",
        help="performance observatory: trend reports, regression checks, "
             "timeline export",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    def _add_store_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store", default=None, metavar="DIR",
            help="trend-store directory (default: $REPRO_PERF_STORE "
                 "or .perf)",
        )

    def _add_bench_filter(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--bench", nargs="*", default=None, metavar="ID",
            help="bench ids to include (default: all recorded)",
        )

    perf_report = perf_sub.add_parser(
        "report", help="render the latest record per bench with deltas"
    )
    _add_store_flag(perf_report)
    _add_bench_filter(perf_report)
    perf_report.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the rendered report to FILE",
    )
    perf_report.set_defaults(handler=_cmd_perf_report)

    perf_compare = perf_sub.add_parser(
        "compare", help="per-series delta report between two revisions"
    )
    perf_compare.add_argument("rev_a", help="older git revision (prefix ok)")
    perf_compare.add_argument("rev_b", help="newer git revision (prefix ok)")
    _add_store_flag(perf_compare)
    _add_bench_filter(perf_compare)
    perf_compare.set_defaults(handler=_cmd_perf_compare)

    perf_check = perf_sub.add_parser(
        "check",
        help="regression-check the latest records; exit 1 on confirmed "
             "regressions, report unarmed gates loudly",
    )
    _add_store_flag(perf_check)
    _add_bench_filter(perf_check)
    perf_check.add_argument(
        "--against", default="trend", metavar="trend|FILE",
        help="baseline source: 'trend' (median of prior same-env runs, "
             "the default) or a baseline JSON file from 'perf baseline'",
    )
    perf_check.add_argument(
        "--rel-threshold", type=float, default=0.10, metavar="FRAC",
        help="relative worsening that starts to count (default 0.10)",
    )
    perf_check.add_argument(
        "--mad-k", type=float, default=3.0, metavar="K",
        help="MADs from baseline required to confirm (default 3.0)",
    )
    perf_check.add_argument(
        "--min-history", type=int, default=2, metavar="N",
        help="prior same-env runs required to arm (default 2)",
    )
    perf_check.add_argument(
        "--window", type=int, default=5, metavar="K",
        help="baseline window: median of the last K runs (default 5)",
    )
    perf_check.add_argument(
        "--strict", action="store_true",
        help="also exit 1 when any gate is unarmed",
    )
    perf_check.set_defaults(handler=_cmd_perf_check)

    perf_baseline = perf_sub.add_parser(
        "baseline", help="freeze the latest records into a baseline file"
    )
    _add_store_flag(perf_baseline)
    _add_bench_filter(perf_baseline)
    perf_baseline.add_argument(
        "--out", default="PERF_BASELINE.json", metavar="FILE"
    )
    perf_baseline.set_defaults(handler=_cmd_perf_baseline)

    perf_export = perf_sub.add_parser(
        "export-trace",
        help="convert a JSONL span trace to Chrome-trace/Perfetto JSON",
    )
    perf_export.add_argument("trace", help="path to a trace.jsonl file")
    perf_export.add_argument(
        "--out", default=None, metavar="FILE",
        help="output path (default: <trace>.chrome.json)",
    )
    perf_export.set_defaults(handler=_cmd_perf_export_trace)

    perf_ingest = perf_sub.add_parser(
        "ingest",
        help="append rendered BENCH_*.json views to the trend store",
    )
    perf_ingest.add_argument(
        "records", nargs="+", help="BENCH_*.json files to ingest"
    )
    _add_store_flag(perf_ingest)
    perf_ingest.set_defaults(handler=_cmd_perf_ingest)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
