"""Configuration objects for every subsystem.

The values in :class:`GenTranSeqConfig` default to Table II of the paper
("Modeling parameters of GENTRANSEQ module").  All configs are frozen
dataclasses: construct a new one (``dataclasses.replace``) rather than
mutating, so experiment sweeps cannot leak state between runs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .errors import ConfigError

#: Number of features in the per-transaction encoding (Section V-C-2:
#: "Generally, it is an eight-element tensor").
TX_FEATURE_WIDTH = 8

#: 1 ETH expressed in wei; the L1 substrate accounts in integer wei.
WEI_PER_ETH = 10**18

#: 1 ETH expressed in satoshi-equivalents.  Figure 7 of the paper reports
#: profit in "Satoshis"; we expose the same unit for its reproduction.
SATOSHI_PER_ETH = 10**8


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class GenTranSeqConfig:
    """Hyper-parameters of the GENTRANSEQ DQN (paper Table II).

    Attributes mirror Table II exactly:

    ===========================  =============
    Parameter                    Paper value
    ===========================  =============
    Exploration parameter (eps)  0.95
    Epsilon decay (d)            0.05
    Discount factor (gamma)      0.618
    Episodes                     100
    Steps (each episode)         200
    Learning rate (alpha)        0.7
    Replay memory buffer size    5,000
    Q-network update             every 5 steps
    Target network update        every 30 steps
    ===========================  =============
    """

    epsilon: float = 0.95
    epsilon_min: float = 0.01
    epsilon_decay: float = 0.05
    discount_factor: float = 0.618
    episodes: int = 100
    steps_per_episode: int = 200
    learning_rate: float = 0.7
    replay_buffer_size: int = 5000
    q_network_update_every: int = 5
    target_network_update_every: int = 30
    batch_size: int = 32
    hidden_layers: Tuple[int, ...] = (128, 64)
    #: Weight ``W`` of Eq. 8 applied to penalizable actions; 1 otherwise.
    penalty_weight: float = 10.0
    #: Reward units per ETH of balance delta.  The paper reports episode
    #: rewards in the thousands of "units" (Fig. 8); this scale maps ETH
    #: deltas into that range.
    reward_scale: float = 1000.0
    #: Optimiser learning rate for the numpy MLP.  The paper's alpha=0.7 is a
    #: Q-learning-style step size; the gradient step uses this smaller value.
    gradient_learning_rate: float = 1e-3
    #: Stop training early once the smoothed episode-reward curve has been
    #: flat for this many episodes (None = paper behaviour, no early stop).
    early_stop_patience: Optional[int] = None
    #: LRU capacity of the per-environment permutation evaluation cache
    #: (ε-greedy rollouts and local search revisit orders constantly).
    evaluation_cache_size: int = 4096
    seed: int = 0

    def __post_init__(self) -> None:
        _require(0.0 <= self.epsilon <= 1.0, "epsilon must be in [0, 1]")
        _require(0.0 <= self.epsilon_min <= self.epsilon,
                 "epsilon_min must be in [0, epsilon]")
        _require(self.epsilon_decay > 0.0, "epsilon_decay must be positive")
        _require(0.0 <= self.discount_factor <= 1.0,
                 "discount_factor must be in [0, 1]")
        _require(self.episodes > 0, "episodes must be positive")
        _require(self.steps_per_episode > 0, "steps_per_episode must be positive")
        _require(0.0 < self.learning_rate <= 1.0,
                 "learning_rate must be in (0, 1]")
        _require(self.replay_buffer_size >= self.batch_size,
                 "replay buffer must hold at least one batch")
        _require(self.q_network_update_every > 0,
                 "q_network_update_every must be positive")
        _require(self.target_network_update_every > 0,
                 "target_network_update_every must be positive")
        _require(all(h > 0 for h in self.hidden_layers),
                 "hidden layer widths must be positive")
        _require(self.penalty_weight >= 1.0, "penalty_weight must be >= 1")
        _require(
            self.early_stop_patience is None or self.early_stop_patience >= 2,
            "early_stop_patience must be None or >= 2",
        )
        _require(self.evaluation_cache_size > 0,
                 "evaluation_cache_size must be positive")

    def with_overrides(self, **changes: object) -> "GenTranSeqConfig":
        """Return a copy with ``changes`` applied (validated on build)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class NFTContractConfig:
    """Parameters of a limited-edition ERC-721 contract (paper Section VI-A).

    The defaults reproduce the PAROLE Token (PT) used in the case studies:
    maximum supply ``S^0 = 10`` and initial price ``P^0 = 0.2`` ETH, with the
    scarcity pricing rule of Eq. 10.
    """

    symbol: str = "PT"
    name: str = "ParoleToken"
    max_supply: int = 10
    initial_price_eth: float = 0.2

    def __post_init__(self) -> None:
        _require(self.max_supply > 0, "max_supply must be positive")
        _require(self.initial_price_eth > 0.0, "initial price must be positive")


@dataclass(frozen=True)
class RollupConfig:
    """Parameters of the optimistic rollup substrate (Sections II-A, V-A)."""

    #: Fixed block interval of Bedrock, in abstract time units.
    block_interval: int = 2
    #: Length of the fraud-proof challenge window, in L1 blocks.
    challenge_period_blocks: int = 7
    #: Bond every aggregator posts, in wei.
    aggregator_bond_wei: int = 5 * WEI_PER_ETH
    #: Bond every verifier posts, in wei.
    verifier_bond_wei: int = 2 * WEI_PER_ETH
    #: Fraction of a dishonest party's bond that is slashed.
    slash_fraction: float = 1.0
    #: Maximum number of transactions one aggregator collects per round
    #: (the paper's per-aggregator "Mempool" size).
    aggregator_mempool_size: int = 50
    #: Bounded retry for batch commitment: total attempts per batch.
    commit_max_retries: int = 3
    #: First retry backoff, in simulation time units; doubles per attempt.
    commit_backoff_base: float = 0.25

    def __post_init__(self) -> None:
        _require(self.block_interval > 0, "block_interval must be positive")
        _require(self.challenge_period_blocks > 0,
                 "challenge_period_blocks must be positive")
        _require(self.aggregator_bond_wei > 0, "aggregator bond must be positive")
        _require(self.verifier_bond_wei > 0, "verifier bond must be positive")
        _require(0.0 < self.slash_fraction <= 1.0,
                 "slash_fraction must be in (0, 1]")
        _require(self.aggregator_mempool_size > 0,
                 "aggregator_mempool_size must be positive")
        _require(self.commit_max_retries >= 1,
                 "commit_max_retries must be at least 1")
        _require(self.commit_backoff_base >= 0,
                 "commit_backoff_base must be non-negative")


@dataclass(frozen=True)
class AttackConfig:
    """End-to-end PAROLE attack parameters (Section IV)."""

    #: Identifiers of the illicitly favored users.
    ifu_accounts: Tuple[str, ...] = ("ifu-0",)
    #: Fraction of aggregators that are adversarial (Figures 6-7 sweep this).
    adversarial_fraction: float = 0.1
    #: GENTRANSEQ hyper-parameters.
    gentranseq: GenTranSeqConfig = field(default_factory=GenTranSeqConfig)
    #: Abort the search if the arbitrage pre-check finds no opportunity.
    require_arbitrage_precheck: bool = True

    def __post_init__(self) -> None:
        _require(len(self.ifu_accounts) > 0, "at least one IFU is required")
        _require(0.0 < self.adversarial_fraction <= 1.0,
                 "adversarial_fraction must be in (0, 1]")


@dataclass(frozen=True)
class WorkloadConfig:
    """Synthetic transaction-sequence generation (evaluation Section VII)."""

    mempool_size: int = 50
    num_users: int = 20
    num_ifus: int = 1
    #: Probability mix of (mint, transfer, burn) in generated sequences.
    tx_type_mix: Tuple[float, float, float] = (0.3, 0.55, 0.15)
    #: Minimum number of transactions each IFU is involved in; the paper
    #: requires "at least a pair of minting and transfer transactions".
    min_ifu_involvement: int = 2
    initial_balance_eth: float = 5.0
    #: Maximum supply of the limited-edition NFT; ``None`` scales it with
    #: the mempool size so mint headroom never runs out mid-sequence.
    max_supply: Optional[int] = None
    #: Fraction of the supply pre-minted to random users before the round.
    premint_fraction: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.mempool_size > 0, "mempool_size must be positive")
        _require(self.num_users >= 2, "need at least two users")
        _require(1 <= self.num_ifus <= self.num_users,
                 "num_ifus must be in [1, num_users]")
        _require(abs(sum(self.tx_type_mix) - 1.0) < 1e-9,
                 "tx_type_mix must sum to 1")
        _require(all(p >= 0 for p in self.tx_type_mix),
                 "tx_type_mix entries must be non-negative")
        _require(self.min_ifu_involvement >= 0,
                 "min_ifu_involvement must be non-negative")
        _require(self.initial_balance_eth > 0, "initial balance must be positive")
        _require(0.0 <= self.premint_fraction <= 1.0,
                 "premint_fraction must be in [0, 1]")


@dataclass(frozen=True)
class DefenseConfig:
    """Section VIII defense parameters."""

    #: Profit threshold (ETH) above which arbitrage is considered material.
    profit_threshold_eth: float = 0.05
    #: Scale the threshold by the mean priority fee of the batch.
    fee_scaled_threshold: bool = True
    #: Upper bound on GENTRANSEQ probe episodes used by the detector.
    probe_episodes: int = 20

    def __post_init__(self) -> None:
        _require(self.profit_threshold_eth >= 0.0,
                 "profit_threshold_eth must be non-negative")
        _require(self.probe_episodes > 0, "probe_episodes must be positive")


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability toggles (see :mod:`repro.telemetry`).

    Disabled by default: the active metrics backend stays the no-op
    ``NullMetrics`` and the tracer emits nothing, so instrumented hot
    paths cost almost nothing.  Apply a config with
    :func:`repro.telemetry.configure`.
    """

    #: Master switch: install a live metrics registry and tracer.
    enabled: bool = False
    #: JSONL span-trace destination; ``None`` keeps spans in memory.
    trace_path: Optional[str] = None
    #: Capacity of the in-memory ring buffer used when no file is given.
    ring_buffer_size: int = 4096
    #: Mirror trace events to stderr (live debugging).
    trace_to_stderr: bool = False

    def __post_init__(self) -> None:
        _require(self.ring_buffer_size > 0,
                 "ring_buffer_size must be positive")


@dataclass(frozen=True)
class SnapshotStudyConfig:
    """Synthetic NFT snapshot study (Figure 10)."""

    collections_per_tier: int = 12
    seed: int = 0
    #: Ownership-count boundaries of the paper's FT tiers.
    lft_max_owners: int = 100
    mft_max_owners: int = 3000

    def __post_init__(self) -> None:
        _require(self.collections_per_tier > 0,
                 "collections_per_tier must be positive")
        _require(0 < self.lft_max_owners < self.mft_max_owners,
                 "tier boundaries must be increasing")


def eth_to_wei(amount_eth: float) -> int:
    """Convert an ETH amount to integer wei (round-half-even)."""
    return int(round(amount_eth * WEI_PER_ETH))


def wei_to_eth(amount_wei: int) -> float:
    """Convert integer wei to float ETH."""
    return amount_wei / WEI_PER_ETH


def eth_to_satoshi(amount_eth: float) -> float:
    """Convert ETH to the satoshi-equivalents used by Figure 7."""
    return amount_eth * SATOSHI_PER_ETH
