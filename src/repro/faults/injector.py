"""Applies a :class:`~repro.faults.plan.FaultPlan` to live components.

The injector is deliberately dumb: it schedules one callback per fault
event on the :class:`~repro.sim.events.EventQueue` and, when the event
fires, pokes the targeted component through :class:`ChaosTargets`.  All
bookkeeping — what was injected when, and how long each degraded period
lasted — is recorded for the chaos report and published through the
telemetry registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import FaultError
from ..sim.events import EventQueue
from ..telemetry import get_metrics
from .plan import FaultEvent, FaultKind, FaultPlan

#: Histogram bounds (sim-time units) for recovery-latency observations.
_RECOVERY_BOUNDS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


@dataclass(frozen=True)
class RecoveryRecord:
    """One closed degraded period: what recovered and how long it took."""

    kind: str
    target: str
    started_at: float
    recovered_at: float

    @property
    def latency(self) -> float:
        """Length of the degraded period in sim-time units."""
        return self.recovered_at - self.started_at


@dataclass
class ChaosTargets:
    """Handles to everything the injector may poke.

    Any handle may be ``None``/empty; applying a fault against a missing
    handle raises :class:`~repro.errors.FaultError` (a plan that names a
    component the deployment does not have is a bug).
    """

    network: Optional[Any] = None  # SimNetwork
    mempool: Optional[Any] = None  # BedrockMempool
    #: Address -> object with ``crash()`` / ``restart()``.
    aggregators: Dict[str, Any] = field(default_factory=dict)
    verifiers: Dict[str, Any] = field(default_factory=dict)
    #: ``(count, aggregator_or_None) -> None`` — RollupNode's hook.
    inject_commit_failures: Optional[Callable[[int, Optional[str]], None]] = None


class FaultInjector:
    """Schedules a fault plan onto an event queue and applies it."""

    def __init__(self, queue: EventQueue, targets: ChaosTargets) -> None:
        self.queue = queue
        self.targets = targets
        #: Every applied event, as ``(time, description)``.
        self.applied: List[Tuple[float, str]] = []
        self.recoveries: List[RecoveryRecord] = []
        self._down_since: Dict[Tuple[str, str], float] = {}
        self._pre_burst_drop_rate: Optional[float] = None

    # ------------------------------------------------------------------ #

    def install(self, plan: FaultPlan) -> None:
        """Schedule every event of ``plan`` relative to the current time."""
        now = self.queue.now
        for event in plan.events:
            if event.time < now:
                raise FaultError(
                    f"fault at t={event.time} is in the past (now={now})"
                )
            self.queue.schedule(
                event.time - now,
                lambda event=event: self.apply(event),
                label=f"fault:{event.kind.value}",
            )

    def counts_by_kind(self) -> Dict[str, int]:
        """Applied fault counts, keyed by kind value."""
        counts: Dict[str, int] = {}
        for _, description in self.applied:
            kind = description.split(" ")[0]
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    # ------------------------------------------------------------------ #

    def apply(self, event: FaultEvent) -> None:
        """Apply one fault right now (normally called by the queue)."""
        handler = self._HANDLERS[event.kind]
        handler(self, event)
        self.applied.append(
            (self.queue.now, f"{event.kind.value} {event.target or ''}".strip())
        )
        get_metrics().counter("faults.injected", kind=event.kind.value).inc()

    def _mark_down(self, kind: FaultKind, target: str) -> None:
        self._down_since[(kind.value, target)] = self.queue.now

    def _mark_recovered(self, down_kind: FaultKind, target: str) -> None:
        started = self._down_since.pop((down_kind.value, target), None)
        if started is None:
            return
        record = RecoveryRecord(
            kind=down_kind.value,
            target=target,
            started_at=started,
            recovered_at=self.queue.now,
        )
        self.recoveries.append(record)
        get_metrics().histogram(
            "faults.recovery_latency", bounds=_RECOVERY_BOUNDS
        ).observe(record.latency)

    # ------------------------------------------------------------------ #
    # Per-kind handlers
    # ------------------------------------------------------------------ #

    def _crashable(self, registry: Dict[str, Any], target: Optional[str], role: str):
        if target is None or target not in registry:
            raise FaultError(f"unknown {role} {target!r} in fault plan")
        return registry[target]

    def _aggregator_crash(self, event: FaultEvent) -> None:
        self._crashable(self.targets.aggregators, event.target, "aggregator").crash()
        self._mark_down(FaultKind.AGGREGATOR_CRASH, event.target)

    def _aggregator_restart(self, event: FaultEvent) -> None:
        self._crashable(
            self.targets.aggregators, event.target, "aggregator"
        ).restart()
        self._mark_recovered(FaultKind.AGGREGATOR_CRASH, event.target)

    def _verifier_crash(self, event: FaultEvent) -> None:
        self._crashable(self.targets.verifiers, event.target, "verifier").crash()
        self._mark_down(FaultKind.VERIFIER_CRASH, event.target)

    def _verifier_restart(self, event: FaultEvent) -> None:
        self._crashable(self.targets.verifiers, event.target, "verifier").restart()
        self._mark_recovered(FaultKind.VERIFIER_CRASH, event.target)

    def _commit_failure(self, event: FaultEvent) -> None:
        if self.targets.inject_commit_failures is None:
            raise FaultError("no commit-failure hook wired")
        self.targets.inject_commit_failures(int(event.value), event.target)

    def _require_network(self):
        if self.targets.network is None:
            raise FaultError("no network wired for partition/drop faults")
        return self.targets.network

    def _partition(self, event: FaultEvent) -> None:
        self._require_network().partition(event.target, event.peer)
        self._mark_down(FaultKind.PARTITION, f"{event.target}|{event.peer}")

    def _heal(self, event: FaultEvent) -> None:
        self._require_network().heal(event.target, event.peer)
        self._mark_recovered(FaultKind.PARTITION, f"{event.target}|{event.peer}")

    def _drop_burst(self, event: FaultEvent) -> None:
        network = self._require_network()
        if self._pre_burst_drop_rate is None:
            self._pre_burst_drop_rate = network.drop_rate
        network.set_drop_rate(event.value)
        self._mark_down(FaultKind.DROP_BURST, "network")

    def _drop_restore(self, event: FaultEvent) -> None:
        network = self._require_network()
        network.set_drop_rate(
            self._pre_burst_drop_rate
            if self._pre_burst_drop_rate is not None
            else 0.0
        )
        self._pre_burst_drop_rate = None
        self._mark_recovered(FaultKind.DROP_BURST, "network")

    def _require_mempool(self):
        if self.targets.mempool is None:
            raise FaultError("no mempool wired for stall faults")
        return self.targets.mempool

    def _mempool_stall(self, event: FaultEvent) -> None:
        self._require_mempool().stall()
        self._mark_down(FaultKind.MEMPOOL_STALL, "mempool")

    def _mempool_resume(self, event: FaultEvent) -> None:
        self._require_mempool().resume()
        self._mark_recovered(FaultKind.MEMPOOL_STALL, "mempool")

    _HANDLERS: Dict[FaultKind, Callable[["FaultInjector", FaultEvent], None]] = {
        FaultKind.AGGREGATOR_CRASH: _aggregator_crash,
        FaultKind.AGGREGATOR_RESTART: _aggregator_restart,
        FaultKind.VERIFIER_CRASH: _verifier_crash,
        FaultKind.VERIFIER_RESTART: _verifier_restart,
        FaultKind.COMMIT_FAILURE: _commit_failure,
        FaultKind.PARTITION: _partition,
        FaultKind.HEAL: _heal,
        FaultKind.DROP_BURST: _drop_burst,
        FaultKind.DROP_RESTORE: _drop_restore,
        FaultKind.MEMPOOL_STALL: _mempool_stall,
        FaultKind.MEMPOOL_RESUME: _mempool_resume,
    }
