"""Safety invariants checked after every chaos round.

The checker is wired to one :class:`~repro.rollup.RollupNode` and fed
every round report.  It maintains a shadow ledger of what *should* be
true given the surviving (non-reverted) batches, and verifies after each
round that:

1. **ETH conservation (L2)** — the sum of L2 balances equals the initial
   sum minus the mint debits of surviving batches (transfers and fees
   only move value between accounts; Eq. 2 mints burn it into the curve).
2. **NFT conservation** — the live token count equals the initial count
   plus surviving mints minus surviving burns, never exceeds the max
   supply, and no user ends a round with negative net inventory.
3. **No transaction lost or duplicated** — every transaction accepted by
   the mempool is, at all times, either still pending or included in
   exactly one surviving batch.  (Messages dropped by the network before
   the mempool accepted them are observable in ``network.dropped`` — the
   invariant covers silent pipeline loss, not modelled packet loss.)
4. **Monotone batch ids** — on-chain commitments are numbered 0..n-1 in
   order with non-decreasing commitment heights.
5. **Pending-window accounting** — after the round's finalize pass every
   still-``PENDING`` batch is inside its challenge window, and the
   pending/finalized/reverted statuses partition the batch list.
6. **L1 wei conservation** — total L1 wei across all accounts equals the
   initial total minus bond slashes (the only burn in the system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..rollup.node import RollupNode, RoundReport
from ..rollup.transaction import TxKind

_TOLERANCE = 1e-6


@dataclass(frozen=True)
class InvariantReport:
    """Outcome of one post-round invariant sweep."""

    round_index: int
    ok: bool
    violations: Tuple[str, ...]
    l2_eth_total: float
    nft_total: int
    pending_txs: int
    included_txs: int


@dataclass(frozen=True)
class _BatchLedger:
    """Per-batch deltas needed to maintain the shadow ledger."""

    tx_hashes: Tuple[str, ...]
    mint_debit: float
    nft_delta: int


class InvariantChecker:
    """Shadow ledger + invariant sweep for one rollup node.

    Construct it *after* deployment setup (funding, bonds) and before
    any transactions flow; the constructor snapshots the conserved
    totals.
    """

    def __init__(self, node: RollupNode) -> None:
        self.node = node
        self._initial_l2_eth = sum(node.l2_state.balances.values())
        self._initial_nft_total = node.l2_state.inventory.total
        self._initial_l1_wei = sum(
            account.balance_wei for account in node.chain.accounts
        )
        self._initial_bonds: Dict[str, int] = {}
        for aggregator in node.aggregators:
            self._initial_bonds[aggregator.address] = (
                node.contract.aggregator_bond(aggregator.address)
            )
        for verifier in node.verifiers:
            self._initial_bonds[verifier.address] = node.contract.verifier_bond(
                verifier.address
            )
        #: Transactions the mempool has accepted (hash set).
        self._accepted: Set[str] = set()
        #: batch_id -> ledger entry, for every batch ever committed.
        self._batches: Dict[int, _BatchLedger] = {}
        self._next_batch_id = 0

    # ------------------------------------------------------------------ #
    # Feeding the shadow ledger
    # ------------------------------------------------------------------ #

    def note_accepted(self, tx_hash: str) -> None:
        """Record that the mempool accepted a transaction."""
        self._accepted.add(tx_hash)

    @property
    def accepted_count(self) -> int:
        """Transactions the mempool has accepted so far."""
        return len(self._accepted)

    def included_surviving_count(self) -> int:
        """Transactions sitting in exactly the surviving batches."""
        return sum(
            len(self._batches[batch_id].tx_hashes)
            for batch_id in self._surviving_ids()
            if batch_id in self._batches
        )

    def on_report(self, report: RoundReport) -> Tuple[int, ...]:
        """Ingest one round report; returns the batch ids it committed.

        Batch ids are assigned by the contract in commitment order, which
        is exactly the order results are appended across rounds.
        """
        committed: List[int] = []
        for result in report.results:
            batch_id = self._next_batch_id
            self._next_batch_id += 1
            mint_debit = 0.0
            nft_delta = 0
            for step in result.trace.steps:
                if not step.executed:
                    continue
                if step.tx.kind is TxKind.MINT:
                    mint_debit += step.result.price_before
                    nft_delta += 1
                elif step.tx.kind is TxKind.BURN:
                    nft_delta -= 1
            self._batches[batch_id] = _BatchLedger(
                tx_hashes=tuple(tx.tx_hash for tx in result.batch.transactions),
                mint_debit=mint_debit,
                nft_delta=nft_delta,
            )
            committed.append(batch_id)
        return tuple(committed)

    # ------------------------------------------------------------------ #
    # The sweep
    # ------------------------------------------------------------------ #

    def _surviving_ids(self) -> List[int]:
        return [
            commitment.batch_id
            for commitment in self.node.contract.batches
            if commitment.status.value != "reverted"
        ]

    def check(self, round_index: int) -> InvariantReport:
        """Run every invariant; returns a report (never raises)."""
        violations: List[str] = []
        node = self.node
        surviving = self._surviving_ids()
        for batch_id in surviving:
            if batch_id not in self._batches:
                violations.append(
                    f"batch {batch_id} committed on-chain but never reported"
                )
        surviving = [b for b in surviving if b in self._batches]

        # 1. ETH conservation on L2.
        expected_eth = self._initial_l2_eth - sum(
            self._batches[b].mint_debit for b in surviving
        )
        actual_eth = sum(node.l2_state.balances.values())
        if abs(actual_eth - expected_eth) > _TOLERANCE:
            violations.append(
                f"L2 ETH not conserved: have {actual_eth:.9f}, "
                f"expected {expected_eth:.9f}"
            )

        # 2. NFT conservation.
        expected_nfts = self._initial_nft_total + sum(
            self._batches[b].nft_delta for b in surviving
        )
        actual_nfts = node.l2_state.inventory.total
        if actual_nfts != expected_nfts:
            violations.append(
                f"NFTs not conserved: have {actual_nfts}, "
                f"expected {expected_nfts}"
            )
        if actual_nfts > node.l2_state.nft_config.max_supply:
            violations.append(
                f"minted total {actual_nfts} exceeds max supply"
            )
        if not node.l2_state.inventory_is_consistent():
            violations.append("negative net inventory at round end")

        # 3. No transaction lost or duplicated.
        included: Dict[str, int] = {}
        for batch_id in surviving:
            for tx_hash in self._batches[batch_id].tx_hashes:
                included[tx_hash] = included.get(tx_hash, 0) + 1
        duplicated = [h for h, n in included.items() if n > 1]
        if duplicated:
            violations.append(
                f"{len(duplicated)} tx(s) included in more than one "
                f"surviving batch (e.g. {duplicated[0][:12]}...)"
            )
        pending = {tx.tx_hash for tx in self.node.mempool.pending()}
        accounted = pending | set(included)
        lost = self._accepted - accounted
        if lost:
            violations.append(
                f"{len(lost)} accepted tx(s) neither pending nor included "
                f"(e.g. {sorted(lost)[0][:12]}...)"
            )
        conjured = set(included) - self._accepted
        if conjured:
            violations.append(
                f"{len(conjured)} included tx(s) were never accepted "
                f"by the mempool"
            )
        both = pending & set(included)
        if both:
            violations.append(
                f"{len(both)} tx(s) simultaneously pending and included"
            )

        # 4. Monotone batch ids.
        commitments = node.contract.batches
        ids = [c.batch_id for c in commitments]
        if ids != list(range(len(ids))):
            violations.append(f"batch ids not monotone: {ids}")
        heights = [c.committed_at_height for c in commitments]
        if any(b < a for a, b in zip(heights, heights[1:])):
            violations.append("batch commitment heights decreased")

        # 5. Pending-window accounting.
        status_counts = {"pending": 0, "finalized": 0, "reverted": 0}
        for commitment in commitments:
            status = commitment.status.value
            if status not in status_counts:
                violations.append(
                    f"batch {commitment.batch_id} has unknown status {status}"
                )
                continue
            status_counts[status] += 1
            if status == "pending" and not node.contract.in_challenge_window(
                commitment.batch_id
            ):
                violations.append(
                    f"batch {commitment.batch_id} pending outside its "
                    f"challenge window"
                )
        if sum(status_counts.values()) != len(commitments):
            violations.append("batch statuses do not partition the batch list")

        # 6. L1 wei conservation (slashes are the only burn).
        slashed = 0
        for aggregator in node.aggregators:
            slashed += self._initial_bonds[
                aggregator.address
            ] - node.contract.aggregator_bond(aggregator.address)
        for verifier in node.verifiers:
            slashed += self._initial_bonds[
                verifier.address
            ] - node.contract.verifier_bond(verifier.address)
        actual_wei = sum(account.balance_wei for account in node.chain.accounts)
        if actual_wei + slashed != self._initial_l1_wei:
            violations.append(
                f"L1 wei not conserved: have {actual_wei} + slashed {slashed} "
                f"!= initial {self._initial_l1_wei}"
            )

        return InvariantReport(
            round_index=round_index,
            ok=not violations,
            violations=tuple(violations),
            l2_eth_total=actual_eth,
            nft_total=actual_nfts,
            pending_txs=len(pending),
            included_txs=len(included),
        )
