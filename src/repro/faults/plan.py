"""Seeded fault schedules on the simulation timeline.

A :class:`FaultPlan` is an ordered, immutable list of
:class:`FaultEvent` entries.  Plans are either hand-written (tests pin
exact timings) or drawn from :meth:`FaultPlan.random`, which generates a
paired, always-recoverable schedule — every crash gets a restart, every
partition a heal, every stall a resume — so a scenario probes degraded
operation rather than permanent death.  The same seed always yields the
same plan.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import FaultError


class FaultKind(enum.Enum):
    """Every fault the injector knows how to apply."""

    AGGREGATOR_CRASH = "aggregator-crash"
    AGGREGATOR_RESTART = "aggregator-restart"
    VERIFIER_CRASH = "verifier-crash"
    VERIFIER_RESTART = "verifier-restart"
    COMMIT_FAILURE = "commit-failure"
    PARTITION = "partition"
    HEAL = "heal"
    DROP_BURST = "drop-burst"
    DROP_RESTORE = "drop-restore"
    MEMPOOL_STALL = "mempool-stall"
    MEMPOOL_RESUME = "mempool-resume"


#: Fault kinds that open a degraded period, mapped to the kind closing it.
RECOVERY_OF: Dict[FaultKind, FaultKind] = {
    FaultKind.AGGREGATOR_CRASH: FaultKind.AGGREGATOR_RESTART,
    FaultKind.VERIFIER_CRASH: FaultKind.VERIFIER_RESTART,
    FaultKind.PARTITION: FaultKind.HEAL,
    FaultKind.DROP_BURST: FaultKind.DROP_RESTORE,
    FaultKind.MEMPOOL_STALL: FaultKind.MEMPOOL_RESUME,
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` names the affected component (an aggregator/verifier
    address, or one endpoint of a partitioned link); ``peer`` is the
    other endpoint for partition/heal; ``value`` carries the burst drop
    rate or the injected commit-failure count.
    """

    time: float
    kind: FaultKind
    target: Optional[str] = None
    peer: Optional[str] = None
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FaultError(f"fault time must be >= 0, got {self.time}")
        if self.kind in (FaultKind.PARTITION, FaultKind.HEAL):
            if self.target is None or self.peer is None:
                raise FaultError(f"{self.kind.value} needs target and peer")
        if self.kind is FaultKind.DROP_BURST and not 0.0 <= self.value < 1.0:
            raise FaultError("drop-burst rate must be in [0, 1)")
        if self.kind is FaultKind.COMMIT_FAILURE and self.value < 1:
            raise FaultError("commit-failure count must be >= 1")

    def describe(self) -> str:
        """Compact human-readable form used in reports."""
        parts = [f"t={self.time:g}", self.kind.value]
        if self.target is not None:
            parts.append(self.target)
        if self.peer is not None:
            parts.append(f"<->{self.peer}")
        if self.value:
            parts.append(f"value={self.value:g}")
        return " ".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted schedule of faults."""

    events: Tuple[FaultEvent, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: e.time)
        )  # stable: same-time events keep authoring order
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def counts_by_kind(self) -> Dict[str, int]:
        """How many events of each kind the plan schedules."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts

    def validate(self) -> None:
        """Check every degradation is paired with a later recovery.

        Raises :class:`~repro.errors.FaultError` on an unrecoverable
        plan; scenarios that *want* permanent faults can skip this.
        """
        for index, event in enumerate(self.events):
            recovery = RECOVERY_OF.get(event.kind)
            if recovery is None:
                continue
            healed = any(
                later.kind is recovery
                and later.target == event.target
                and later.peer == event.peer
                for later in self.events[index + 1:]
            )
            if not healed:
                raise FaultError(
                    f"fault {event.describe()!r} has no matching "
                    f"{recovery.value} event"
                )

    @classmethod
    def random(
        cls,
        seed: int,
        horizon: float,
        aggregators: Sequence[str] = (),
        verifiers: Sequence[str] = (),
        links: Sequence[Tuple[str, str]] = (),
        crashes: int = 2,
        partitions: int = 1,
        commit_failures: int = 1,
        drop_bursts: int = 1,
        stalls: int = 0,
        mean_outage: float = 2.0,
        burst_drop_rate: float = 0.4,
    ) -> "FaultPlan":
        """Draw a paired (always-recoverable) plan from a seed.

        Outage lengths are exponential with mean ``mean_outage`` and
        every degraded period closes strictly inside ``horizon``.
        """
        if horizon <= 0:
            raise FaultError("horizon must be positive")
        rng = np.random.default_rng(seed)
        events = []

        def outage_window() -> Tuple[float, float]:
            start = float(rng.uniform(0.0, horizon * 0.7))
            length = float(
                min(rng.exponential(mean_outage) + 0.1, horizon - start - 1e-6)
            )
            return start, start + length

        for _ in range(crashes):
            pool = list(aggregators) + list(verifiers)
            if not pool:
                break
            target = pool[int(rng.integers(len(pool)))]
            is_aggregator = target in aggregators
            start, end = outage_window()
            events.append(
                FaultEvent(
                    time=start,
                    kind=(
                        FaultKind.AGGREGATOR_CRASH
                        if is_aggregator
                        else FaultKind.VERIFIER_CRASH
                    ),
                    target=target,
                )
            )
            events.append(
                FaultEvent(
                    time=end,
                    kind=(
                        FaultKind.AGGREGATOR_RESTART
                        if is_aggregator
                        else FaultKind.VERIFIER_RESTART
                    ),
                    target=target,
                )
            )
        for _ in range(partitions):
            if not links:
                break
            a, b = links[int(rng.integers(len(links)))]
            start, end = outage_window()
            events.append(
                FaultEvent(time=start, kind=FaultKind.PARTITION, target=a, peer=b)
            )
            events.append(
                FaultEvent(time=end, kind=FaultKind.HEAL, target=a, peer=b)
            )
        for _ in range(drop_bursts):
            start, end = outage_window()
            events.append(
                FaultEvent(
                    time=start, kind=FaultKind.DROP_BURST, value=burst_drop_rate
                )
            )
            events.append(FaultEvent(time=end, kind=FaultKind.DROP_RESTORE))
        for _ in range(stalls):
            start, end = outage_window()
            events.append(FaultEvent(time=start, kind=FaultKind.MEMPOOL_STALL))
            events.append(FaultEvent(time=end, kind=FaultKind.MEMPOOL_RESUME))
        for _ in range(commit_failures):
            at = float(rng.uniform(0.0, horizon * 0.8))
            target = (
                aggregators[int(rng.integers(len(aggregators)))]
                if aggregators and rng.random() < 0.5
                else None
            )
            count = int(rng.integers(1, 5))
            events.append(
                FaultEvent(
                    time=at,
                    kind=FaultKind.COMMIT_FAILURE,
                    target=target,
                    value=float(count),
                )
            )
        return cls(events=tuple(events), seed=seed)
