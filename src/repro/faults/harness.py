"""End-to-end seeded chaos scenarios over a full rollup deployment.

:class:`ChaosHarness` assembles a :class:`~repro.rollup.RollupNode`
(L1 contract, mempool, aggregators, verifiers), drives user submissions
through a latency/drop-modelled :class:`~repro.sim.SimNetwork`, executes
rollup rounds on the Bedrock interval, and injects a seeded
:class:`~repro.faults.plan.FaultPlan` along the way.  After every round
the :class:`~repro.faults.invariants.InvariantChecker` sweep runs; the
resulting :class:`ChaosReport` is fully deterministic — two runs with
the same scenario produce byte-identical ``to_json()`` output.

Two misbehaving operator types give the recovery paths real work:

* :class:`CorruptAggregator` periodically commits a forged post-state
  root (caught by verifiers -> slash, revert, requeue);
* :class:`FlakyAggregator` periodically dies mid-execution (collection
  requeued, round degrades gracefully).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import RollupConfig, WorkloadConfig
from ..crypto import hash_value
from ..errors import InvariantViolationError
from ..rollup.aggregator import AggregationResult, Aggregator
from ..rollup.node import RollupNode
from ..rollup.verifier import Verifier
from ..sim.events import EventQueue
from ..sim.network import LatencyModel, SimNetwork
from ..telemetry import get_metrics
from ..workloads.generator import generate_workload
from .injector import ChaosTargets, FaultInjector
from .invariants import InvariantChecker
from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..parallel import TaskRunner


class CorruptAggregator(Aggregator):
    """Commits a forged post-state root every ``every``-th batch."""

    def __init__(self, address: str, every: int = 3) -> None:
        super().__init__(address)
        self.every = max(1, every)
        self._produced = 0

    def process(self, pre_state, collected) -> AggregationResult:
        result = super().process(pre_state, collected)
        self._produced += 1
        if self._produced % self.every == 0:
            forged = dataclasses.replace(
                result.batch,
                post_state_root=hash_value(["forged-root", self._produced]),
            )
            return AggregationResult(
                batch=forged,
                trace=result.trace,
                original_order=result.original_order,
                executed_order=result.executed_order,
            )
        return result


class FlakyAggregator(Aggregator):
    """Raises mid-execution every ``every``-th call (simulated crash)."""

    def __init__(self, address: str, every: int = 4) -> None:
        super().__init__(address)
        self.every = max(1, every)
        self._calls = 0

    def process(self, pre_state, collected) -> AggregationResult:
        self._calls += 1
        if self._calls % self.every == 0:
            raise RuntimeError(f"{self.address} died mid-execution")
        return super().process(pre_state, collected)


@dataclass(frozen=True)
class ChaosScenario:
    """One seeded chaos configuration."""

    name: str
    seed: int = 0
    #: Workload shape.
    tx_count: int = 24
    num_users: int = 10
    #: Round execution.
    rounds: int = 10
    block_interval: float = 2.0
    collect_size: int = 6
    aggregator_count: int = 3
    verifier_count: int = 2
    challenge_period_blocks: int = 2
    #: Misbehaving operators (0 disables).
    corrupt_every: int = 0
    flaky_every: int = 0
    #: Network model.
    base_drop_rate: float = 0.0
    submission_spacing: float = 0.15
    #: Fault-plan knobs (used when ``plan`` is None).
    crashes: int = 2
    partitions: int = 1
    commit_failures: int = 1
    drop_bursts: int = 1
    stalls: int = 0
    plan: Optional[FaultPlan] = None

    def resolve_plan(
        self, aggregators: Sequence[str], verifiers: Sequence[str]
    ) -> FaultPlan:
        """The explicit plan, or a seeded one drawn from the knobs."""
        if self.plan is not None:
            return self.plan
        return FaultPlan.random(
            seed=self.seed + 0x5EED,
            horizon=self.rounds * self.block_interval,
            aggregators=tuple(aggregators),
            verifiers=tuple(verifiers),
            links=(("users", "mempool"),),
            crashes=self.crashes,
            partitions=self.partitions,
            commit_failures=self.commit_failures,
            drop_bursts=self.drop_bursts,
            stalls=self.stalls,
        )


@dataclass(frozen=True)
class RoundRecord:
    """Deterministic summary of one chaos round."""

    index: int
    time: float
    committed_batch_ids: Tuple[int, ...]
    finalized_batch_ids: Tuple[int, ...]
    reverted_batch_ids: Tuple[int, ...]
    challenges: Tuple[Tuple[str, int, str], ...]
    failures: Tuple[Tuple[str, str, int], ...]  # (aggregator, stage, requeued)
    commit_retries: int
    skipped_aggregators: Tuple[str, ...]
    mempool_pending: int
    invariants_ok: bool
    violations: Tuple[str, ...]
    #: The round hit a stalled mempool and left its pending transactions
    #: in place (distinct from an empty pool producing no batches).
    stalled: bool = False


@dataclass
class ChaosReport:
    """Everything one chaos run produced."""

    scenario: str
    seed: int
    rounds: List[RoundRecord] = field(default_factory=list)
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: ``(kind, target, started_at, recovered_at)`` per closed outage.
    recoveries: List[Tuple[str, str, float, float]] = field(default_factory=list)
    accepted_txs: int = 0
    included_txs: int = 0
    pending_txs: int = 0
    dropped_messages: int = 0
    requeued_total: int = 0
    reverted_total: int = 0
    commit_retry_total: int = 0
    challenge_total: int = 0

    @property
    def ok(self) -> bool:
        """Whether every round's invariant sweep passed."""
        return all(record.invariants_ok for record in self.rounds)

    @property
    def violations(self) -> Tuple[str, ...]:
        """Every invariant violation across all rounds."""
        return tuple(
            violation
            for record in self.rounds
            for violation in record.violations
        )

    @property
    def recovery_latencies(self) -> Tuple[float, ...]:
        """Length of each closed degraded period, in sim-time units."""
        return tuple(end - start for _, _, start, end in self.recoveries)

    def to_json(self) -> str:
        """Canonical JSON — byte-identical for identical seeded runs."""
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    def render(self) -> str:
        """Human-readable summary for the CLI."""
        lines = [
            f"chaos scenario {self.scenario!r} (seed {self.seed}): "
            f"{'OK' if self.ok else 'INVARIANT VIOLATIONS'}",
            f"  rounds={len(self.rounds)}  faults="
            + (
                ", ".join(
                    f"{kind}={count}"
                    for kind, count in sorted(self.fault_counts.items())
                )
                or "none"
            ),
            f"  txs: accepted={self.accepted_txs} included={self.included_txs} "
            f"pending={self.pending_txs} dropped_msgs={self.dropped_messages}",
            f"  recovery: requeued={self.requeued_total} "
            f"reverted={self.reverted_total} "
            f"commit_retries={self.commit_retry_total} "
            f"challenges={self.challenge_total}",
        ]
        if self.recovery_latencies:
            lines.append(
                "  outage latencies: "
                + ", ".join(f"{lat:.2f}" for lat in self.recovery_latencies)
            )
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


class ChaosHarness:
    """Drives one seeded chaos scenario end to end."""

    def __init__(self, scenario: ChaosScenario) -> None:
        self.scenario = scenario
        workload = generate_workload(
            WorkloadConfig(
                mempool_size=scenario.tx_count,
                num_users=scenario.num_users,
                num_ifus=1,
                min_ifu_involvement=2,
                seed=scenario.seed,
            )
        )
        self.node = RollupNode(
            l2_state=workload.pre_state.copy(),
            config=RollupConfig(
                aggregator_mempool_size=scenario.collect_size,
                challenge_period_blocks=scenario.challenge_period_blocks,
            ),
        )
        for user in workload.users:
            self.node.fund_and_deposit(user, 1.0)
        for index in range(scenario.aggregator_count):
            address = f"agg-{index}"
            if index == 0 and scenario.corrupt_every:
                aggregator: Aggregator = CorruptAggregator(
                    address, every=scenario.corrupt_every
                )
            elif index == 1 and scenario.flaky_every:
                aggregator = FlakyAggregator(address, every=scenario.flaky_every)
            else:
                aggregator = Aggregator(address)
            self.node.add_aggregator(aggregator)
        for index in range(scenario.verifier_count):
            self.node.add_verifier(Verifier(f"ver-{index}"))

        self.queue = EventQueue()
        self.network = SimNetwork(
            self.queue,
            latency=LatencyModel(base=0.02, jitter=0.01),
            rng=np.random.default_rng(scenario.seed + 1),
            drop_rate=scenario.base_drop_rate,
        )
        self.checker = InvariantChecker(self.node)
        self.network.register("users", lambda message: None)
        self.network.register("mempool", self._on_mempool_message)

        for index, tx in enumerate(workload.transactions):
            self.queue.schedule(
                index * scenario.submission_spacing,
                lambda tx=tx: self.network.send("users", "mempool", "submit-tx", tx),
                label="user-submit",
            )
        self._round_records: List[RoundRecord] = []
        for round_index in range(scenario.rounds):
            self.queue.schedule(
                (round_index + 1) * scenario.block_interval,
                lambda index=round_index: self._run_round(index),
                label=f"chaos-round:{round_index}",
            )

        self.injector = FaultInjector(
            self.queue,
            ChaosTargets(
                network=self.network,
                mempool=self.node.mempool,
                aggregators={a.address: a for a in self.node.aggregators},
                verifiers={v.address: v for v in self.node.verifiers},
                inject_commit_failures=(
                    lambda count, aggregator=None: self.node.inject_commit_failures(
                        count, aggregator
                    )
                ),
            ),
        )
        plan = scenario.resolve_plan(
            aggregators=[a.address for a in self.node.aggregators],
            verifiers=[v.address for v in self.node.verifiers],
        )
        self.injector.install(plan)

    # ------------------------------------------------------------------ #

    def _on_mempool_message(self, message) -> None:
        if message.kind != "submit-tx":
            return
        tx_hash = self.node.submit(message.payload)
        self.checker.note_accepted(tx_hash)

    def _run_round(self, round_index: int) -> None:
        report = self.node.run_round(self.scenario.collect_size)
        report.finalized_batch_ids = self.node.finalize_ready_batches()
        committed = self.checker.on_report(report)
        sweep = self.checker.check(round_index)
        self._round_records.append(
            RoundRecord(
                index=round_index,
                time=self.queue.now,
                committed_batch_ids=committed,
                finalized_batch_ids=tuple(report.finalized_batch_ids),
                reverted_batch_ids=tuple(report.reverted_batch_ids),
                challenges=tuple(report.challenges),
                failures=tuple(
                    (f.aggregator, f.stage, f.requeued) for f in report.failures
                ),
                commit_retries=len(report.commit_retries),
                skipped_aggregators=tuple(report.skipped_aggregators),
                mempool_pending=len(self.node.mempool),
                invariants_ok=sweep.ok,
                violations=sweep.violations,
                stalled=report.stalled,
            )
        )

    def run(self, strict: bool = False) -> ChaosReport:
        """Drive the scenario to quiescence and assemble the report.

        With ``strict`` the first invariant violation raises
        :class:`~repro.errors.InvariantViolationError` after the run.
        """
        self.queue.run()
        records = self._round_records
        report = ChaosReport(
            scenario=self.scenario.name,
            seed=self.scenario.seed,
            rounds=records,
            fault_counts=self.injector.counts_by_kind(),
            recoveries=[
                (r.kind, r.target, r.started_at, r.recovered_at)
                for r in self.injector.recoveries
            ],
            accepted_txs=self.checker.accepted_count,
            included_txs=self.checker.included_surviving_count(),
            pending_txs=len(self.node.mempool),
            dropped_messages=len(self.network.dropped),
            requeued_total=sum(
                requeued for record in records for _, _, requeued in record.failures
            ),
            reverted_total=sum(
                len(record.reverted_batch_ids) for record in records
            ),
            commit_retry_total=sum(record.commit_retries for record in records),
            challenge_total=sum(len(record.challenges) for record in records),
        )
        self._publish(report)
        if strict and not report.ok:
            raise InvariantViolationError(
                f"scenario {self.scenario.name!r}: " + "; ".join(report.violations)
            )
        return report

    def _publish(self, report: ChaosReport) -> None:
        metrics = get_metrics()
        metrics.gauge("chaos.rounds", scenario=report.scenario).set(
            len(report.rounds)
        )
        metrics.gauge("chaos.requeued", scenario=report.scenario).set(
            report.requeued_total
        )
        metrics.gauge("chaos.reverted", scenario=report.scenario).set(
            report.reverted_total
        )
        metrics.counter(
            "chaos.invariant_violations", scenario=report.scenario
        ).inc(len(report.violations))


#: The seeded scenario matrix the CI chaos job runs at QUICK effort.
DEFAULT_MATRIX: Tuple[ChaosScenario, ...] = (
    ChaosScenario(
        name="crash-restart",
        seed=11,
        crashes=3,
        partitions=0,
        commit_failures=0,
        drop_bursts=0,
    ),
    ChaosScenario(
        name="partitions-drops",
        seed=23,
        crashes=0,
        partitions=2,
        commit_failures=0,
        drop_bursts=2,
        base_drop_rate=0.05,
    ),
    ChaosScenario(
        name="commit-failures",
        seed=37,
        crashes=0,
        partitions=0,
        commit_failures=3,
        drop_bursts=0,
        corrupt_every=2,
    ),
    ChaosScenario(
        name="mixed",
        seed=53,
        crashes=2,
        partitions=1,
        commit_failures=2,
        drop_bursts=1,
        stalls=1,
        corrupt_every=3,
        flaky_every=3,
        rounds=12,
    ),
)


def _run_scenario(scenario: ChaosScenario, strict: bool) -> ChaosReport:
    """One chaos scenario as a fabric task (module-level, picklable)."""
    return ChaosHarness(scenario).run(strict=strict)


def run_matrix(
    scenarios: Sequence[ChaosScenario] = DEFAULT_MATRIX,
    strict: bool = False,
    runner: Optional["TaskRunner"] = None,
    store=None,
) -> List[ChaosReport]:
    """Run every scenario; returns the per-scenario reports.

    Scenarios are independent (each seeds its own simulation), so they
    fan out over ``runner`` — serial by default — and reports come back
    in scenario order regardless of backend.

    With a :class:`~repro.store.ResultStore` (passed explicitly or
    already attached to ``runner``), scenario reports are cached in the
    ``chaos:`` namespace — fault-injected runs can share a cache
    directory with clean experiment runs without ever sharing entries.
    """
    from ..parallel import SerialRunner, Task

    runner = runner if runner is not None else SerialRunner()
    store = store if store is not None else getattr(runner, "store", None)
    previous_store = getattr(runner, "store", None)
    if store is not None:
        runner.store = store.namespaced("chaos")
    tasks = [
        Task(
            fn=_run_scenario,
            args=(scenario, strict),
            label=f"chaos[{scenario.name}]",
        )
        for scenario in scenarios
    ]
    try:
        return runner.map(tasks)
    finally:
        runner.store = previous_store
