"""Deterministic fault injection and crash recovery for the rollup pipeline.

Real L2 deployments lose batches, drop messages and crash mid-commit —
exactly where revert-based MEV and private-mempool attacks become
profitable.  This package probes the reproduction's robustness under a
seeded, fully deterministic fault schedule:

* :mod:`~repro.faults.plan` — :class:`FaultPlan`: a seeded schedule of
  fault events (crash/restart, partitions/heals, drop-rate bursts,
  commit failures, mempool stalls) on the simulation timeline;
* :mod:`~repro.faults.injector` — :class:`FaultInjector`: applies a plan
  to live components through :class:`ChaosTargets`, recording injected
  fault counts and recovery latencies;
* :mod:`~repro.faults.invariants` — :class:`InvariantChecker`: the
  conservation / no-loss / monotonicity / pending-window checks that
  must hold after every round, faults or not;
* :mod:`~repro.faults.harness` — :class:`ChaosHarness`: runs seeded
  end-to-end scenarios over a :class:`~repro.rollup.RollupNode`, checks
  invariants each round, and reports through ``repro.telemetry``.

See ``docs/faults.md`` for the fault model and how to read the output.
"""

from .plan import FaultEvent, FaultKind, FaultPlan
from .injector import ChaosTargets, FaultInjector, RecoveryRecord
from .invariants import InvariantChecker, InvariantReport
from .harness import (
    DEFAULT_MATRIX,
    ChaosHarness,
    ChaosReport,
    ChaosScenario,
    RoundRecord,
    run_matrix,
)

__all__ = [
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "ChaosTargets",
    "FaultInjector",
    "RecoveryRecord",
    "InvariantChecker",
    "InvariantReport",
    "ChaosHarness",
    "ChaosReport",
    "ChaosScenario",
    "RoundRecord",
    "DEFAULT_MATRIX",
    "run_matrix",
]
