"""Gas schedule for simulated L1/L2 execution.

Table III of the paper reports per-transaction-type gas usage (as a
percentage of the gas limit) and fees for the ParoleToken on Optimism
Goerli.  This module provides the deterministic gas model those rows are
regenerated from: base intrinsic gas plus a per-type execution cost, with
usage expressed against a transaction gas limit, mirroring how the paper
reports "Gas usage" as a percentage.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ChainError

#: Ethereum's intrinsic cost of any transaction.
INTRINSIC_GAS = 21_000


@dataclass(frozen=True)
class GasUsage:
    """Resolved gas accounting for one executed transaction."""

    gas_used: int
    gas_limit: int
    fee_wei: int

    @property
    def usage_fraction(self) -> float:
        """Fraction of the gas limit actually consumed."""
        return self.gas_used / self.gas_limit

    @property
    def usage_percent(self) -> float:
        """Percentage of the gas limit consumed (Table III's column)."""
        return 100.0 * self.usage_fraction


@dataclass(frozen=True)
class GasSchedule:
    """Per-operation gas costs, calibrated to Table III magnitudes.

    The mint of a fresh ERC-721 initialises cold storage slots and is the
    most expensive operation; transfer and burn touch warm slots and cost
    roughly the same, matching the paper's 90.91% / 69.84% / 69.82%
    usage readings.
    """

    mint_gas: int = 160_000
    transfer_gas: int = 122_918
    burn_gas: int = 122_883
    mint_gas_limit: int = 176_000
    transfer_gas_limit: int = 176_000
    burn_gas_limit: int = 176_000
    #: L2 execution gas price in wei (Optimism Goerli-era magnitudes).
    l2_gas_price_wei: int = 1
    #: L1 data-availability fee per transaction type in gwei; dominates the
    #: total fee on optimistic rollups, as Table III's "TX fees" column shows.
    mint_l1_fee_gwei: int = 253
    transfer_l1_fee_gwei: int = 142_000
    burn_l1_fee_gwei: int = 141_000

    def usage_for(self, tx_type: str) -> GasUsage:
        """Gas usage and fee for a transaction of ``tx_type``.

        ``tx_type`` is one of ``"mint"``, ``"transfer"`` or ``"burn"``.
        """
        if tx_type == "mint":
            gas, limit, fee_gwei = (
                self.mint_gas, self.mint_gas_limit, self.mint_l1_fee_gwei
            )
        elif tx_type == "transfer":
            gas, limit, fee_gwei = (
                self.transfer_gas, self.transfer_gas_limit, self.transfer_l1_fee_gwei
            )
        elif tx_type == "burn":
            gas, limit, fee_gwei = (
                self.burn_gas, self.burn_gas_limit, self.burn_l1_fee_gwei
            )
        else:
            raise ChainError(f"unknown transaction type {tx_type!r}")
        fee_wei = fee_gwei * 10**9 + gas * self.l2_gas_price_wei
        return GasUsage(gas_used=gas, gas_limit=limit, fee_wei=fee_wei)
