"""The Optimistic Rollup Smart Contract (ORSC).

Section V-A formalises the contract users, aggregators and verifiers
interact with:

* ``deposit`` — a user exchanges L1 ETH for an equal amount of L2 tokens
  (``U_k.SubmitTX`` path via the L1 contract);
* ``register_aggregator`` / ``register_verifier`` — participants post bonds;
* ``commit_batch`` — an aggregator submits a rollup batch commitment
  (transactions digest + claimed post-state root) that starts its
  challenge window;
* ``challenge`` — a verifier disputes a commitment; a correct challenge
  slashes the aggregator's bond and reverts the batch, an incorrect one
  slashes the verifier's bond (the two slashing rules of Section V-A);
* ``finalize`` — after the challenge window passes unchallenged the batch
  is confirmed onto L1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import RollupConfig
from ..errors import BatchError, BondError, ChallengeError, ChainError
from .ledger import L1Chain


class BatchStatus(enum.Enum):
    """Lifecycle of a committed rollup batch."""

    PENDING = "pending"
    FINALIZED = "finalized"
    REVERTED = "reverted"


class ChallengeOutcome(enum.Enum):
    """Result of a verifier's fraud-proof challenge."""

    UPHELD = "upheld"          # fraud proven; aggregator slashed
    REJECTED = "rejected"      # proof was valid; verifier slashed


@dataclass
class BatchCommitment:
    """An on-chain record of one committed rollup batch."""

    batch_id: int
    aggregator: str
    tx_root: str
    claimed_state_root: str
    committed_at_height: int
    status: BatchStatus = BatchStatus.PENDING
    challenged_by: Optional[str] = None


@dataclass
class _Participant:
    address: str
    bond_wei: int


class OptimisticRollupContract:
    """The L1-resident rollup contract (deposits, bonds, batches)."""

    def __init__(self, chain: L1Chain, config: Optional[RollupConfig] = None) -> None:
        self.chain = chain
        self.config = config or RollupConfig()
        self.address = "0xORSC"
        chain.accounts.get_or_create(self.address)
        self._l2_balances: Dict[str, int] = {}
        self._exit_queue: List[Dict[str, int]] = []
        self._aggregators: Dict[str, _Participant] = {}
        self._verifiers: Dict[str, _Participant] = {}
        self._batches: List[BatchCommitment] = []

    # ------------------------------------------------------------------ #
    # Deposits / withdrawals (ETH <-> L2 tokens, 1:1)
    # ------------------------------------------------------------------ #

    def deposit(self, user: str, amount_wei: int) -> int:
        """Lock L1 ETH in the contract and mint equal L2 tokens.

        Returns the user's new L2 token balance.
        """
        if amount_wei <= 0:
            raise ChainError("deposit amount must be positive")
        self.chain.accounts.transfer(user, self.address, amount_wei)
        self._l2_balances[user] = self._l2_balances.get(user, 0) + amount_wei
        self.chain.queue_payload({"kind": "deposit", "user": user, "wei": amount_wei})
        return self._l2_balances[user]

    def withdraw(self, user: str, amount_wei: int) -> int:
        """Burn L2 tokens and release the equivalent L1 ETH immediately.

        The fast path used by tests and the simulator's bridge; real
        rollup withdrawals go through :meth:`request_withdrawal` /
        :meth:`claim_withdrawal` and wait out the challenge period.
        """
        held = self._l2_balances.get(user, 0)
        if amount_wei <= 0 or held < amount_wei:
            raise ChainError(
                f"user {user!r} cannot withdraw {amount_wei} (holds {held})"
            )
        self._l2_balances[user] = held - amount_wei
        self.chain.accounts.transfer(self.address, user, amount_wei)
        self.chain.queue_payload({"kind": "withdraw", "user": user, "wei": amount_wei})
        return self._l2_balances[user]

    # ------------------------------------------------------------------ #
    # Delayed withdrawals (the optimistic-rollup exit game)
    # ------------------------------------------------------------------ #

    def request_withdrawal(self, user: str, amount_wei: int) -> int:
        """Lock L2 tokens into the exit queue; claimable after the
        challenge period (the optimistic rollup's withdrawal delay).

        Returns the L1 height at which the withdrawal unlocks.
        """
        held = self._l2_balances.get(user, 0)
        if amount_wei <= 0 or held < amount_wei:
            raise ChainError(
                f"user {user!r} cannot exit {amount_wei} (holds {held})"
            )
        self._l2_balances[user] = held - amount_wei
        unlock_height = self.chain.height + self.config.challenge_period_blocks
        self._exit_queue.append(
            {"user": user, "wei": amount_wei, "unlock": unlock_height}
        )
        self.chain.queue_payload(
            {"kind": "exit-request", "user": user, "wei": amount_wei,
             "unlock": unlock_height}
        )
        return unlock_height

    def pending_withdrawals(self, user: str) -> int:
        """Total wei the user has waiting in the exit queue."""
        return sum(
            entry["wei"] for entry in self._exit_queue
            if entry["user"] == user
        )

    def claim_withdrawals(self, user: str) -> int:
        """Release every matured exit for ``user``; returns the wei paid."""
        matured = [
            entry for entry in self._exit_queue
            if entry["user"] == user and self.chain.height >= entry["unlock"]
        ]
        if not matured:
            raise ChainError(
                f"user {user!r} has no matured withdrawals at height "
                f"{self.chain.height}"
            )
        total = sum(entry["wei"] for entry in matured)
        self._exit_queue = [
            entry for entry in self._exit_queue if entry not in matured
        ]
        self.chain.accounts.transfer(self.address, user, total)
        self.chain.queue_payload(
            {"kind": "exit-claim", "user": user, "wei": total}
        )
        return total

    def l2_balance(self, user: str) -> int:
        """L2 token balance held through the bridge, in wei units."""
        return self._l2_balances.get(user, 0)

    def total_value_locked(self) -> int:
        """Total wei locked across deposits and bonds."""
        return self.chain.accounts.balance(self.address)

    # ------------------------------------------------------------------ #
    # Participants and bonds
    # ------------------------------------------------------------------ #

    def register_aggregator(self, address: str) -> None:
        """Post the aggregator bond and join the operator set."""
        if address in self._aggregators:
            raise BondError(f"aggregator {address!r} already registered")
        bond = self.config.aggregator_bond_wei
        self.chain.accounts.transfer(address, self.address, bond)
        self._aggregators[address] = _Participant(address=address, bond_wei=bond)

    def register_verifier(self, address: str) -> None:
        """Post the verifier bond and join the watcher set."""
        if address in self._verifiers:
            raise BondError(f"verifier {address!r} already registered")
        bond = self.config.verifier_bond_wei
        self.chain.accounts.transfer(address, self.address, bond)
        self._verifiers[address] = _Participant(address=address, bond_wei=bond)

    def aggregator_bond(self, address: str) -> int:
        """Remaining bond of a registered aggregator."""
        return self._require_aggregator(address).bond_wei

    def verifier_bond(self, address: str) -> int:
        """Remaining bond of a registered verifier."""
        return self._require_verifier(address).bond_wei

    def _require_aggregator(self, address: str) -> _Participant:
        try:
            return self._aggregators[address]
        except KeyError:
            raise BondError(f"{address!r} is not a registered aggregator") from None

    def _require_verifier(self, address: str) -> _Participant:
        try:
            return self._verifiers[address]
        except KeyError:
            raise BondError(f"{address!r} is not a registered verifier") from None

    def _slash(self, participant: _Participant) -> int:
        slashed = int(participant.bond_wei * self.config.slash_fraction)
        participant.bond_wei -= slashed
        # Slashed funds are burned from the contract's holdings.
        self.chain.accounts.debit(self.address, slashed)
        return slashed

    # ------------------------------------------------------------------ #
    # Batch lifecycle
    # ------------------------------------------------------------------ #

    def commit_batch(
        self, aggregator: str, tx_root: str, claimed_state_root: str
    ) -> BatchCommitment:
        """Record a batch commitment and open its challenge window."""
        self._require_aggregator(aggregator)
        commitment = BatchCommitment(
            batch_id=len(self._batches),
            aggregator=aggregator,
            tx_root=tx_root,
            claimed_state_root=claimed_state_root,
            committed_at_height=self.chain.height,
        )
        self._batches.append(commitment)
        self.chain.queue_payload(
            {
                "kind": "batch",
                "batch_id": commitment.batch_id,
                "aggregator": aggregator,
                "tx_root": tx_root,
                "state_root": claimed_state_root,
            }
        )
        return commitment

    def batch(self, batch_id: int) -> BatchCommitment:
        """Fetch a committed batch by id."""
        if not 0 <= batch_id < len(self._batches):
            raise BatchError(f"unknown batch id {batch_id}")
        return self._batches[batch_id]

    @property
    def batches(self) -> List[BatchCommitment]:
        """All commitments in submission order."""
        return list(self._batches)

    def in_challenge_window(self, batch_id: int) -> bool:
        """Whether the batch can still be challenged."""
        commitment = self.batch(batch_id)
        deadline = commitment.committed_at_height + self.config.challenge_period_blocks
        return commitment.status is BatchStatus.PENDING and self.chain.height < deadline

    def challenge(
        self,
        verifier: str,
        batch_id: int,
        recomputed_state_root: str,
    ) -> ChallengeOutcome:
        """A verifier disputes a batch by recomputing the state root.

        If the recomputed root differs from the claimed root the fraud is
        proven: the batch reverts and the aggregator is slashed.  If they
        match, the challenge was frivolous and the verifier is slashed.
        """
        participant = self._require_verifier(verifier)
        commitment = self.batch(batch_id)
        if commitment.status is not BatchStatus.PENDING:
            raise ChallengeError(
                f"batch {batch_id} is {commitment.status.value}, not challengeable"
            )
        if not self.in_challenge_window(batch_id):
            raise ChallengeError(f"challenge window for batch {batch_id} has closed")
        commitment.challenged_by = verifier
        if recomputed_state_root != commitment.claimed_state_root:
            commitment.status = BatchStatus.REVERTED
            self._slash(self._require_aggregator(commitment.aggregator))
            return ChallengeOutcome.UPHELD
        self._slash(participant)
        return ChallengeOutcome.REJECTED

    def finalize(self, batch_id: int) -> BatchCommitment:
        """Confirm a batch whose challenge window has passed unchallenged."""
        commitment = self.batch(batch_id)
        if commitment.status is BatchStatus.REVERTED:
            raise BatchError(f"batch {batch_id} was reverted and cannot finalize")
        if commitment.status is BatchStatus.FINALIZED:
            return commitment
        if self.in_challenge_window(batch_id):
            raise BatchError(
                f"batch {batch_id} is still inside its challenge window"
            )
        commitment.status = BatchStatus.FINALIZED
        self.chain.queue_payload({"kind": "finalize", "batch_id": batch_id})
        return commitment
