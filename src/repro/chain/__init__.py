"""Layer-1 chain substrate.

A minimal but complete in-process Ethereum-like main chain: integer-wei
account ledger, block production with Merkle transaction roots, a gas
schedule, and the Optimistic Rollup Smart Contract (ORSC) that the paper's
users, aggregators and verifiers interact with (Section V-A).
"""

from .account import Account, AccountLedger
from .block import Block, BlockHeader
from .gas import GasSchedule, GasUsage
from .ledger import L1Chain
from .orsc import (
    BatchCommitment,
    BatchStatus,
    ChallengeOutcome,
    OptimisticRollupContract,
)

__all__ = [
    "Account",
    "AccountLedger",
    "Block",
    "BlockHeader",
    "GasSchedule",
    "GasUsage",
    "L1Chain",
    "BatchCommitment",
    "BatchStatus",
    "ChallengeOutcome",
    "OptimisticRollupContract",
]
