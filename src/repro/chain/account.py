"""Accounts and the integer-wei balance ledger.

All L1 money movement in the simulator goes through
:class:`AccountLedger`, which enforces non-negative balances and keeps a
running nonce per account, mirroring Ethereum's account model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from ..errors import InsufficientBalanceError, UnknownAccountError


@dataclass
class Account:
    """A single externally-owned account."""

    address: str
    balance_wei: int = 0
    nonce: int = 0

    def snapshot(self) -> Tuple[str, int, int]:
        """Return an immutable (address, balance, nonce) view."""
        return (self.address, self.balance_wei, self.nonce)


class AccountLedger:
    """Mapping of addresses to accounts with safe transfer semantics."""

    def __init__(self) -> None:
        self._accounts: Dict[str, Account] = {}

    def __contains__(self, address: str) -> bool:
        return address in self._accounts

    def __iter__(self) -> Iterator[Account]:
        return iter(self._accounts.values())

    def __len__(self) -> int:
        return len(self._accounts)

    def create(self, address: str, balance_wei: int = 0) -> Account:
        """Create an account; re-creating an address is an error."""
        if address in self._accounts:
            raise UnknownAccountError(f"account {address!r} already exists")
        if balance_wei < 0:
            raise InsufficientBalanceError(address, 0, balance_wei)
        account = Account(address=address, balance_wei=balance_wei)
        self._accounts[address] = account
        return account

    def get_or_create(self, address: str) -> Account:
        """Fetch an account, creating it with zero balance if missing."""
        if address not in self._accounts:
            return self.create(address)
        return self._accounts[address]

    def get(self, address: str) -> Account:
        """Fetch an existing account or raise :class:`UnknownAccountError`."""
        try:
            return self._accounts[address]
        except KeyError:
            raise UnknownAccountError(f"unknown account {address!r}") from None

    def balance(self, address: str) -> int:
        """Balance in wei of an existing account."""
        return self.get(address).balance_wei

    def credit(self, address: str, amount_wei: int) -> None:
        """Add ``amount_wei`` (must be non-negative) to an account."""
        if amount_wei < 0:
            raise InsufficientBalanceError(address, amount_wei, 0)
        self.get_or_create(address).balance_wei += amount_wei

    def debit(self, address: str, amount_wei: int) -> None:
        """Remove ``amount_wei`` from an account; never goes negative."""
        account = self.get(address)
        if amount_wei < 0 or account.balance_wei < amount_wei:
            raise InsufficientBalanceError(
                address, amount_wei, account.balance_wei
            )
        account.balance_wei -= amount_wei

    def transfer(self, sender: str, recipient: str, amount_wei: int) -> None:
        """Atomically move wei between two accounts."""
        self.debit(sender, amount_wei)
        self.credit(recipient, amount_wei)

    def bump_nonce(self, address: str) -> int:
        """Increment and return an account's nonce."""
        account = self.get(address)
        account.nonce += 1
        return account.nonce

    def total_supply(self) -> int:
        """Total wei held across all accounts (conservation checks)."""
        return sum(account.balance_wei for account in self._accounts.values())

    def snapshot(self) -> Dict[str, Tuple[int, int]]:
        """Immutable {address: (balance, nonce)} view of the whole ledger."""
        return {
            address: (account.balance_wei, account.nonce)
            for address, account in self._accounts.items()
        }
