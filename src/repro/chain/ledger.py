"""The L1 chain: block production over an account ledger.

:class:`L1Chain` is the simulator's main chain.  It advances in discrete
timesteps, sealing a block per step from whatever payloads contracts have
queued; rollup batches become final only ``challenge_period_blocks`` after
their inclusion height (Section II-A's challenge window).
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..crypto import hash_value
from ..errors import ChainError
from .account import AccountLedger
from .block import Block

GENESIS_PARENT = hash_value("repro.chain.genesis")


class L1Chain:
    """An in-process Layer-1 chain with deterministic block production."""

    def __init__(self) -> None:
        self.accounts = AccountLedger()
        self._blocks: List[Block] = []
        self._pending_payloads: List[Any] = []
        self._time = 0

    @property
    def height(self) -> int:
        """Number of sealed blocks."""
        return len(self._blocks)

    @property
    def head(self) -> Optional[Block]:
        """The most recently sealed block, or ``None`` pre-genesis."""
        return self._blocks[-1] if self._blocks else None

    @property
    def time(self) -> int:
        """Current simulated timestamp (one unit per sealed block)."""
        return self._time

    def block_at(self, height: int) -> Block:
        """Fetch the sealed block at ``height``."""
        if not 0 <= height < len(self._blocks):
            raise ChainError(f"no block at height {height} (chain height {self.height})")
        return self._blocks[height]

    def queue_payload(self, payload: Any) -> None:
        """Schedule a payload for inclusion in the next sealed block."""
        self._pending_payloads.append(payload)

    def seal_block(self) -> Block:
        """Seal pending payloads into a new block and advance time."""
        parent_hash = self.head.block_hash if self.head else GENESIS_PARENT
        self._time += 1
        block = Block.seal(
            height=len(self._blocks),
            parent_hash=parent_hash,
            payloads=self._pending_payloads,
            timestamp=self._time,
        )
        self._blocks.append(block)
        self._pending_payloads = []
        return block

    def seal_blocks(self, count: int) -> List[Block]:
        """Seal ``count`` consecutive blocks (empty ones included)."""
        if count < 0:
            raise ChainError("cannot seal a negative number of blocks")
        return [self.seal_block() for _ in range(count)]

    def find_payload(self, predicate) -> Optional[Any]:
        """Return the first payload matching ``predicate``, newest first."""
        for block in reversed(self._blocks):
            for payload in block.payloads:
                if predicate(payload):
                    return payload
        return None

    def verify_ancestry(self) -> bool:
        """Check the parent-hash links across the whole chain."""
        previous = GENESIS_PARENT
        for block in self._blocks:
            if block.header.parent_hash != previous:
                return False
            previous = block.block_hash
        return True
