"""L1 blocks and headers.

Blocks carry opaque payload digests (rollup batch commitments, deposits)
and a Merkle root over their payloads so confirmation can be proven.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence, Tuple

from ..crypto import MerkleTree, hash_value


@dataclass(frozen=True)
class BlockHeader:
    """Header committing to a block's parent, height and payload root."""

    height: int
    parent_hash: str
    payload_root: str
    timestamp: int

    @property
    def block_hash(self) -> str:
        """Digest identifying this block."""
        return hash_value(
            ["block", self.height, self.parent_hash, self.payload_root, self.timestamp]
        )


@dataclass(frozen=True)
class Block:
    """A sealed L1 block: header plus ordered payload entries."""

    header: BlockHeader
    payloads: Tuple[Any, ...]

    @staticmethod
    def seal(
        height: int,
        parent_hash: str,
        payloads: Sequence[Any],
        timestamp: int,
    ) -> "Block":
        """Build a block, computing the payload Merkle root."""
        tree = MerkleTree(list(payloads))
        header = BlockHeader(
            height=height,
            parent_hash=parent_hash,
            payload_root=tree.root,
            timestamp=timestamp,
        )
        return Block(header=header, payloads=tuple(payloads))

    @property
    def block_hash(self) -> str:
        """Digest identifying this block (delegates to the header)."""
        return self.header.block_hash
