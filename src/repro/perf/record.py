"""Versioned bench-record schema: what every benchmark emits.

A :class:`BenchRecord` is the one JSON shape all ``benchmarks/bench_*``
scripts produce (replacing the previous per-bench ad-hoc payloads):

* an **environment fingerprint** — cpu count, python/numpy versions,
  platform, optional kernel backend — hashed into ``env_digest`` so the
  regression detector only ever compares runs from comparable machines;
* the **git revision** and a wall-clock ``created_at`` stamp;
* named **series** of samples with units and a better-direction flag
  (``higher`` for throughput/speedups, ``lower`` for latencies), the
  unit of trend comparison;
* machine-readable **gate verdicts** — every acceptance gate states
  whether it *armed*, and when it could not (``cpu_count=1``), why.
  A gate that never ran is never a silent green check;
* an optional free-form ``view`` block carrying the bench's legacy
  detail payload, so the rendered ``BENCH_*.json`` files stay rich.

The shared writer (:func:`write_record`) renders the record to the
bench's historical ``BENCH_<id>.json`` filename; the trend side lives in
:mod:`repro.perf.trend`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..telemetry.manifest import git_revision

__all__ = [
    "BENCH_RECORD_SCHEMA",
    "BenchSeries",
    "GateVerdict",
    "BenchRecord",
    "env_fingerprint",
    "env_digest",
    "new_record",
    "write_record",
    "read_record",
]

#: Bump when the record anatomy changes; old records stay readable but
#: the regression detector refuses to compare across schema versions.
BENCH_RECORD_SCHEMA = "repro.perf/bench-record/v1"


def env_fingerprint(
    kernel_backend: Optional[str] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The host properties that make two bench runs comparable.

    Everything that moves a number without a code change belongs here:
    core count, interpreter, numpy, OS/arch, and (for kernel benches)
    which compiled backend actually ran.
    """
    try:
        import numpy as np

        numpy_version = np.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep today
        numpy_version = None
    fingerprint: Dict[str, Any] = {
        "cpu_count": os.cpu_count() or 1,
        "python_version": platform.python_version(),
        "python_impl": platform.python_implementation(),
        "numpy_version": numpy_version,
        "platform": platform.system(),
        "machine": platform.machine(),
    }
    if kernel_backend is not None:
        fingerprint["kernel_backend"] = kernel_backend
    if extra:
        fingerprint.update(dict(extra))
    return fingerprint


def env_digest(fingerprint: Mapping[str, Any]) -> str:
    """Short stable hash of an environment fingerprint."""
    payload = json.dumps(
        {str(k): fingerprint[k] for k in sorted(fingerprint)},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class BenchSeries:
    """One named series of samples with a unit and a better-direction."""

    name: str
    unit: str
    values: Tuple[float, ...]
    #: ``higher`` (throughput, speedup, profit) or ``lower`` (latency).
    direction: str = "higher"
    #: Free-form qualifiers (``{"N": 50}``, ``{"K": 32}``).
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower"):
            raise ValueError(
                f"series {self.name!r}: direction must be 'higher' or "
                f"'lower', not {self.direction!r}"
            )
        object.__setattr__(
            self, "values", tuple(float(v) for v in self.values)
        )
        object.__setattr__(self, "meta", dict(self.meta))

    @property
    def median(self) -> float:
        """The series' central value (what trends compare)."""
        if not self.values:
            return float("nan")
        ordered = sorted(self.values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "unit": self.unit,
            "values": list(self.values),
            "direction": self.direction,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "BenchSeries":
        return cls(
            name=str(payload["name"]),
            unit=str(payload.get("unit", "")),
            values=tuple(float(v) for v in payload.get("values", ())),
            direction=str(payload.get("direction", "higher")),
            meta=dict(payload.get("meta", {})),
        )


@dataclass(frozen=True)
class GateVerdict:
    """Machine-readable state of one acceptance gate.

    ``armed=False`` means the environment could not support the gate
    (e.g. a multi-core speedup gate on a 1-core machine); ``reason``
    says why and ``passed`` is ``None``.  CI renders unarmed gates
    loudly instead of letting them read as green.
    """

    name: str
    armed: bool
    passed: Optional[bool] = None
    reason: str = ""
    threshold: Optional[float] = None
    observed: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.armed and not self.reason:
            raise ValueError(
                f"gate {self.name!r}: an unarmed gate must state a reason"
            )

    def render(self) -> str:
        detail = ""
        if self.observed is not None and self.threshold is not None:
            detail = f" (observed {self.observed:g} vs {self.threshold:g})"
        if not self.armed:
            return f"gate {self.name}: UNARMED — {self.reason}{detail}"
        if self.passed is None:
            return f"gate {self.name}: armed, no verdict{detail}"
        state = "PASS" if self.passed else "FAIL"
        return f"gate {self.name}: {state}{detail}"

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "armed": self.armed,
            "passed": self.passed,
            "reason": self.reason,
            "threshold": self.threshold,
            "observed": self.observed,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "GateVerdict":
        return cls(
            name=str(payload["name"]),
            armed=bool(payload.get("armed", False)),
            passed=payload.get("passed"),
            reason=str(payload.get("reason", "")),
            threshold=payload.get("threshold"),
            observed=payload.get("observed"),
        )


@dataclass(frozen=True)
class BenchRecord:
    """One bench run: environment, series, gates, and a rendered view."""

    bench_id: str
    created_at: float
    git_rev: Optional[str]
    env: Mapping[str, Any]
    series: Tuple[BenchSeries, ...]
    gates: Tuple[GateVerdict, ...] = ()
    view: Mapping[str, Any] = field(default_factory=dict)
    meta: Mapping[str, Any] = field(default_factory=dict)
    schema: str = BENCH_RECORD_SCHEMA

    def __post_init__(self) -> None:
        if not self.bench_id:
            raise ValueError("bench_id must be non-empty")
        names = [s.name for s in self.series]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate series names in {self.bench_id}")

    @property
    def env_digest(self) -> str:
        return env_digest(self.env)

    def series_by_name(self) -> Dict[str, BenchSeries]:
        return {s.name: s for s in self.series}

    def unarmed_gates(self) -> List[GateVerdict]:
        return [g for g in self.gates if not g.armed]

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "bench_id": self.bench_id,
            "created_at": self.created_at,
            "git_rev": self.git_rev,
            "env": dict(self.env),
            "env_digest": self.env_digest,
            "series": [s.to_json() for s in self.series],
            "gates": [g.to_json() for g in self.gates],
            "view": dict(self.view),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "BenchRecord":
        schema = str(payload.get("schema", ""))
        if not schema.startswith("repro.perf/bench-record/"):
            raise ValueError(f"not a bench record: schema={schema!r}")
        return cls(
            bench_id=str(payload["bench_id"]),
            created_at=float(payload.get("created_at", 0.0)),
            git_rev=payload.get("git_rev"),
            env=dict(payload.get("env", {})),
            series=tuple(
                BenchSeries.from_json(s) for s in payload.get("series", ())
            ),
            gates=tuple(
                GateVerdict.from_json(g) for g in payload.get("gates", ())
            ),
            view=dict(payload.get("view", {})),
            meta=dict(payload.get("meta", {})),
            schema=schema,
        )


def new_record(
    bench_id: str,
    series: Sequence[BenchSeries],
    gates: Sequence[GateVerdict] = (),
    view: Optional[Mapping[str, Any]] = None,
    meta: Optional[Mapping[str, Any]] = None,
    kernel_backend: Optional[str] = None,
    env_extra: Optional[Mapping[str, Any]] = None,
    created_at: Optional[float] = None,
    git_rev: Optional[str] = None,
) -> BenchRecord:
    """Assemble a record with the current environment and git revision."""
    return BenchRecord(
        bench_id=bench_id,
        created_at=time.time() if created_at is None else float(created_at),
        git_rev=git_rev if git_rev is not None else git_revision(),
        env=env_fingerprint(kernel_backend=kernel_backend, extra=env_extra),
        series=tuple(series),
        gates=tuple(gates),
        view=dict(view or {}),
        meta=dict(meta or {}),
    )


def write_record(
    record: BenchRecord, results_dir: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Render the record to its ``BENCH_<id>.json`` view file."""
    results_dir = pathlib.Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"BENCH_{record.bench_id}.json"
    path.write_text(json.dumps(record.to_json(), indent=2) + "\n")
    return path


def read_record(path: Union[str, pathlib.Path]) -> BenchRecord:
    """Parse a rendered ``BENCH_*.json`` view back into a record."""
    payload = json.loads(pathlib.Path(path).read_text())
    return BenchRecord.from_json(payload)
