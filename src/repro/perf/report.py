"""Human-readable views over the trend store.

``render_report`` is the ``parole perf report`` body: per bench, the
latest record's series (with medians and sample counts), gate verdicts,
and the delta against the previous record from the same environment.
``render_compare`` is the ``parole perf compare REV1 REV2`` body.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from .record import BenchRecord
from .regression import compare_records
from .trend import TrendStore

__all__ = ["render_record", "render_report", "render_compare"]


def _stamp(record: BenchRecord) -> str:
    rev = (record.git_rev or "unknown")[:12]
    when = time.strftime(
        "%Y-%m-%d %H:%M:%S", time.localtime(record.created_at)
    )
    return f"rev {rev}, recorded {when}, env {record.env_digest}"


def render_record(
    record: BenchRecord, previous: Optional[BenchRecord] = None
) -> str:
    """One bench's section of the report."""
    lines = [f"bench {record.bench_id} — {_stamp(record)}"]
    env = record.env
    lines.append(
        f"  env: cpu_count={env.get('cpu_count')} "
        f"python={env.get('python_version')} "
        f"numpy={env.get('numpy_version')}"
        + (
            f" kernel={env.get('kernel_backend')}"
            if env.get("kernel_backend")
            else ""
        )
    )
    header = f"  {'series':<40} {'median':>12} {'n':>4}  {'unit':<12}"
    delta_header = previous is not None
    if delta_header:
        header += f" {'vs prev':>9}"
    lines.append(header)
    deltas = {}
    if previous is not None:
        deltas = {
            v.series: v.rel_delta for v in compare_records(previous, record)
        }
    for series in record.series:
        row = (
            f"  {series.name:<40} {series.median:>12g} "
            f"{len(series.values):>4}  {series.unit:<12}"
        )
        if delta_header:
            rel = deltas.get(series.name)
            row += f" {rel:>+8.1%}" if rel is not None else f" {'n/a':>9}"
        lines.append(row)
    for gate in record.gates:
        lines.append(f"  {gate.render()}")
    return "\n".join(lines)


def render_report(
    trend: TrendStore, bench_ids: Optional[Sequence[str]] = None
) -> str:
    """The full ``parole perf report`` text."""
    ids = list(bench_ids) if bench_ids else trend.bench_ids()
    if not ids:
        return "perf report: trend store is empty (no bench records)"
    sections: List[str] = []
    for bench_id in ids:
        history = trend.history(bench_id)
        if not history:
            sections.append(f"bench {bench_id} — no records")
            continue
        latest = history[-1]
        same_env = [
            r
            for r in history[:-1]
            if r.env_digest == latest.env_digest
        ]
        previous = same_env[-1] if same_env else None
        sections.append(render_record(latest, previous))
    return "\n\n".join(sections)


def render_compare(
    trend: TrendStore,
    rev_a: str,
    rev_b: str,
    bench_ids: Optional[Sequence[str]] = None,
) -> str:
    """Per-series delta report between two recorded revisions."""
    ids = list(bench_ids) if bench_ids else trend.bench_ids()
    lines = [f"perf compare: {rev_a} -> {rev_b}"]
    found = 0
    for bench_id in ids:
        old = trend.at_rev(bench_id, rev_a)
        new = trend.at_rev(bench_id, rev_b)
        if old is None or new is None:
            missing = rev_a if old is None else rev_b
            lines.append(f"  {bench_id}: no record at {missing}")
            continue
        found += 1
        lines.append(f"{bench_id}:")
        if old.env_digest != new.env_digest:
            lines.append(
                "  note: environments differ "
                f"({old.env_digest} vs {new.env_digest}); deltas are "
                "not like-for-like"
            )
        for verdict in compare_records(old, new):
            lines.append(verdict.render())
    if not found:
        lines.append("no bench has records at both revisions")
    return "\n".join(lines)
