"""Chrome-trace / Perfetto export of the JSONL span traces.

Converts a recorded ``trace.jsonl`` (see :mod:`repro.telemetry.tracing`)
into the Trace Event Format that ``chrome://tracing`` and
https://ui.perfetto.dev load directly:

* spans become complete events (``ph="X"``) with microsecond ``ts`` /
  ``dur``, carrying their span/parent ids and attributes in ``args``;
* point events become instants (``ph="i"``, thread scope);
* metrics snapshots become counter events (``ph="C"``) so counter
  trajectories render as tracks under the timeline;
* records absorbed from fabric workers (stamped ``worker=<pid>``) land
  on their own process track, with ``process_name`` metadata naming it,
  so a ``--jobs N`` run shows one lane per worker.

The tracer emits spans at *close*, so JSONL order is children-first;
viewers sort by ``ts``, which restores the timeline, and same-track
nesting falls out of containment.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Mapping, Tuple, Union

from ..telemetry.trace_tools import read_trace

__all__ = ["chrome_trace_events", "export_chrome_trace"]

_MAIN_PID = 0


def _lane(record: Mapping[str, Any]) -> int:
    """Process lane for a record: worker pid when absorbed, else main."""
    attrs = record.get("attrs") or {}
    worker = attrs.get("worker")
    if isinstance(worker, int) and worker > 0:
        return worker
    return _MAIN_PID


def _num(value: Any, default: float = 0.0) -> float:
    try:
        result = float(value)
    except (TypeError, ValueError):
        return default
    return result if result == result and abs(result) != float("inf") else default


def _sanitize(value: Any) -> Any:
    """Make an attrs payload strict-JSON safe (no NaN/Inf, no objects)."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if value != value or abs(value) == float("inf"):
            return repr(value)
        return value
    if isinstance(value, Mapping):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    return str(value)


def chrome_trace_events(
    records: List[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Map parsed JSONL records onto Trace Event Format dicts."""
    events: List[Dict[str, Any]] = []
    lanes = {_MAIN_PID}
    for record in records:
        kind = record.get("type")
        name = str(record.get("name", "?"))
        pid = _lane(record)
        lanes.add(pid)
        attrs = dict(record.get("attrs") or {})
        if kind == "span":
            start_us = _num(record.get("start")) * 1e6
            dur_us = max(0.0, _num(record.get("duration_s")) * 1e6)
            args: Dict[str, Any] = {
                "span_id": record.get("span_id"),
                "parent_id": record.get("parent_id"),
            }
            if "error" in record:
                args["error"] = record["error"]
            args.update(_sanitize(attrs))
            events.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": start_us,
                    "dur": dur_us,
                    "pid": pid,
                    "tid": 0,
                    "cat": name.split(".", 1)[0],
                    "args": args,
                }
            )
        elif kind == "event":
            events.append(
                {
                    "name": name,
                    "ph": "i",
                    "ts": _num(record.get("t")) * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "s": "t",
                    "cat": name.split(".", 1)[0],
                    "args": _sanitize(attrs),
                }
            )
        elif kind == "metrics":
            counters = (record.get("metrics") or {}).get("counters", {})
            numeric = {
                str(k): _num(v)
                for k, v in counters.items()
                if isinstance(v, (int, float))
            }
            if numeric:
                events.append(
                    {
                        "name": "counters",
                        "ph": "C",
                        "ts": _num(record.get("t")) * 1e6,
                        "pid": pid,
                        "tid": 0,
                        "args": numeric,
                    }
                )
    # Name the process lanes so Perfetto shows "main" / "worker <pid>".
    for pid in sorted(lanes):
        label = "main" if pid == _MAIN_PID else f"worker {pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    return events


def export_chrome_trace(
    trace_path: Union[str, pathlib.Path],
    out_path: Union[str, pathlib.Path, None] = None,
) -> Tuple[pathlib.Path, Dict[str, int]]:
    """Convert a JSONL trace file into a Chrome-trace JSON file.

    Returns the output path and counts of converted/skipped records.
    The output is strict JSON (``allow_nan=False``) so every viewer
    accepts it.
    """
    trace_path = pathlib.Path(trace_path)
    records, bad = read_trace(trace_path)
    events = chrome_trace_events(records)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": str(trace_path),
            "format": "repro.telemetry JSONL trace",
        },
    }
    out = (
        pathlib.Path(out_path)
        if out_path is not None
        else trace_path.with_suffix(".chrome.json")
    )
    out.write_text(json.dumps(payload, allow_nan=False) + "\n")
    counts = {
        "records": len(records),
        "events": len(events),
        "skipped": bad,
    }
    return out, counts
