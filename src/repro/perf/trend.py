"""Trend store: bench records keyed by (bench id, git rev, env).

Bench records append into a ``perf:`` namespace of the content-addressed
:class:`~repro.store.ResultStore` — the same atomic-rename, rebuildable-
index machinery that memoizes experiments — so the perf history can live
in the same directory as a result cache without sharing entries.

The key is ``bench:<bench_id>:<git_rev>:<env_digest>``: re-running the
same bench at the same revision on the same machine *replaces* the
record (latest wins), while every new revision or machine adds a point
to the trajectory.  History queries sort by the records' own
``created_at`` stamps, so the trajectory is stable however the entries
landed on disk.

``REPRO_PERF_STORE`` names the default on-disk location; benches consult
it via :func:`open_trend_from_env` so a CI job can opt every bench into
trend recording with one environment variable.
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, List, Optional, Union

from ..store import ResultStore
from .record import BenchRecord

__all__ = [
    "PERF_NAMESPACE",
    "PERF_STORE_ENV",
    "TrendStore",
    "open_trend",
    "open_trend_from_env",
]

PERF_NAMESPACE = "perf"
#: Environment variable naming the trend-store directory; when set,
#: every bench run appends its record automatically.
PERF_STORE_ENV = "REPRO_PERF_STORE"


class TrendStore:
    """Append/query bench records in a ``perf:``-namespaced ResultStore."""

    def __init__(self, store: ResultStore) -> None:
        self.store = store.namespaced(PERF_NAMESPACE)

    @classmethod
    def open(cls, root: Union[str, pathlib.Path]) -> "TrendStore":
        return cls(ResultStore(root))

    # -- keys -----------------------------------------------------------

    @staticmethod
    def record_key(record: BenchRecord) -> str:
        rev = record.git_rev or "unknown"
        return f"bench:{record.bench_id}:{rev}:{record.env_digest}"

    # -- writing --------------------------------------------------------

    def append(self, record: BenchRecord) -> str:
        """Store ``record``; returns the full store key."""
        return self.store.put(self.record_key(record), record.to_json())

    # -- reading --------------------------------------------------------

    def _all_records(self) -> List[BenchRecord]:
        records: List[BenchRecord] = []
        prefix = f"{PERF_NAMESPACE}:bench:"
        for full_key in self.store.keys():
            if not full_key.startswith(prefix):
                continue
            payload = self.store.get(full_key[len(f"{PERF_NAMESPACE}:"):])
            if payload is None:
                continue
            try:
                records.append(BenchRecord.from_json(payload))
            except (ValueError, KeyError, TypeError):
                continue  # unreadable entry: invisible, not fatal
        return records

    def bench_ids(self) -> List[str]:
        """Every bench id with at least one stored record, sorted."""
        return sorted({r.bench_id for r in self._all_records()})

    def history(
        self,
        bench_id: str,
        env_digest: Optional[str] = None,
    ) -> List[BenchRecord]:
        """Records for ``bench_id`` (optionally one env), oldest first."""
        records = [
            r for r in self._all_records() if r.bench_id == bench_id
        ]
        if env_digest is not None:
            records = [r for r in records if r.env_digest == env_digest]
        return sorted(records, key=lambda r: (r.created_at, r.git_rev or ""))

    def latest(
        self,
        bench_id: str,
        env_digest: Optional[str] = None,
    ) -> Optional[BenchRecord]:
        history = self.history(bench_id, env_digest=env_digest)
        return history[-1] if history else None

    def at_rev(self, bench_id: str, git_rev: str) -> Optional[BenchRecord]:
        """The newest record for ``bench_id`` at a revision (prefix match)."""
        matches = [
            r
            for r in self.history(bench_id)
            if r.git_rev is not None and r.git_rev.startswith(git_rev)
        ]
        return matches[-1] if matches else None


def open_trend(root: Union[str, pathlib.Path]) -> TrendStore:
    """Open (creating if needed) the trend store at ``root``."""
    return TrendStore.open(root)


def open_trend_from_env() -> Optional[TrendStore]:
    """The trend store named by ``REPRO_PERF_STORE``, or ``None``."""
    root = os.environ.get(PERF_STORE_ENV)
    if not root:
        return None
    return TrendStore.open(root)
