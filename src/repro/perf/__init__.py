"""Performance observatory: bench schema, trends, regressions, timelines.

Built on :mod:`repro.telemetry` (what a run recorded) and
:mod:`repro.store` (where history lives), this package answers the
questions telemetry alone cannot: *is this commit slower than the last
one, on this machine, beyond noise — and where did the time go?*

* :mod:`~repro.perf.record` — the versioned :class:`BenchRecord` schema
  every ``benchmarks/bench_*`` script emits through one shared writer
  (environment fingerprint, named series with units, machine-readable
  gate verdicts);
* :mod:`~repro.perf.trend` — records appended under a ``perf:``
  namespace of the content-addressed ResultStore, keyed by
  (bench id, git rev, env fingerprint);
* :mod:`~repro.perf.regression` — median-of-K baselines with a
  relative-threshold + MAD outlier rule and explicit
  ``gate unarmed: <reason>`` verdicts;
* :mod:`~repro.perf.trace_export` — Chrome-trace/Perfetto export of the
  JSONL span traces;
* :mod:`~repro.perf.report` — rendered trend and comparison reports.

The ``parole perf`` CLI (``report`` / ``compare`` / ``check`` /
``baseline`` / ``export-trace`` / ``ingest``) fronts all of it; see
``docs/perf.md``.
"""

from .record import (
    BENCH_RECORD_SCHEMA,
    BenchRecord,
    BenchSeries,
    GateVerdict,
    env_digest,
    env_fingerprint,
    new_record,
    read_record,
    write_record,
)
from .regression import (
    RegressionPolicy,
    RegressionReport,
    SeriesVerdict,
    check_against_baseline,
    compare_records,
    detect_regressions,
    make_baseline,
)
from .report import render_compare, render_record, render_report
from .trace_export import chrome_trace_events, export_chrome_trace
from .trend import (
    PERF_NAMESPACE,
    PERF_STORE_ENV,
    TrendStore,
    open_trend,
    open_trend_from_env,
)

__all__ = [
    "BENCH_RECORD_SCHEMA",
    "BenchRecord",
    "BenchSeries",
    "GateVerdict",
    "env_digest",
    "env_fingerprint",
    "new_record",
    "read_record",
    "write_record",
    "RegressionPolicy",
    "RegressionReport",
    "SeriesVerdict",
    "check_against_baseline",
    "compare_records",
    "detect_regressions",
    "make_baseline",
    "render_compare",
    "render_record",
    "render_report",
    "chrome_trace_events",
    "export_chrome_trace",
    "PERF_NAMESPACE",
    "PERF_STORE_ENV",
    "TrendStore",
    "open_trend",
    "open_trend_from_env",
]
