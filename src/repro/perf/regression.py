"""Noise-aware regression detection over bench-record trends.

The detector never compares apples to oranges and never lets a gate
that could not run read as green:

* **median-of-K baselines** — the baseline for a series is the median
  of that series' central values over the last ``baseline_window``
  *prior* runs with the **same environment digest** (different machine
  → different trend);
* **relative threshold + MAD outlier rule** — a candidate only counts
  as a regression when it is worse than the baseline by more than
  ``rel_threshold`` *and* further from the baseline than
  ``mad_k`` × MAD of the history (so a noisy series needs a bigger move
  to trip than a rock-steady one).  When the history's MAD is zero the
  relative threshold alone decides;
* **explicit unarmed verdicts** — not enough history, an environment
  mismatch, or a bench-level unarmed gate (``cpu_count=1``) all yield
  ``status="unarmed"`` with a reason, reported loudly and separately
  from pass/fail.

``parole perf check`` exits nonzero only on *confirmed* regressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .record import BenchRecord

__all__ = [
    "RegressionPolicy",
    "SeriesVerdict",
    "RegressionReport",
    "detect_regressions",
    "make_baseline",
    "check_against_baseline",
    "compare_records",
]


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    if not ordered:
        return float("nan")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _mad(values: Sequence[float]) -> float:
    """Median absolute deviation — the detector's noise estimate."""
    if not values:
        return 0.0
    center = _median(values)
    return _median([abs(v - center) for v in values])


@dataclass(frozen=True)
class RegressionPolicy:
    """Tunable knobs of the detector."""

    #: Worse-than-baseline fraction that starts to count (0.10 = 10%).
    rel_threshold: float = 0.10
    #: How many MADs from the baseline a candidate must sit to confirm.
    mad_k: float = 3.0
    #: Minimum prior runs (same env) before any series verdict arms.
    min_history: int = 2
    #: How many most-recent prior runs feed the median baseline.
    baseline_window: int = 5


@dataclass(frozen=True)
class SeriesVerdict:
    """The detector's decision on one (bench, series) pair."""

    bench_id: str
    series: str
    #: ``ok`` | ``improved`` | ``regressed`` | ``unarmed``
    status: str
    reason: str = ""
    unit: str = ""
    direction: str = "higher"
    baseline: Optional[float] = None
    candidate: Optional[float] = None
    #: Signed relative change, positive = better in ``direction`` terms.
    rel_delta: Optional[float] = None
    history_mad: Optional[float] = None
    history_size: int = 0

    def render(self) -> str:
        label = f"{self.bench_id}/{self.series}"
        if self.status == "unarmed":
            return f"  {label:<44} gate unarmed: {self.reason}"
        delta = (
            f"{self.rel_delta:+.1%}" if self.rel_delta is not None else "n/a"
        )
        values = ""
        if self.baseline is not None and self.candidate is not None:
            values = (
                f" ({self.candidate:g} vs baseline {self.baseline:g}"
                f"{' ' + self.unit if self.unit else ''})"
            )
        marker = {"ok": "ok", "improved": "IMPROVED", "regressed": "REGRESSED"}[
            self.status
        ]
        suffix = f" — {self.reason}" if self.reason else ""
        return f"  {label:<44} {marker:<9} {delta:>8}{values}{suffix}"


@dataclass
class RegressionReport:
    """All verdicts from one detection pass."""

    verdicts: List[SeriesVerdict] = field(default_factory=list)

    @property
    def regressions(self) -> List[SeriesVerdict]:
        return [v for v in self.verdicts if v.status == "regressed"]

    @property
    def unarmed(self) -> List[SeriesVerdict]:
        return [v for v in self.verdicts if v.status == "unarmed"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = ["perf check:"]
        lines += [v.render() for v in self.verdicts]
        lines.append("")
        lines.append(
            f"{len(self.verdicts)} series checked — "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.unarmed)} unarmed"
        )
        for verdict in self.unarmed:
            lines.append(
                f"WARNING: {verdict.bench_id}/{verdict.series} gate "
                f"unarmed: {verdict.reason}"
            )
        for verdict in self.regressions:
            lines.append(
                f"REGRESSION: {verdict.bench_id}/{verdict.series} "
                f"{verdict.rel_delta:+.1%} vs baseline"
            )
        return "\n".join(lines)


def _worseness(
    candidate: float, baseline: float, direction: str
) -> Optional[float]:
    """Signed relative change where *positive means better*.

    ``None`` when the baseline is zero (no meaningful ratio).
    """
    if baseline == 0:
        return None
    raw = (candidate - baseline) / abs(baseline)
    return raw if direction == "higher" else -raw


def _series_verdict(
    candidate: BenchRecord,
    history: Sequence[BenchRecord],
    series_name: str,
    policy: RegressionPolicy,
) -> SeriesVerdict:
    series = candidate.series_by_name()[series_name]
    base = dict(
        bench_id=candidate.bench_id,
        series=series_name,
        unit=series.unit,
        direction=series.direction,
    )
    # A bench-level unarmed gate poisons every verdict for the record:
    # numbers recorded in an environment that cannot support the bench's
    # acceptance gate must not produce green (or red) checks.
    for gate in candidate.unarmed_gates():
        return SeriesVerdict(
            status="unarmed",
            reason=f"bench gate {gate.name!r} unarmed: {gate.reason}",
            candidate=series.median,
            **base,
        )
    prior = [
        r
        for r in history
        if r.env_digest == candidate.env_digest
        and r.schema == candidate.schema
        and not (
            r.git_rev == candidate.git_rev
            and r.created_at == candidate.created_at
        )
        and series_name in r.series_by_name()
    ]
    if len(prior) < policy.min_history:
        matching_env = any(
            r.env_digest == candidate.env_digest for r in history
        )
        if history and not matching_env:
            reason = (
                "no history from this environment "
                f"(env digest {candidate.env_digest})"
            )
        else:
            reason = (
                f"insufficient history ({len(prior)} prior run(s), "
                f"need {policy.min_history})"
            )
        return SeriesVerdict(
            status="unarmed", reason=reason,
            candidate=series.median, history_size=len(prior), **base,
        )
    window = prior[-policy.baseline_window:]
    centers = [r.series_by_name()[series_name].median for r in window]
    baseline = _median(centers)
    mad = _mad(centers)
    rel = _worseness(series.median, baseline, series.direction)
    if rel is None:
        return SeriesVerdict(
            status="unarmed",
            reason="baseline is zero; relative comparison undefined",
            baseline=baseline, candidate=series.median,
            history_mad=mad, history_size=len(window), **base,
        )
    verdict = dict(
        baseline=baseline, candidate=series.median, rel_delta=rel,
        history_mad=mad, history_size=len(window), **base,
    )
    if rel < -policy.rel_threshold:
        # Worse than the threshold — but only *confirmed* when it also
        # clears the noise floor of the history.
        if mad > 0 and abs(series.median - baseline) <= policy.mad_k * mad:
            return SeriesVerdict(
                status="ok",
                reason=(
                    f"within noise ({policy.mad_k:g}×MAD="
                    f"{policy.mad_k * mad:g})"
                ),
                **verdict,
            )
        return SeriesVerdict(status="regressed", **verdict)
    if rel > policy.rel_threshold:
        return SeriesVerdict(status="improved", **verdict)
    return SeriesVerdict(status="ok", **verdict)


def detect_regressions(
    candidates: Sequence[BenchRecord],
    history_by_bench: Mapping[str, Sequence[BenchRecord]],
    policy: Optional[RegressionPolicy] = None,
) -> RegressionReport:
    """Judge each candidate record against its bench's history."""
    policy = policy or RegressionPolicy()
    report = RegressionReport()
    for candidate in candidates:
        history = list(history_by_bench.get(candidate.bench_id, ()))
        for series in candidate.series:
            report.verdicts.append(
                _series_verdict(candidate, history, series.name, policy)
            )
    return report


# -- file baselines ------------------------------------------------------

BASELINE_SCHEMA = "repro.perf/baseline/v1"


def make_baseline(records: Sequence[BenchRecord]) -> Dict[str, Any]:
    """Freeze the latest records into a committed-baseline payload."""
    benches: Dict[str, Any] = {}
    for record in records:
        benches[record.bench_id] = {
            "git_rev": record.git_rev,
            "env": dict(record.env),
            "env_digest": record.env_digest,
            "series": {
                s.name: {
                    "unit": s.unit,
                    "direction": s.direction,
                    "value": s.median,
                }
                for s in record.series
            },
        }
    return {"schema": BASELINE_SCHEMA, "benches": benches}


def check_against_baseline(
    candidates: Sequence[BenchRecord],
    baseline: Mapping[str, Any],
    policy: Optional[RegressionPolicy] = None,
) -> RegressionReport:
    """Judge candidates against a frozen baseline file.

    A file baseline carries a single value per series (no noise
    estimate), so the MAD rule cannot apply — the relative threshold
    decides alone.  Environment mismatches unarm, never fail.
    """
    policy = policy or RegressionPolicy()
    if baseline.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"not a perf baseline: schema={baseline.get('schema')!r}"
        )
    benches: Mapping[str, Any] = baseline.get("benches", {})
    report = RegressionReport()
    for candidate in candidates:
        entry = benches.get(candidate.bench_id)
        for series in candidate.series:
            base = dict(
                bench_id=candidate.bench_id,
                series=series.name,
                unit=series.unit,
                direction=series.direction,
            )
            unarmed_gate = next(iter(candidate.unarmed_gates()), None)
            if unarmed_gate is not None:
                report.verdicts.append(SeriesVerdict(
                    status="unarmed",
                    reason=(
                        f"bench gate {unarmed_gate.name!r} unarmed: "
                        f"{unarmed_gate.reason}"
                    ),
                    candidate=series.median, **base,
                ))
                continue
            if entry is None or series.name not in entry.get("series", {}):
                report.verdicts.append(SeriesVerdict(
                    status="unarmed",
                    reason="series missing from baseline",
                    candidate=series.median, **base,
                ))
                continue
            if entry.get("env_digest") != candidate.env_digest:
                report.verdicts.append(SeriesVerdict(
                    status="unarmed",
                    reason=(
                        "environment differs from baseline "
                        f"(baseline {entry.get('env_digest')}, "
                        f"candidate {candidate.env_digest})"
                    ),
                    candidate=series.median, **base,
                ))
                continue
            frozen = entry["series"][series.name]
            rel = _worseness(
                series.median, float(frozen["value"]), series.direction
            )
            verdict = dict(
                baseline=float(frozen["value"]),
                candidate=series.median,
                rel_delta=rel, history_size=1, **base,
            )
            if rel is None:
                report.verdicts.append(SeriesVerdict(
                    status="unarmed",
                    reason="baseline is zero; relative comparison undefined",
                    baseline=float(frozen["value"]),
                    candidate=series.median, **base,
                ))
            elif rel < -policy.rel_threshold:
                report.verdicts.append(
                    SeriesVerdict(status="regressed", **verdict)
                )
            elif rel > policy.rel_threshold:
                report.verdicts.append(
                    SeriesVerdict(status="improved", **verdict)
                )
            else:
                report.verdicts.append(SeriesVerdict(status="ok", **verdict))
    return report


# -- rev-to-rev comparison ----------------------------------------------


def compare_records(
    old: BenchRecord, new: BenchRecord
) -> List[SeriesVerdict]:
    """Per-series deltas between two concrete records (no gating)."""
    verdicts: List[SeriesVerdict] = []
    old_series = old.series_by_name()
    for series in new.series:
        base = dict(
            bench_id=new.bench_id, series=series.name,
            unit=series.unit, direction=series.direction,
        )
        previous = old_series.get(series.name)
        if previous is None:
            verdicts.append(SeriesVerdict(
                status="unarmed", reason="series absent in first record",
                candidate=series.median, **base,
            ))
            continue
        rel = _worseness(series.median, previous.median, series.direction)
        status = "ok"
        if rel is not None:
            status = (
                "improved" if rel > 0.02 else "regressed" if rel < -0.02
                else "ok"
            )
        verdicts.append(SeriesVerdict(
            status=status if rel is not None else "unarmed",
            reason="" if rel is not None else "first value is zero",
            baseline=previous.median, candidate=series.median,
            rel_delta=rel, history_size=1, **base,
        ))
    return verdicts
