"""PAROLE — Profitable Arbitrage in Optimistic Rollup with ERC-721 tokens.

A full reproduction of Khalil & Rahman's DSN 2024 paper: the optimistic
rollup substrate (L1 contract, Bedrock-style mempool, OVM, aggregators,
verifiers, fraud proofs), the limited-edition ERC-721 state machine with
scarcity pricing, the GENTRANSEQ deep-Q-network re-ordering module, the
PAROLE attack orchestration, baseline solvers, the NFT market study and
the Section VIII defense.

Quickstart
----------
>>> from repro import ParoleAttack, case_study_fixture
>>> workload = case_study_fixture()
>>> attack = ParoleAttack()                       # doctest: +SKIP
>>> outcome = attack.run(workload.pre_state, workload.transactions)  # doctest: +SKIP
>>> outcome.profit > 0                            # doctest: +SKIP
True
"""

from .config import (
    AttackConfig,
    DefenseConfig,
    GenTranSeqConfig,
    NFTContractConfig,
    RollupConfig,
    SnapshotStudyConfig,
    WorkloadConfig,
    eth_to_wei,
    wei_to_eth,
)
from .errors import ReproError
from .core import (
    ArbitrageAssessment,
    AttackOutcome,
    GenTranSeq,
    GenTranSeqResult,
    ParoleAttack,
    ReorderEnv,
    assess_opportunity,
)
from .rollup import (
    AdversarialAggregator,
    Aggregator,
    BedrockMempool,
    ExecutionMode,
    L2State,
    NFTTransaction,
    OVM,
    RollupNode,
    TxKind,
    Verifier,
)
from .tokens import LimitedEditionNFT, ScarcityPricing
from .workloads import Workload, case_study_fixture, generate_workload
from . import api
from .api import (
    list_defenses,
    list_experiments,
    list_strategies,
    open_store,
    run_experiment,
    run_matrix,
)
from .store import ResultStore

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configs
    "AttackConfig",
    "DefenseConfig",
    "GenTranSeqConfig",
    "NFTContractConfig",
    "RollupConfig",
    "SnapshotStudyConfig",
    "WorkloadConfig",
    "eth_to_wei",
    "wei_to_eth",
    # errors
    "ReproError",
    # core
    "ArbitrageAssessment",
    "AttackOutcome",
    "GenTranSeq",
    "GenTranSeqResult",
    "ParoleAttack",
    "ReorderEnv",
    "assess_opportunity",
    # rollup
    "AdversarialAggregator",
    "Aggregator",
    "BedrockMempool",
    "ExecutionMode",
    "L2State",
    "NFTTransaction",
    "OVM",
    "RollupNode",
    "TxKind",
    "Verifier",
    # tokens
    "LimitedEditionNFT",
    "ScarcityPricing",
    # workloads
    "Workload",
    "case_study_fixture",
    "generate_workload",
    # experiment facade + result store
    "api",
    "list_defenses",
    "list_experiments",
    "list_strategies",
    "open_store",
    "run_experiment",
    "run_matrix",
    "ResultStore",
]
