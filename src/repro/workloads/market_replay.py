"""Market-calibrated workloads: from snapshot collections to mempools.

Figure 10's study scans collections for price differentials; this module
closes the loop by *replaying* a collection's observed price path into a
concrete transaction sequence the attack can run on.  The remaining
supply implied by each snapshot price (inverting Eq. 10) dictates how
many mints or burns occurred between snapshots; transfer traffic is
added in proportion to the collection's transaction count.  The result
is a :class:`~repro.workloads.generator.Workload` whose price dynamics
follow the real (synthetic-study) collection instead of the uniform
generator mix.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..config import NFTContractConfig, WorkloadConfig
from ..errors import MarketError
from ..market.nft_collections import SyntheticCollection
from ..rollup.state import ExecutionMode, L2State
from ..rollup.transaction import NFTTransaction, TxKind
from .generator import Workload, _assign_fees


def implied_remaining_supply(
    collection: SyntheticCollection, price_eth: float
) -> int:
    """Invert Eq. 10: the remaining supply a price level implies."""
    if price_eth <= 0:
        raise MarketError("price must be positive to invert Eq. 10")
    remaining = round(
        collection.max_supply * collection.initial_price_eth / price_eth
    )
    return int(np.clip(remaining, 1, collection.max_supply - 1))


def workload_from_collection(
    collection: SyntheticCollection,
    ifu: str = "ifu-0",
    window: Tuple[int, int] = (0, 16),
    transfers_per_step: int = 1,
    num_bystanders: int = 8,
    initial_balance_eth: float = 20.0,
    max_events_per_step: int = 3,
    seed: int = 0,
) -> Workload:
    """Replay a snapshot window into an attackable mempool.

    Between consecutive snapshots, the implied-supply delta becomes that
    many mint (supply fell) or burn (supply rose) transactions; each step
    also contributes ``transfers_per_step`` transfers.  The IFU is woven
    in as a frequent trader: it performs the first affordable mint and
    receives/sells transfers, guaranteeing the Section V-B involvement
    pattern.
    """
    start, end = window
    points = collection.price_history[start:end]
    if len(points) < 2:
        raise MarketError("window must span at least two snapshots")

    rng = np.random.default_rng(seed)
    users = [ifu] + [f"trader-{i}" for i in range(num_bystanders)]
    supplies = [
        implied_remaining_supply(collection, point.price_eth)
        for point in points
    ]

    nft_config = NFTContractConfig(
        symbol="RPLY",
        name=f"Replay({collection.short_address})",
        max_supply=collection.max_supply,
        initial_price_eth=collection.initial_price_eth,
    )
    minted_at_start = collection.max_supply - supplies[0]
    inventory = {user: 0 for user in users}
    # Seed ownership: the IFU holds two units (like the case study), the
    # rest of the initially-minted units spread over bystanders.
    inventory[ifu] = min(2, minted_at_start)
    remaining_units = minted_at_start - inventory[ifu]
    for index in range(remaining_units):
        inventory[users[1 + index % num_bystanders]] += 1
    balances = {user: initial_balance_eth for user in users}

    pre_state = L2State(
        nft_config=nft_config,
        balances=balances,
        inventory=inventory,
        mode=ExecutionMode.BATCH,
    )

    sim = pre_state.copy()
    sim.mode = ExecutionMode.STRICT
    transactions: List[NFTTransaction] = []

    def holders() -> List[str]:
        return [user for user in users if sim.holdings(user) > 0]

    ifu_has_minted = False
    for step in range(1, len(points)):
        delta = supplies[step - 1] - supplies[step]
        # Noisy price paths can imply large supply swings; cap the events
        # per step so the replay stays mempool-sized while preserving the
        # direction of every price move.
        delta = int(np.clip(delta, -max_events_per_step, max_events_per_step))
        for _ in range(abs(delta)):
            if delta > 0:
                # Supply fell: someone minted.
                minter = ifu if not ifu_has_minted else users[
                    1 + int(rng.integers(num_bystanders))
                ]
                if sim.balance(minter) < sim.unit_price or sim.remaining_supply < 1:
                    continue
                transactions.append(
                    NFTTransaction(kind=TxKind.MINT, sender=minter)
                )
                sim.apply(transactions[-1])
                if minter == ifu:
                    ifu_has_minted = True
            else:
                # Supply rose: someone burned.
                owners = [u for u in holders() if u != ifu] or holders()
                if not owners:
                    continue
                burner = owners[int(rng.integers(len(owners)))]
                transactions.append(
                    NFTTransaction(kind=TxKind.BURN, sender=burner)
                )
                sim.apply(transactions[-1])
        for _ in range(transfers_per_step):
            sellers = holders()
            if not sellers:
                continue
            # The IFU trades often: half of the transfer traffic touches it.
            if rng.random() < 0.5 and sim.holdings(ifu) > 0:
                seller = ifu
            else:
                seller = sellers[int(rng.integers(len(sellers)))]
            buyers = [
                u for u in users
                if u != seller and sim.balance(u) >= sim.unit_price
            ]
            if not buyers:
                continue
            if seller != ifu and rng.random() < 0.3:
                buyer = ifu if sim.balance(ifu) >= sim.unit_price else buyers[0]
            else:
                buyer = buyers[int(rng.integers(len(buyers)))]
            if buyer == seller:
                continue
            transactions.append(
                NFTTransaction(kind=TxKind.TRANSFER, sender=seller, recipient=buyer)
            )
            sim.apply(transactions[-1])

    if len(transactions) < 2:
        raise MarketError(
            f"window {window} of {collection.short_address} produced "
            f"{len(transactions)} transactions; widen the window"
        )
    stamped = _assign_fees(transactions, rng)
    config = WorkloadConfig(
        mempool_size=len(stamped),
        num_users=len(users),
        num_ifus=1,
        max_supply=collection.max_supply,
    )
    return Workload(
        pre_state=pre_state,
        transactions=stamped,
        ifus=(ifu,),
        users=tuple(users),
        config=config,
    )
