"""Named scenario fixtures, including the exact Section VI case study.

:func:`case_study_fixture` reproduces Figure 5's setup bit-for-bit:

* PAROLE Token with max supply 10, initial price 0.2 ETH;
* 5 tokens already minted — the IFU owns 2, ``U1`` owns 2, ``U13`` owns 1
  — so the unit price is 0.4 ETH by Eq. 10;
* the IFU holds 1.5 ETH of L2 tokens (total balance 2.3 ETH);
* the 8-transaction original sequence of Figure 5(a).

``CASE2_ORDER`` and ``CASE3_ORDER`` are the altered permutations of
Figures 5(b) and 5(c), expressed as indices into the original sequence.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..config import NFTContractConfig
from ..rollup.state import ExecutionMode, L2State
from ..rollup.transaction import NFTTransaction, TxKind
from .generator import Workload, WorkloadConfig

#: The IFU account name used by the fixtures.
IFU = "IFU"

#: Figure 5(b)'s altered order: TX1, TX7, TX5, TX4, TX3, TX6, TX2, TX8.
CASE2_ORDER: Tuple[int, ...] = (0, 6, 4, 3, 2, 5, 1, 7)

#: Figure 5(c)'s optimal order: TX1, TX7, TX8, TX5, TX4, TX3, TX6, TX2.
CASE3_ORDER: Tuple[int, ...] = (0, 6, 7, 4, 3, 2, 5, 1)


def case_study_fixture(bystander_balance_eth: float = 5.0) -> Workload:
    """The exact Section VI system status and transaction set.

    ``bystander_balance_eth`` funds the non-IFU users; the paper only
    pins the IFU's balance (1.5 ETH), and bystander balances never affect
    the IFU trace as long as they cover their own purchases.
    """
    nft_config = NFTContractConfig(
        symbol="PT", name="ParoleToken", max_supply=10, initial_price_eth=0.2
    )
    users = (IFU, "U1", "U2", "U3", "U6", "U11", "U13", "U19")
    balances: Dict[str, float] = {user: bystander_balance_eth for user in users}
    balances[IFU] = 1.5
    inventory = {IFU: 2, "U1": 2, "U13": 1}
    pre_state = L2State(
        nft_config=nft_config,
        balances=balances,
        inventory=inventory,
        mode=ExecutionMode.BATCH,
    )
    assert abs(pre_state.unit_price - 0.4) < 1e-12

    def tx(index: int, kind: TxKind, sender: str, recipient: str = None):
        return NFTTransaction(
            kind=kind,
            sender=sender,
            recipient=recipient,
            base_fee=1.0,
            priority_fee=float(len(users) - index) / 10.0,
            nonce=index,
            submitted_at=index + 1,
            label=f"TX{index + 1}",
        )

    transactions = (
        tx(0, TxKind.TRANSFER, "U1", "U2"),     # TX1
        tx(1, TxKind.MINT, "U19"),              # TX2
        tx(2, TxKind.TRANSFER, IFU, "U11"),     # TX3
        tx(3, TxKind.TRANSFER, "U19", "U6"),    # TX4
        tx(4, TxKind.MINT, IFU),                # TX5
        tx(5, TxKind.TRANSFER, "U13", "U3"),    # TX6
        tx(6, TxKind.BURN, "U2"),               # TX7
        tx(7, TxKind.TRANSFER, "U1", IFU),      # TX8
    )
    config = WorkloadConfig(
        mempool_size=len(transactions),
        num_users=len(users),
        num_ifus=1,
        max_supply=10,
    )
    return Workload(
        pre_state=pre_state,
        transactions=transactions,
        ifus=(IFU,),
        users=users,
        config=config,
    )


def mint_frenzy_scenario(seed: int = 7) -> Workload:
    """A mint-heavy round: scarcity pressure pushes prices monotonically.

    Exercises the attack when the IFU profits mostly by minting *before*
    the crowd and selling after.
    """
    config = WorkloadConfig(
        mempool_size=20,
        num_users=12,
        num_ifus=1,
        tx_type_mix=(0.6, 0.35, 0.05),
        premint_fraction=0.3,
        seed=seed,
    )
    from .generator import generate_workload

    return generate_workload(config)


def burn_heavy_scenario(seed: int = 11) -> Workload:
    """A burn-heavy round: supply replenishment deflates prices.

    Exercises the attack when the IFU profits by buying *after* burns
    crash the price and minting before the recovery.
    """
    config = WorkloadConfig(
        mempool_size=20,
        num_users=12,
        num_ifus=1,
        tx_type_mix=(0.25, 0.4, 0.35),
        premint_fraction=0.7,
        seed=seed,
    )
    from .generator import generate_workload

    return generate_workload(config)
