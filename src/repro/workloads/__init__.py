"""Workload generation for the evaluation section.

* :mod:`repro.workloads.generator` — random, strictly-valid transaction
  sequences with guaranteed IFU involvement, parameterised by mempool
  size / user population / IFU count (Figures 6-9, 11);
* :mod:`repro.workloads.scenarios` — named fixtures, including the exact
  case study of Section VI (Figure 5).
"""

from .generator import Workload, generate_workload
from .market_replay import implied_remaining_supply, workload_from_collection
from .scenarios import (
    CASE2_ORDER,
    CASE3_ORDER,
    case_study_fixture,
    mint_frenzy_scenario,
    burn_heavy_scenario,
)

__all__ = [
    "Workload",
    "generate_workload",
    "implied_remaining_supply",
    "workload_from_collection",
    "CASE2_ORDER",
    "CASE3_ORDER",
    "case_study_fixture",
    "mint_frenzy_scenario",
    "burn_heavy_scenario",
]
