"""Random transaction-sequence workloads (evaluation Section VII).

The generator builds sequences that are *strictly valid in their original
order* — every transaction satisfies Eq. 1/3/5 at its position — by
simulating the L2 state while generating.  IFU involvement is guaranteed:
each IFU participates in at least ``min_ifu_involvement`` transactions,
biased toward the mint + transfer pairing Section V-B calls the minimal
arbitrage setup.

Fees are assigned strictly decreasing along the generated order, so the
fee-priority order Bedrock hands to the aggregator coincides with the
generated (valid) order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import NFTContractConfig, WorkloadConfig
from ..errors import ReproError
from ..rollup.state import ExecutionMode, L2State
from ..rollup.transaction import NFTTransaction, TxKind


@dataclass
class Workload:
    """A generated round: pre-state plus the original-order transactions."""

    pre_state: L2State
    transactions: Tuple[NFTTransaction, ...]
    ifus: Tuple[str, ...]
    users: Tuple[str, ...]
    config: WorkloadConfig

    @property
    def mempool_size(self) -> int:
        """N — the aggregator's collection size."""
        return len(self.transactions)

    def ifu_involvement(self) -> dict:
        """Transactions each IFU participates in."""
        return {
            ifu: sum(1 for tx in self.transactions if tx.involves(ifu))
            for ifu in self.ifus
        }


def _user_names(config: WorkloadConfig) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    ifus = tuple(f"ifu-{i}" for i in range(config.num_ifus))
    regulars = tuple(
        f"user-{i}" for i in range(config.num_users - config.num_ifus)
    )
    return ifus, regulars


def _build_pre_state(
    config: WorkloadConfig,
    ifus: Sequence[str],
    regulars: Sequence[str],
    rng: np.random.Generator,
) -> L2State:
    max_supply = config.max_supply or max(20, config.mempool_size)
    nft_config = NFTContractConfig(
        symbol="PT", name="ParoleToken", max_supply=max_supply,
        initial_price_eth=0.2,
    )
    users = list(ifus) + list(regulars)
    balances = {user: float(config.initial_balance_eth) for user in users}
    inventory = {user: 0 for user in users}
    # Every IFU starts with a token so a transfer-out is always available
    # — that invariant wins over the requested premint fraction, so a low
    # ``premint_fraction`` tops up to one token per IFU instead of
    # silently truncating the IFU list.
    if len(ifus) > max_supply:
        raise ReproError(
            f"cannot seed {len(ifus)} IFUs with one token each: "
            f"collection max_supply is {max_supply}"
        )
    premint = max(int(max_supply * config.premint_fraction), len(ifus))
    holders = list(ifus) + [
        users[int(rng.integers(len(users)))] for _ in range(premint - len(ifus))
    ]
    for holder in holders:
        inventory[holder] += 1
    return L2State(
        nft_config=nft_config,
        balances=balances,
        inventory=inventory,
        mode=ExecutionMode.BATCH,
    )


def _feasible_kinds(state: L2State, user: str) -> List[TxKind]:
    kinds: List[TxKind] = []
    price = state.unit_price
    if state.remaining_supply >= 1 and state.balance(user) >= price:
        kinds.append(TxKind.MINT)
    if state.holdings(user) >= 1:
        kinds.append(TxKind.TRANSFER)  # user sells
        kinds.append(TxKind.BURN)
    return kinds


def _pick_buyer(
    state: L2State, seller: str, users: Sequence[str], rng: np.random.Generator
) -> Optional[str]:
    price = state.unit_price
    candidates = [
        user for user in users if user != seller and state.balance(user) >= price
    ]
    if not candidates:
        return None
    return candidates[int(rng.integers(len(candidates)))]


def generate_workload(
    config: Optional[WorkloadConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> Workload:
    """Generate one round of strictly-valid transactions.

    Raises :class:`ReproError` if the state space becomes so constrained
    that no feasible transaction exists (practically impossible with the
    default balances and supply headroom).
    """
    cfg = config or WorkloadConfig()
    rand = rng or np.random.default_rng(cfg.seed)
    ifus, regulars = _user_names(cfg)
    users: Tuple[str, ...] = ifus + regulars
    pre_state = _build_pre_state(cfg, ifus, regulars, rand)

    sim = pre_state.copy()
    sim.mode = ExecutionMode.STRICT
    transactions: List[NFTTransaction] = []
    deficits = {ifu: cfg.min_ifu_involvement for ifu in ifus}
    mint_p, transfer_p, burn_p = cfg.tx_type_mix

    for position in range(cfg.mempool_size):
        remaining_slots = cfg.mempool_size - position
        total_deficit = sum(max(0, d) for d in deficits.values())
        force_ifu = total_deficit >= remaining_slots
        # Spread IFU involvement uniformly across the sequence: prefer an
        # IFU action with probability deficit/remaining, so the expected
        # placement density is flat rather than front-loaded.
        prefer_ifu = (
            total_deficit > 0
            and rand.random() < total_deficit / max(remaining_slots, 1)
        )

        tx = _generate_one(
            sim, users, ifus, deficits, force_ifu or prefer_ifu,
            (mint_p, transfer_p, burn_p), rand,
        )
        if tx is None:
            raise ReproError(
                f"no feasible transaction at position {position}; "
                "increase balances or supply headroom"
            )
        result = sim.apply(tx)
        if not result.executed:
            raise ReproError(
                f"generator produced an invalid transaction: {result.validity}"
            )
        for party in tx.parties():
            if party in deficits:
                deficits[party] -= 1
        transactions.append(tx)

    stamped = _assign_fees(transactions, rand)
    return Workload(
        pre_state=pre_state,
        transactions=stamped,
        ifus=ifus,
        users=users,
        config=cfg,
    )


def _generate_one(
    sim: L2State,
    users: Sequence[str],
    ifus: Sequence[str],
    deficits: dict,
    prefer_ifu: bool,
    mix: Tuple[float, float, float],
    rand: np.random.Generator,
) -> Optional[NFTTransaction]:
    mint_p, transfer_p, burn_p = mix
    pools: List[Sequence[str]] = []
    if prefer_ifu:
        needy = [ifu for ifu in ifus if deficits[ifu] > 0]
        if needy:
            pools.append(needy)
    pools.append(list(users))

    for pool in pools:
        order = list(pool)
        rand.shuffle(order)
        for actor in order:
            kinds = _feasible_kinds(sim, actor)
            if not kinds:
                continue
            weights = np.array(
                [
                    {"mint": mint_p, "transfer": transfer_p, "burn": burn_p}[
                        kind.value
                    ]
                    for kind in kinds
                ]
            )
            if weights.sum() == 0:
                weights = np.ones(len(kinds))
            weights = weights / weights.sum()
            kind = kinds[int(rand.choice(len(kinds), p=weights))]
            if kind is TxKind.TRANSFER:
                buyer = _pick_buyer(sim, actor, users, rand)
                if buyer is None:
                    continue
                return NFTTransaction(
                    kind=TxKind.TRANSFER, sender=actor, recipient=buyer
                )
            if kind is TxKind.MINT:
                return NFTTransaction(kind=TxKind.MINT, sender=actor)
            return NFTTransaction(kind=TxKind.BURN, sender=actor)
    return None


def _assign_fees(
    transactions: Sequence[NFTTransaction], rand: np.random.Generator
) -> Tuple[NFTTransaction, ...]:
    """Stamp strictly-decreasing fees so fee order == generated order."""
    count = len(transactions)
    priorities = np.sort(rand.uniform(0.01, 2.0, size=count))[::-1]
    stamped = []
    for index, (tx, priority) in enumerate(zip(transactions, priorities)):
        stamped.append(
            NFTTransaction(
                kind=tx.kind,
                sender=tx.sender,
                recipient=tx.recipient,
                token_id=tx.token_id,
                base_fee=1.0,
                priority_fee=float(priority),
                nonce=index,
                submitted_at=index + 1,
                label=f"tx-{index}",
            )
        )
    return tuple(stamped)
