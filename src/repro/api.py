"""The public experiment facade: one import for the whole reproduction.

Six calls cover the common workflows documented in ``docs/api.md``:

* :func:`list_experiments` — what can be run (id + description + seed);
* :func:`run_experiment` — run one registered experiment through the
  uniform ``(preset, seed, runner)`` interface, optionally memoized in
  a content-addressed :class:`~repro.store.ResultStore`;
* :func:`list_strategies` — every adversary strategy plug-in registered
  in :data:`repro.strategies.STRATEGIES`;
* :func:`list_defenses` — every sequencing defense registered in
  :data:`repro.matrix.DEFENSES`;
* :func:`run_matrix` — the strategies × defenses × fault-plans
  leaderboard (what ``parole matrix`` prints);
* :func:`open_store` — open (or create) a store for resumable runs.

Prefer this module over importing individual ``run_figN`` harnesses:
the facade routes every experiment through the same registry entry the
CLI and ``run_all`` use, so results, renderings and cache keys are
guaranteed to match the archived artifacts.

>>> from repro import api
>>> [e.experiment_id for e in api.list_experiments()][:2]
['table3', 'fig5']
>>> outcome = api.run_experiment("table3")
>>> print(outcome.text, end="")  # doctest: +SKIP
"""

from __future__ import annotations

import pathlib
from typing import List, Optional, Sequence, Union

from .errors import ReproError
from .experiments import QUICK, EffortPreset
from .experiments.runner import (
    REGISTRY,
    ExperimentSpec,
    SpecOutcome,
    execute_spec,
)
from .matrix.defenses import DEFENSES, DefenseInfo
from .matrix.runner import MatrixReport, matrix_config_for
from .matrix.runner import run_matrix as _run_matrix_grid
from .parallel import TaskRunner
from .store import ResultStore
from .strategies.registry import STRATEGIES, StrategyInfo

__all__ = [
    "list_experiments",
    "run_experiment",
    "list_strategies",
    "list_defenses",
    "run_matrix",
    "open_store",
]


def list_experiments() -> List[ExperimentSpec]:
    """Every registered experiment, in registry (paper) order."""
    return list(REGISTRY)


def _find_spec(experiment_id: str) -> ExperimentSpec:
    for spec in REGISTRY:
        if spec.experiment_id == experiment_id:
            return spec
    known = ", ".join(spec.experiment_id for spec in REGISTRY)
    raise ReproError(
        f"unknown experiment {experiment_id!r} (known: {known})"
    )


def run_experiment(
    experiment_id: str,
    effort: EffortPreset = QUICK,
    seed: Optional[int] = None,
    runner: Optional[TaskRunner] = None,
    store: Optional[ResultStore] = None,
) -> SpecOutcome:
    """Run one experiment by id; returns its :class:`SpecOutcome`.

    ``outcome.result`` is the structured result object, ``outcome.text``
    the paper-style rendering and ``outcome.json_text`` the archived
    JSON payload — exactly what ``parole run-all`` writes to disk.

    ``seed`` defaults to the registry seed (what ``run_all`` uses, so
    cached entries are shared with it).  With a ``store``, a warm call
    is a pure read: ``outcome.cache_hit`` is True and the renderings
    are byte-identical to the cold run's.
    """
    spec = _find_spec(experiment_id)
    return execute_spec(
        spec, effort, seed=seed, task_runner=runner, store=store
    )


def list_strategies() -> List[StrategyInfo]:
    """Every registered adversary strategy plug-in, in registry order.

    Each entry carries ``name``, ``description`` and the factory the
    matrix runner uses; register additional plug-ins on
    :data:`repro.strategies.STRATEGIES` and both this listing and
    :func:`run_matrix` pick them up.
    """
    return STRATEGIES.list()


def list_defenses() -> List[DefenseInfo]:
    """Every registered sequencing defense, in registry order."""
    return DEFENSES.list()


def run_matrix(
    strategies: Optional[Sequence[str]] = None,
    defenses: Optional[Sequence[str]] = None,
    fault_plans: Optional[Sequence[str]] = None,
    preset: Union[EffortPreset, str] = QUICK,
    seed: int = 0,
    runner: Optional[TaskRunner] = None,
    store: Optional[ResultStore] = None,
) -> MatrixReport:
    """Run the strategies × defenses × fault-plans leaderboard.

    ``strategies``/``defenses``/``fault_plans`` default to every
    registered name (``None`` means "all"); pass explicit subsets to
    shrink the grid.  The returned :class:`~repro.matrix.MatrixReport`
    renders the leaderboard (``report.render()``) and serializes to
    canonical JSON (``report.deterministic_json()``) that is
    byte-identical across ``runner`` parallelism and cold/warm
    ``store`` runs.
    """
    preset_name = preset if isinstance(preset, str) else preset.name
    config = matrix_config_for(
        preset_name,
        seed=seed,
        strategies=tuple(strategies) if strategies is not None else None,
        defenses=tuple(defenses) if defenses is not None else None,
        fault_plans=tuple(fault_plans) if fault_plans is not None else None,
    )
    return _run_matrix_grid(config=config, runner=runner, store=store)


def open_store(
    path: Union[str, pathlib.Path],
    max_bytes: Optional[int] = None,
    max_age_seconds: Optional[float] = None,
) -> ResultStore:
    """Open (creating if needed) a content-addressed result store.

    Pass the handle to :func:`run_experiment`,
    :func:`repro.experiments.run_all`, chaos runs or campaigns to make
    them resumable; see ``docs/store.md`` for the key anatomy and
    invalidation rules.
    """
    return ResultStore(
        path, max_bytes=max_bytes, max_age_seconds=max_age_seconds
    )
