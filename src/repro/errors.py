"""Exception hierarchy for the PAROLE reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Subsystem-specific failures get
their own subclass to make intent explicit at raise sites and precise at
catch sites.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """A configuration value is out of its documented range."""


class CryptoError(ReproError):
    """A cryptographic-substrate operation failed (e.g. bad Merkle proof)."""


class ChainError(ReproError):
    """Base class for L1 chain failures."""


class InsufficientBalanceError(ChainError):
    """An account tried to spend more than it holds."""

    def __init__(self, account: str, needed: int, available: int) -> None:
        super().__init__(
            f"account {account!r} needs {needed} wei but only holds {available} wei"
        )
        self.account = account
        self.needed = needed
        self.available = available


class UnknownAccountError(ChainError):
    """An operation referenced an address that was never created."""


class BondError(ChainError):
    """A bond deposit/slash operation was invalid."""


class TokenError(ReproError):
    """Base class for ERC-20/ERC-721 token failures."""


class SupplyExhaustedError(TokenError):
    """A mint was attempted with zero remaining supply (violates Eq. 1)."""


class NotOwnerError(TokenError):
    """A transfer/burn referenced a token the sender does not own."""


class UnknownTokenError(TokenError):
    """A token id was referenced that has never been minted."""


class RollupError(ReproError):
    """Base class for L2 rollup failures."""


class MempoolError(RollupError):
    """Invalid mempool operation (duplicate tx, unknown tx, ...)."""


class MempoolStalledError(MempoolError):
    """``collect`` was called while the pool is stalled.

    Distinct from an empty result: the pool may hold pending
    transactions, but collection is unavailable until ``resume()``.
    Callers must check ``stalled`` (or catch this) instead of treating
    the round as drained.
    """


class InvalidTransactionError(RollupError):
    """A transaction failed its execution constraint (Eq. 1, 3 or 5)."""


class BatchError(RollupError):
    """A batch was malformed or committed out of order."""


class ChallengeError(RollupError):
    """A fraud-proof challenge was invalid or raised outside its window."""


class DRLError(ReproError):
    """Base class for deep-RL substrate failures."""


class NetworkShapeError(DRLError):
    """Tensor shapes fed to the neural network do not line up."""


class SolverError(ReproError):
    """A baseline reordering solver failed or hit its budget."""


class MarketError(ReproError):
    """NFT market / snapshot subsystem failure."""


class DefenseError(ReproError):
    """Defense-module failure."""


class FaultError(ReproError):
    """A fault plan was malformed or targeted an unknown component."""


class InvariantViolationError(ReproError):
    """A chaos-harness safety invariant failed after a round."""


class ParallelError(ReproError):
    """A task shipped to the execution fabric failed in a worker."""
