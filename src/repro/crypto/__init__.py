"""Cryptographic substrate: hashing, Merkle trees and key derivation.

This package provides the minimal primitives the rollup needs to compute
state roots and fraud proofs: deterministic SHA-256 hashing of structured
values, a binary Merkle tree with inclusion proofs, and deterministic
address derivation for simulated accounts.
"""

from .hashing import hash_bytes, hash_hex, hash_value, hash_pair
from .merkle import MerkleTree, MerkleProof, verify_proof
from .keys import KeyPair, derive_address, generate_keypair
from .trie import MerkleTrie, TrieProof

__all__ = [
    "hash_bytes",
    "hash_hex",
    "hash_value",
    "hash_pair",
    "MerkleTree",
    "MerkleProof",
    "verify_proof",
    "KeyPair",
    "derive_address",
    "generate_keypair",
    "MerkleTrie",
    "TrieProof",
]
