"""Deterministic key pairs and address derivation for simulated accounts.

Real Ethereum uses secp256k1; the attack does not depend on signature
algebra, only on stable, unique account identities, so we derive addresses
by hashing a private seed.  Signatures are HMAC-style digests sufficient
for the rollup to attribute transactions in the simulator.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

import numpy as np

from .hashing import hash_hex


@dataclass(frozen=True)
class KeyPair:
    """A simulated account key pair."""

    private_key: bytes
    address: str

    def sign(self, message: bytes) -> str:
        """Produce a deterministic signature over ``message``."""
        return hmac.new(self.private_key, message, hashlib.sha256).hexdigest()

    def verify(self, message: bytes, signature: str) -> bool:
        """Check a signature produced by :meth:`sign`."""
        expected = hmac.new(self.private_key, message, hashlib.sha256).hexdigest()
        return hmac.compare_digest(expected, signature)


def derive_address(private_key: bytes) -> str:
    """Derive a 0x-prefixed 20-byte address from a private key."""
    return "0x" + hash_hex(b"addr:" + private_key)[:40]


def generate_keypair(rng: np.random.Generator) -> KeyPair:
    """Generate a key pair from the supplied random generator."""
    private_key = rng.bytes(32)
    return KeyPair(private_key=private_key, address=derive_address(private_key))
