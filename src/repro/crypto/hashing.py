"""Deterministic hashing of structured Python values.

The rollup hashes transactions, state entries and Merkle nodes.  To make
state roots reproducible across runs and platforms we canonicalise values
before hashing: containers are serialised recursively with explicit type
tags so that, e.g., the string ``"1"`` and the integer ``1`` never collide.
"""

from __future__ import annotations

import hashlib
from typing import Any

from ..errors import CryptoError


def hash_bytes(data: bytes) -> bytes:
    """SHA-256 digest of raw bytes."""
    return hashlib.sha256(data).digest()


def hash_hex(data: bytes) -> str:
    """Hex-encoded SHA-256 digest of raw bytes."""
    return hashlib.sha256(data).hexdigest()


def _canonical(value: Any) -> bytes:
    """Serialise ``value`` into a canonical, type-tagged byte string."""
    if value is None:
        return b"N:"
    if isinstance(value, bool):
        # bool before int: bool is a subclass of int.
        return b"B:1" if value else b"B:0"
    if isinstance(value, int):
        return b"I:" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"F:" + repr(value).encode("ascii")
    if isinstance(value, str):
        encoded = value.encode("utf-8")
        return b"S:" + str(len(encoded)).encode("ascii") + b":" + encoded
    if isinstance(value, bytes):
        return b"Y:" + str(len(value)).encode("ascii") + b":" + value
    if isinstance(value, (list, tuple)):
        parts = [b"L:", str(len(value)).encode("ascii")]
        for item in value:
            inner = _canonical(item)
            parts.append(str(len(inner)).encode("ascii"))
            parts.append(b":")
            parts.append(inner)
        return b"".join(parts)
    if isinstance(value, dict):
        try:
            items = sorted(value.items(), key=lambda kv: _canonical(kv[0]))
        except TypeError as exc:  # unhashable / unorderable keys
            raise CryptoError(f"cannot canonicalise dict keys: {exc}") from exc
        return b"D:" + _canonical([list(kv) for kv in items])
    raise CryptoError(f"cannot hash value of type {type(value).__name__}")


def hash_value(value: Any) -> str:
    """Hex digest of any canonically-serialisable Python value."""
    return hash_hex(_canonical(value))


def hash_pair(left: str, right: str) -> str:
    """Hash two hex digests into a parent node digest (Merkle interior)."""
    return hash_hex(b"P:" + left.encode("ascii") + b"|" + right.encode("ascii"))
