"""A binary Merkle state trie with per-key inclusion proofs.

The flat state root of :func:`repro.rollup.fraud_proof.state_root`
commits to the whole state at once; disputing it requires re-executing
the batch.  Ethereum instead uses a Merkle-Patricia trie so a single
account's value can be proven against the root.  This module provides
the equivalent capability in simplified form: a binary trie keyed by
the bits of each key's digest, supporting

* ``put`` / ``get`` with structural sharing (persistent updates),
* a root hash that only depends on contents (insertion-order free),
* per-key :class:`TrieProof` inclusion proofs verified against the root.

:func:`repro.rollup.fraud_proof.account_state_root` builds the L2 state
into this trie so verifiers can dispute *one account's* balance rather
than the whole state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import CryptoError
from .hashing import hash_value

#: Depth of the key space: keys are mapped to this many digest bits.
KEY_BITS = 32

EMPTY_TRIE_DIGEST = hash_value("repro.trie.empty")


def _key_path(key: Any) -> Tuple[int, ...]:
    """Map any hashable key to a fixed-length bit path."""
    digest = hash_value(["trie-key", key])
    bits: List[int] = []
    for char in digest:
        nibble = int(char, 16)
        for shift in (3, 2, 1, 0):
            bits.append((nibble >> shift) & 1)
            if len(bits) == KEY_BITS:
                return tuple(bits)
    raise CryptoError("digest too short for key path")  # pragma: no cover


class _Node:
    """Internal trie node (leaf when ``key`` is set)."""

    __slots__ = ("left", "right", "key", "value", "digest")

    def __init__(
        self,
        left: Optional["_Node"] = None,
        right: Optional["_Node"] = None,
        key: Any = None,
        value: Any = None,
    ) -> None:
        self.left = left
        self.right = right
        self.key = key
        self.value = value
        if key is not None:
            self.digest = hash_value(["leaf", hash_value(key), hash_value(value)])
        else:
            left_digest = left.digest if left else EMPTY_TRIE_DIGEST
            right_digest = right.digest if right else EMPTY_TRIE_DIGEST
            self.digest = hash_value(["node", left_digest, right_digest])

    @property
    def is_leaf(self) -> bool:
        return self.key is not None


@dataclass(frozen=True)
class TrieProof:
    """Inclusion proof: sibling digests from root to the leaf."""

    key: Any
    value: Any
    siblings: Tuple[str, ...]  # one per level, root-side first

    def verify(self, root: str) -> bool:
        """Recompute the root from the leaf and siblings."""
        path = _key_path(self.key)
        digest = hash_value(
            ["leaf", hash_value(self.key), hash_value(self.value)]
        )
        # Walk back up: the last sibling pairs with the leaf.
        depth = len(self.siblings)
        for level in range(depth - 1, -1, -1):
            sibling = self.siblings[level]
            if path[level] == 0:
                digest = hash_value(["node", digest, sibling])
            else:
                digest = hash_value(["node", sibling, digest])
        return digest == root


class MerkleTrie:
    """Persistent binary trie over hashed key paths."""

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._items: Dict[Any, Any] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Any) -> bool:
        return key in self._items

    def __iter__(self) -> Iterator[Tuple[Any, Any]]:
        return iter(self._items.items())

    @property
    def root(self) -> str:
        """Root digest (stable under insertion order)."""
        return self._root.digest if self._root else EMPTY_TRIE_DIGEST

    # ------------------------------------------------------------------ #

    def put(self, key: Any, value: Any) -> None:
        """Insert or update a key."""
        path = _key_path(key)
        self._root = self._put(self._root, path, 0, key, value)
        self._items[key] = value

    def _put(
        self,
        node: Optional[_Node],
        path: Tuple[int, ...],
        depth: int,
        key: Any,
        value: Any,
    ) -> _Node:
        if depth == KEY_BITS:
            if node is not None and node.is_leaf and node.key != key:
                raise CryptoError(
                    f"key digest collision between {node.key!r} and {key!r}"
                )
            return _Node(key=key, value=value)
        if node is None:
            child = self._put(None, path, depth + 1, key, value)
            return _Node(left=child if path[depth] == 0 else None,
                         right=child if path[depth] == 1 else None)
        if node.is_leaf:
            raise CryptoError("unexpected interior leaf")  # pragma: no cover
        if path[depth] == 0:
            return _Node(
                left=self._put(node.left, path, depth + 1, key, value),
                right=node.right,
            )
        return _Node(
            left=node.left,
            right=self._put(node.right, path, depth + 1, key, value),
        )

    def get(self, key: Any, default: Any = None) -> Any:
        """Fetch a value (``default`` when missing)."""
        return self._items.get(key, default)

    def delete(self, key: Any) -> None:
        """Remove a key; missing keys raise :class:`CryptoError`."""
        if key not in self._items:
            raise CryptoError(f"key {key!r} not in trie")
        del self._items[key]
        # Rebuild from the remaining items: simple and obviously correct;
        # deletions are rare in the simulator's usage.
        rebuilt = MerkleTrie()
        for existing_key, value in self._items.items():
            rebuilt.put(existing_key, value)
        self._root = rebuilt._root

    def prove(self, key: Any) -> TrieProof:
        """Build an inclusion proof for an existing key."""
        if key not in self._items:
            raise CryptoError(f"key {key!r} not in trie")
        path = _key_path(key)
        siblings: List[str] = []
        node = self._root
        for depth in range(KEY_BITS):
            assert node is not None and not node.is_leaf
            if path[depth] == 0:
                sibling = node.right.digest if node.right else EMPTY_TRIE_DIGEST
                node = node.left
            else:
                sibling = node.left.digest if node.left else EMPTY_TRIE_DIGEST
                node = node.right
            siblings.append(sibling)
        return TrieProof(
            key=key, value=self._items[key], siblings=tuple(siblings)
        )

    @classmethod
    def from_items(cls, items: Dict[Any, Any]) -> "MerkleTrie":
        """Build a trie from a mapping."""
        trie = cls()
        for key, value in items.items():
            trie.put(key, value)
        return trie
