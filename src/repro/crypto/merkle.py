"""Binary Merkle tree with inclusion proofs.

The rollup's state root and the fraud proof both rest on this tree.  The
tree duplicates the final leaf at odd levels (Bitcoin-style) so any number
of leaves produces a well-defined root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

from ..errors import CryptoError
from .hashing import hash_pair, hash_value

#: Root of an empty tree, a fixed domain-separated digest.
EMPTY_ROOT = hash_value("repro.merkle.empty")


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof for a single leaf.

    ``path`` holds ``(sibling_digest, sibling_is_right)`` pairs from leaf
    level to root.
    """

    leaf: str
    index: int
    path: Tuple[Tuple[str, bool], ...]


class MerkleTree:
    """Binary Merkle tree over canonical hashes of arbitrary values."""

    def __init__(self, leaves: Sequence[Any]) -> None:
        self._leaf_digests: List[str] = [hash_value(leaf) for leaf in leaves]
        self._levels: List[List[str]] = self._build_levels(self._leaf_digests)

    @staticmethod
    def _build_levels(leaf_digests: Sequence[str]) -> List[List[str]]:
        if not leaf_digests:
            return [[EMPTY_ROOT]]
        levels = [list(leaf_digests)]
        current = list(leaf_digests)
        while len(current) > 1:
            if len(current) % 2 == 1:
                current = current + [current[-1]]
                levels[-1] = current
            parent = [
                hash_pair(current[i], current[i + 1])
                for i in range(0, len(current), 2)
            ]
            levels.append(parent)
            current = parent
        return levels

    def __len__(self) -> int:
        return len(self._leaf_digests)

    @property
    def root(self) -> str:
        """Hex digest of the tree root."""
        return self._levels[-1][0]

    @property
    def leaf_digests(self) -> Tuple[str, ...]:
        """Digests of the original leaves (without padding duplicates)."""
        return tuple(self._leaf_digests)

    def proof(self, index: int) -> MerkleProof:
        """Build an inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self._leaf_digests):
            raise CryptoError(
                f"leaf index {index} out of range [0, {len(self._leaf_digests)})"
            )
        path: List[Tuple[str, bool]] = []
        position = index
        for level in self._levels[:-1]:
            if position % 2 == 0:
                sibling_index = position + 1
                sibling_is_right = True
            else:
                sibling_index = position - 1
                sibling_is_right = False
            sibling = level[sibling_index] if sibling_index < len(level) else level[position]
            path.append((sibling, sibling_is_right))
            position //= 2
        return MerkleProof(
            leaf=self._leaf_digests[index], index=index, path=tuple(path)
        )


def verify_proof(root: str, proof: MerkleProof) -> bool:
    """Check a :class:`MerkleProof` against an expected root digest."""
    digest = proof.leaf
    for sibling, sibling_is_right in proof.path:
        if sibling_is_right:
            digest = hash_pair(digest, sibling)
        else:
            digest = hash_pair(sibling, digest)
    return digest == root
