"""A wired, timed rollup deployment scenario.

:class:`TimedRollupScenario` assembles the actors into a running
deployment: users submit a workload's transactions over time, the
mempool node buffers them, an (optionally adversarial) aggregator
collects on the Bedrock interval, and verifiers re-execute every batch
against its recorded pre-state.  The scenario reports end-to-end
inclusion latency, attack telemetry, and the reordering deadline misses
that motivate the Figure 11 solver comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..rollup.batch import Batch
from ..rollup.state import L2State
from ..workloads.generator import Workload
from .actors import (
    AggregatorActor,
    MempoolActor,
    TimedReorderer,
    UserActor,
    VerifierActor,
)
from .events import EventQueue
from .network import LatencyModel, SimNetwork


@dataclass
class ScenarioMetrics:
    """What a finished scenario reports."""

    batches_committed: int
    transactions_included: int
    attacks_fired: int
    missed_deadlines: int
    challenges: int
    mean_inclusion_latency: float
    simulated_duration: float


class TimedRollupScenario:
    """End-to-end timed deployment over one workload."""

    def __init__(
        self,
        workload: Workload,
        block_interval: float = 2.0,
        collect_size: Optional[int] = None,
        reorderer: Optional[TimedReorderer] = None,
        reorder_deadline: Optional[float] = None,
        submission_spacing: float = 0.1,
        latency: Optional[LatencyModel] = None,
        verifier_count: int = 2,
        rounds: Optional[int] = None,
        aggregator_count: int = 1,
        adversarial_index: Optional[int] = None,
        seed: int = 0,
        fault_plan: Optional[object] = None,
    ) -> None:
        self.workload = workload
        self.queue = EventQueue()
        self.network = SimNetwork(
            self.queue,
            latency=latency or LatencyModel(base=0.02, jitter=0.01),
            rng=np.random.default_rng(seed),
        )
        self._state = workload.pre_state.copy()
        self._batch_prestates: Dict[str, L2State] = {}

        self.mempool_actor = MempoolActor("mempool", self.network, self.queue)

        tx_count = len(workload.transactions)
        collect = collect_size or max(4, tx_count // 2)
        needed_rounds = rounds or (tx_count // collect + 2)

        def state_provider() -> L2State:
            return self._state.copy()

        def state_committer(new_state: L2State) -> None:
            self._state = new_state

        def record_batch(pre_state: L2State, batch: Batch) -> None:
            self._batch_prestates[batch.tx_root] = pre_state

        if aggregator_count < 1:
            raise ValueError("need at least one aggregator")
        evil = (
            adversarial_index
            if adversarial_index is not None
            else (0 if reorderer is not None else None)
        )
        self.aggregators = [
            AggregatorActor(
                "aggregator" if aggregator_count == 1 else f"aggregator-{i}",
                self.network,
                self.queue,
                mempool_node="mempool",
                state_provider=state_provider,
                state_committer=state_committer,
                block_interval=block_interval,
                collect_size=collect,
                reorderer=reorderer if i == evil else None,
                reorder_deadline=reorder_deadline,
                rounds=max(1, needed_rounds // aggregator_count + 1),
                batch_listener=record_batch,
                slot_index=i,
                slot_count=aggregator_count,
            )
            for i in range(aggregator_count)
        ]
        #: Backwards-compatible alias for the single-aggregator case.
        self.aggregator = self.aggregators[0]

        def prestate_for(batch: Batch) -> L2State:
            return self._batch_prestates[batch.tx_root]

        self.verifiers = [
            VerifierActor(
                f"verifier-{i}", self.network, self.queue, prestate_for
            )
            for i in range(verifier_count)
        ]

        schedule = [
            (index * submission_spacing, tx)
            for index, tx in enumerate(workload.transactions)
        ]
        self.user = UserActor(
            "users", self.network, self.queue, "mempool", schedule
        )

        #: Optional fault injection over the timed deployment: network
        #: partitions/heals/drop bursts, actor crash-restarts (by actor
        #: name) and mempool stalls from a seeded FaultPlan.
        self.injector = None
        if fault_plan is not None:
            from ..faults.injector import ChaosTargets, FaultInjector

            actors = {actor.name: actor for actor in self.aggregators}
            self.injector = FaultInjector(
                self.queue,
                ChaosTargets(
                    network=self.network,
                    mempool=self.mempool_actor.mempool,
                    aggregators=actors,
                    verifiers={v.name: v for v in self.verifiers},
                ),
            )
            self.injector.install(fault_plan)

    # ------------------------------------------------------------------ #

    @property
    def state(self) -> L2State:
        """Current canonical L2 state."""
        return self._state

    def run(self, until: Optional[float] = None) -> ScenarioMetrics:
        """Drive the simulation to quiescence and summarise."""
        self.queue.run(until=until)
        return self._metrics()

    def _metrics(self) -> ScenarioMetrics:
        included_hashes: Dict[str, float] = {}
        batches = 0
        attacks = 0
        missed = 0
        for actor in self.aggregators:
            batches += len(actor.batches)
            attacks += actor.attacks_fired
            missed += actor.missed_deadlines
            for committed_at, batch in actor.batches:
                for tx in batch.transactions:
                    included_hashes.setdefault(tx.tx_hash, committed_at)
        latencies = []
        for submitted_at, tx_hash in self.user.submitted:
            if tx_hash in included_hashes:
                latencies.append(included_hashes[tx_hash] - submitted_at)
        challenges = sum(len(v.challenges) for v in self.verifiers)
        return ScenarioMetrics(
            batches_committed=batches,
            transactions_included=len(included_hashes),
            attacks_fired=attacks,
            missed_deadlines=missed,
            challenges=challenges,
            mean_inclusion_latency=(
                float(np.mean(latencies)) if latencies else 0.0
            ),
            simulated_duration=self.queue.now,
        )
