"""Discrete-event network simulation of the rollup deployment.

The in-process :class:`~repro.rollup.node.RollupNode` executes rounds
atomically; this package adds *time*: users, aggregators and verifiers
become actors on a latency-modelled network, messages take time to
arrive, aggregation happens on Bedrock's fixed block interval, and the
PAROLE module's compute cost delays the adversarial aggregator's batch.
That delay is precisely why Section VII-F benchmarks DQN inference
against NLP solvers — an aggregator that misses its slot earns nothing.

* :mod:`repro.sim.events`   — the event queue;
* :mod:`repro.sim.network`  — latency model, message scheduling, drops;
* :mod:`repro.sim.actors`   — user / aggregator / verifier processes;
* :mod:`repro.sim.scenario` — a wired end-to-end timed deployment.
"""

from .events import Event, EventQueue
from .network import LatencyModel, Message, SimNetwork
from .actors import (
    Actor,
    AggregatorActor,
    UserActor,
    VerifierActor,
)
from .scenario import ScenarioMetrics, TimedRollupScenario

__all__ = [
    "Event",
    "EventQueue",
    "LatencyModel",
    "Message",
    "SimNetwork",
    "Actor",
    "AggregatorActor",
    "UserActor",
    "VerifierActor",
    "ScenarioMetrics",
    "TimedRollupScenario",
]
