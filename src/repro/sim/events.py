"""The discrete-event queue driving the timed simulation."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import ReproError


class SimError(ReproError):
    """Simulation-layer failure."""


@dataclass(order=True)
class Event:
    """One scheduled callback.

    Ordering is (time, sequence): ties resolve in scheduling order, so
    the simulation is fully deterministic.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")


class EventQueue:
    """A deterministic priority queue of timed events."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Events still scheduled."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Events executed so far."""
        return self._processed

    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        event = Event(
            time=self._now + delay,
            sequence=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> Optional[Event]:
        """Execute the next event; returns it, or None when empty."""
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._now = event.time
        event.action()
        self._processed += 1
        return event

    def run(
        self, until: Optional[float] = None, max_events: int = 1_000_000
    ) -> int:
        """Drain the queue (optionally up to time ``until``).

        Returns the number of events executed.  ``max_events`` guards
        against runaway self-scheduling loops.
        """
        executed = 0
        while self._heap and executed < max_events:
            if until is not None and self._heap[0].time > until:
                self._now = until
                break
            self.step()
            executed += 1
        if (
            executed >= max_events
            and self._heap
            and (until is None or self._heap[0].time <= until)
        ):
            # Only a genuine runaway: the budget is spent *and* runnable
            # events remain.  Draining in exactly ``max_events`` events is
            # normal exhaustion, not an error.
            raise SimError(f"exceeded {max_events} events; runaway loop?")
        return executed
