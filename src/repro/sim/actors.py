"""Simulation actors: users, aggregators and verifiers on the clock.

Each actor owns a name on the :class:`~repro.sim.network.SimNetwork` and
reacts to delivered messages.  The aggregator actor is where the paper's
timing story lives: on every Bedrock interval it collects its mempool
share and must finish (re)ordering *within the interval* — an
adversarial aggregator whose GENTRANSEQ compute budget exceeds the slot
falls back to the honest order for that round (a missed arbitrage, not
a missed batch).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..rollup.batch import Batch, build_batch
from ..rollup.mempool import BedrockMempool
from ..rollup.state import L2State
from ..rollup.transaction import NFTTransaction
from ..rollup.verifier import Verifier
from .events import EventQueue
from .network import Message, SimNetwork

#: A reordering strategy plus its simulated compute cost in time units.
TimedReorderer = Callable[
    [L2State, Sequence[NFTTransaction]], Tuple[Sequence[NFTTransaction], float]
]


class Actor:
    """Base class: a named node wired to the network and the clock."""

    def __init__(self, name: str, network: SimNetwork, queue: EventQueue) -> None:
        self.name = name
        self.network = network
        self.queue = queue
        #: Liveness flag for fault injection: messages delivered to a
        #: crashed actor are silently discarded (the node is down).
        self.alive = True
        network.register(name, self._receive)

    def crash(self) -> None:
        """Take the actor down; deliveries are ignored until restart."""
        self.alive = False

    def restart(self) -> None:
        """Bring the actor back online."""
        self.alive = True

    def _receive(self, message: Message) -> None:
        if self.alive:
            self.on_message(message)

    def on_message(self, message: Message) -> None:
        """Handle a delivered message (default: ignore)."""

    def send(self, recipient: str, kind: str, payload: Any = None) -> bool:
        """Convenience wrapper around the network."""
        return self.network.send(self.name, recipient, kind, payload)


class UserActor(Actor):
    """Submits a scripted stream of transactions to the mempool node."""

    def __init__(
        self,
        name: str,
        network: SimNetwork,
        queue: EventQueue,
        mempool_node: str,
        schedule: Sequence[Tuple[float, NFTTransaction]],
    ) -> None:
        super().__init__(name, network, queue)
        self.mempool_node = mempool_node
        self.submitted: List[Tuple[float, str]] = []
        for at_time, tx in schedule:
            queue.schedule(
                at_time,
                lambda tx=tx: self._submit(tx),
                label=f"user-submit:{name}",
            )

    def _submit(self, tx: NFTTransaction) -> None:
        self.send(self.mempool_node, "submit-tx", tx)
        self.submitted.append((self.queue.now, tx.tx_hash))


class MempoolActor(Actor):
    """Hosts Bedrock's private mempool as a network node."""

    def __init__(self, name: str, network: SimNetwork, queue: EventQueue) -> None:
        super().__init__(name, network, queue)
        self.mempool = BedrockMempool()
        self.submission_times: dict = {}

    def on_message(self, message: Message) -> None:
        if message.kind == "submit-tx":
            tx_hash = self.mempool.submit(message.payload)
            self.submission_times[tx_hash] = message.delivered_at
        elif message.kind == "collect":
            count = message.payload
            # A stalled pool serves no collection (the aggregator's slot
            # passes); only a genuinely empty pool answers with nothing
            # pending.
            if self.mempool.stalled or not len(self.mempool):
                selected: Tuple[NFTTransaction, ...] = ()
            else:
                selected = self.mempool.collect(min(count, len(self.mempool)))
            self.send(message.sender, "collected", tuple(selected))


class AggregatorActor(Actor):
    """Collects on the Bedrock interval, (re)orders, commits batches."""

    def __init__(
        self,
        name: str,
        network: SimNetwork,
        queue: EventQueue,
        mempool_node: str,
        state_provider: Callable[[], L2State],
        state_committer: Callable[[L2State], None],
        block_interval: float = 2.0,
        collect_size: int = 16,
        reorderer: Optional[TimedReorderer] = None,
        reorder_deadline: Optional[float] = None,
        rounds: int = 3,
        batch_listener: Optional[Callable[[L2State, Batch], None]] = None,
        slot_index: int = 0,
        slot_count: int = 1,
    ) -> None:
        super().__init__(name, network, queue)
        self.mempool_node = mempool_node
        self.state_provider = state_provider
        self.state_committer = state_committer
        self.batch_listener = batch_listener
        self.block_interval = block_interval
        self.collect_size = collect_size
        self.reorderer = reorderer
        self.reorder_deadline = (
            reorder_deadline if reorder_deadline is not None else block_interval
        )
        self.batches: List[Tuple[float, Batch]] = []
        self.missed_deadlines = 0
        self.attacks_fired = 0
        # Round-robin slots: aggregator k of C owns intervals k, k+C, ...
        for round_index in range(rounds):
            slot = round_index * slot_count + slot_index + 1
            queue.schedule(
                slot * block_interval,
                self._collect,
                label=f"aggregate:{name}",
            )

    def _collect(self) -> None:
        if not self.alive:
            return
        self.send(self.mempool_node, "collect", self.collect_size)

    def on_message(self, message: Message) -> None:
        if message.kind != "collected":
            return
        collected: Tuple[NFTTransaction, ...] = message.payload
        if not collected:
            return
        pre_state = self.state_provider()
        order: Sequence[NFTTransaction] = collected
        compute_delay = 0.0
        if self.reorderer is not None:
            candidate, cost = self.reorderer(pre_state, collected)
            if cost <= self.reorder_deadline:
                order = candidate
                compute_delay = cost
                if tuple(candidate) != tuple(collected):
                    self.attacks_fired += 1
            else:
                # Too slow for the slot: fall back to the honest order.
                self.missed_deadlines += 1
                compute_delay = self.reorder_deadline

        def commit() -> None:
            batch, trace = build_batch(self.name, pre_state, order)
            self.state_committer(trace.final_state)
            self.batches.append((self.queue.now, batch))
            if self.batch_listener is not None:
                self.batch_listener(pre_state, batch)
            self.network.broadcast(self.name, "batch-commit", batch)

        self.queue.schedule(compute_delay, commit, label=f"commit:{self.name}")


class VerifierActor(Actor):
    """Re-executes committed batches after a verification delay."""

    def __init__(
        self,
        name: str,
        network: SimNetwork,
        queue: EventQueue,
        pre_state_provider: Callable[[Batch], L2State],
        verification_delay: float = 0.5,
    ) -> None:
        super().__init__(name, network, queue)
        self.pre_state_provider = pre_state_provider
        self.verification_delay = verification_delay
        self.verifier = Verifier(name)
        self.reports: List[Tuple[float, bool]] = []
        self.challenges: List[Batch] = []

    def on_message(self, message: Message) -> None:
        if message.kind != "batch-commit":
            return
        batch: Batch = message.payload

        def inspect() -> None:
            pre_state = self.pre_state_provider(batch)
            report = self.verifier.inspect(batch, pre_state)
            self.reports.append((self.queue.now, report.should_challenge))
            if report.should_challenge:
                self.challenges.append(batch)

        self.queue.schedule(
            self.verification_delay, inspect, label=f"verify:{self.name}"
        )
