"""Latency-modelled message passing between simulation actors."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from .events import EventQueue, SimError


@dataclass(frozen=True)
class Message:
    """One network message."""

    sender: str
    recipient: str
    kind: str
    payload: Any
    sent_at: float
    delivered_at: float


@dataclass(frozen=True)
class LatencyModel:
    """Base-plus-jitter delivery latency.

    ``base`` is the floor, ``jitter`` the scale of an exponential tail —
    a standard WAN model: most messages arrive near the base, a few
    straggle.
    """

    base: float = 0.05
    jitter: float = 0.02

    def __post_init__(self) -> None:
        # A negative base would make SimNetwork.send crash far from the
        # cause with "cannot schedule into the past" — fail fast here.
        if not math.isfinite(self.base) or self.base < 0:
            raise SimError(
                f"latency base must be finite and >= 0, got {self.base}"
            )
        if not math.isfinite(self.jitter):
            raise SimError(f"latency jitter must be finite, got {self.jitter}")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one delivery latency."""
        if self.jitter <= 0:
            return self.base
        return self.base + float(rng.exponential(self.jitter))


class SimNetwork:
    """Message router with per-link latency, drops and partitions."""

    def __init__(
        self,
        queue: EventQueue,
        latency: Optional[LatencyModel] = None,
        rng: Optional[np.random.Generator] = None,
        drop_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise SimError("drop_rate must be in [0, 1)")
        self.queue = queue
        self.latency = latency or LatencyModel()
        self.rng = rng or np.random.default_rng(0)
        self.drop_rate = drop_rate
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self._partitioned: Set[frozenset] = set()
        self._link_latency: Dict[Tuple[str, str], LatencyModel] = {}
        self.delivered: List[Message] = []
        self.dropped: List[Tuple[str, str, str]] = []

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    def register(self, name: str, handler: Callable[[Message], None]) -> None:
        """Attach a node's message handler."""
        if name in self._handlers:
            raise SimError(f"node {name!r} already registered")
        self._handlers[name] = handler

    def set_drop_rate(self, rate: float) -> None:
        """Change the global drop rate (fault injection's burst-drop path)."""
        if not 0.0 <= rate < 1.0:
            raise SimError("drop_rate must be in [0, 1)")
        self.drop_rate = rate

    def set_link_latency(self, a: str, b: str, latency: LatencyModel) -> None:
        """Override the latency of one (undirected) link."""
        self._link_latency[(a, b)] = latency
        self._link_latency[(b, a)] = latency

    def partition(self, a: str, b: str) -> None:
        """Cut the (undirected) link between two nodes."""
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Restore a previously-cut link."""
        self._partitioned.discard(frozenset((a, b)))

    def _latency_for(self, sender: str, recipient: str) -> LatencyModel:
        return self._link_latency.get((sender, recipient), self.latency)

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #

    def send(
        self, sender: str, recipient: str, kind: str, payload: Any = None
    ) -> bool:
        """Schedule delivery of a message; returns False when dropped."""
        if recipient not in self._handlers:
            raise SimError(f"unknown recipient {recipient!r}")
        if frozenset((sender, recipient)) in self._partitioned:
            self.dropped.append((sender, recipient, kind))
            return False
        if self.drop_rate > 0 and self.rng.random() < self.drop_rate:
            self.dropped.append((sender, recipient, kind))
            return False
        delay = self._latency_for(sender, recipient).sample(self.rng)
        sent_at = self.queue.now

        def deliver() -> None:
            message = Message(
                sender=sender,
                recipient=recipient,
                kind=kind,
                payload=payload,
                sent_at=sent_at,
                delivered_at=self.queue.now,
            )
            self.delivered.append(message)
            self._handlers[recipient](message)

        self.queue.schedule(delay, deliver, label=f"{kind}:{sender}->{recipient}")
        return True

    def broadcast(
        self, sender: str, kind: str, payload: Any = None
    ) -> int:
        """Send to every registered node except the sender; returns the
        number of messages actually scheduled."""
        count = 0
        for name in self._handlers:
            if name != sender and self.send(sender, name, kind, payload):
                count += 1
        return count
