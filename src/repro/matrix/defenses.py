"""Sequencing defenses the matrix crosses against the strategy fleet.

A *defense* is the aggregator-side sequencing policy that constrains
what a hosted strategy can do.  Each defense gets three hooks around
the strategy invocation (see
:class:`~repro.rollup.aggregator.AdversarialAggregator`):

* :meth:`Defense.blind` — rewrite the :class:`MempoolView` the strategy
  sees (the encrypted mempool seals every transaction into a stand-in
  that keeps only fee metadata);
* :meth:`Defense.reveal` — map the strategy's action on a blinded view
  back to the real transactions before validation;
* :meth:`Defense.enforce` — the actual sequencing policy on a
  *validated* action: pass it through, force arrival order, re-run the
  fee auction, or probe it with the Section VIII detector and demote to
  honest when flagged.

Defenses never drop transactions: enforcement permutes, which keeps the
aggregator's conservation guarantees intact for the invariant checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..config import DefenseConfig, GenTranSeqConfig
from ..defense import MempoolGuard
from ..errors import ReproError
from ..rollup.aggregator import AdversarialAggregator
from ..rollup.ovm import OVM
from ..rollup.state import L2State
from ..rollup.transaction import NFTTransaction, TxKind, sort_by_fee
from ..strategies.base import BaseStrategy, MempoolView, StrategyAction
from ..telemetry import get_metrics


@dataclass(frozen=True)
class DefenseRuling:
    """What enforcement decided for one validated action."""

    sequence: Tuple[NFTTransaction, ...]
    detected: bool = False
    note: str = ""


class Defense:
    """Base defense: no sequencing policy (the adversary's paradise)."""

    name = "none"
    description = "no sequencing policy: validated actions execute as proposed"
    #: Whether :meth:`blind` seals the view (drives ``MempoolView.encrypted``).
    encrypts = False

    def blind(self, view: MempoolView) -> MempoolView:
        """Rewrite the view the strategy observes."""
        return view

    def reveal(
        self, action: StrategyAction, view: MempoolView
    ) -> StrategyAction:
        """Map an action on a blinded view back to real transactions."""
        return action

    def enforce(
        self,
        pre_state: L2State,
        collected: Tuple[NFTTransaction, ...],
        action: StrategyAction,
    ) -> DefenseRuling:
        """Apply the sequencing policy to one validated action."""
        return DefenseRuling(sequence=action.sequence)


class FCFSDefense(Defense):
    """Honest first-come-first-served: arrival order is law.

    The adversary's permutation is discarded entirely; its insertions
    are real transactions but queue *behind* every victim (they were
    "submitted" last), which breaks front-running by construction.
    """

    name = "fcfs"
    description = "first-come-first-served: arrival order, insertions at tail"

    def enforce(
        self,
        pre_state: L2State,
        collected: Tuple[NFTTransaction, ...],
        action: StrategyAction,
    ) -> DefenseRuling:
        arrival = tuple(
            sorted(collected, key=lambda tx: (tx.submitted_at, tx.nonce))
        )
        collected_hashes = {tx.tx_hash for tx in collected}
        tail = tuple(
            tx for tx in action.sequence if tx.tx_hash not in collected_hashes
        )
        return DefenseRuling(sequence=arrival + tail)


class FeeAuctionDefense(Defense):
    """Strict fee-priority auction: position must be bought.

    The final sequence is re-sorted by total fee (Bedrock's ordering
    key), so an insertion only front-runs victims it *outbids* — the
    adversary pays for priority instead of getting it for free.
    """

    name = "fee-auction"
    description = "strict fee-priority ordering: insertions must outbid"

    def enforce(
        self,
        pre_state: L2State,
        collected: Tuple[NFTTransaction, ...],
        action: StrategyAction,
    ) -> DefenseRuling:
        return DefenseRuling(sequence=sort_by_fee(action.sequence))


class EncryptedMempoolDefense(Defense):
    """Threshold-encrypted mempool: the strategy orders sealed envelopes.

    Every transaction in the view (batch *and* pending backlog) is
    replaced by a stand-in that preserves fee metadata and arrival stamp
    but hides sender, kind and recipient — the ``ShardedMempool``-backed
    private-ordering model.  Content-conditioned strategies (sandwich,
    backrun, PAROLE's IFU matcher) find nothing to target and degrade to
    honest; blind spam still goes through, which is exactly the
    leaderboard contrast the PAPERS.md threat models predict.
    """

    name = "encrypted"
    description = "sealed mempool view: strategies order encrypted envelopes"
    encrypts = True

    def __init__(self) -> None:
        self._reveal_map: Dict[str, NFTTransaction] = {}

    @staticmethod
    def _seal(tx: NFTTransaction, index: int, tag: str) -> NFTTransaction:
        # BURN needs no recipient and reads as price-*lowering*, so a
        # sealed envelope never looks like an attackable buy.
        return NFTTransaction(
            kind=TxKind.BURN,
            sender=f"sealed-{tag}-{index}",
            base_fee=tx.base_fee,
            priority_fee=tx.priority_fee,
            nonce=index,
            submitted_at=tx.submitted_at,
            label=f"sealed-{tag}-{index}",
        )

    def blind(self, view: MempoolView) -> MempoolView:
        sealed = tuple(
            self._seal(tx, index, "tx")
            for index, tx in enumerate(view.transactions)
        )
        self._reveal_map = {
            envelope.tx_hash: real
            for envelope, real in zip(sealed, view.transactions)
        }
        sealed_pending = tuple(
            self._seal(tx, index, "pending")
            for index, tx in enumerate(view.pending)
        )
        return MempoolView(
            transactions=sealed,
            pending=sealed_pending,
            encrypted=True,
            round_index=view.round_index,
        )

    def reveal(
        self, action: StrategyAction, view: MempoolView
    ) -> StrategyAction:
        mapping = self._reveal_map
        sequence = tuple(
            mapping.get(tx.tx_hash, tx) for tx in action.sequence
        )
        revert_marked = tuple(
            mapping[mark].tx_hash if mark in mapping else mark
            for mark in action.revert_marked
        )
        return StrategyAction(
            sequence=sequence,
            inserted=action.inserted,
            revert_marked=revert_marked,
            kinds=action.kinds,
        )


class GuardedDefense(Defense):
    """Section VIII detection: flagged proposals demote to honest order.

    Any round where the strategy proposed a change is probed with
    :class:`~repro.defense.MempoolGuard` (a GENTRANSEQ worst-case-profit
    probe over the collected batch plus the proposed insertions); a
    flagged round executes the honest collected order instead and counts
    as a detection.
    """

    name = "guarded"
    description = "Section VIII detector: flagged proposals demote to honest"

    def __init__(
        self,
        profit_threshold_eth: float = 0.01,
        probe_episodes: int = 2,
        probe_steps: int = 16,
        seed: int = 0,
    ) -> None:
        self.guard = MempoolGuard(
            config=DefenseConfig(
                profit_threshold_eth=profit_threshold_eth,
                fee_scaled_threshold=False,
                probe_episodes=probe_episodes,
            ),
            probe_config=GenTranSeqConfig(
                episodes=probe_episodes,
                steps_per_episode=probe_steps,
                seed=seed,
            ),
        )

    def enforce(
        self,
        pre_state: L2State,
        collected: Tuple[NFTTransaction, ...],
        action: StrategyAction,
    ) -> DefenseRuling:
        changed = bool(action.inserted) or action.sequence != collected
        if not changed:
            return DefenseRuling(sequence=action.sequence)
        report = self.guard.inspect(
            pre_state, list(collected) + list(action.inserted)
        )
        if report.flagged:
            return DefenseRuling(
                sequence=collected,
                detected=True,
                note=(
                    f"worst-case {report.worst_case_profit_eth:.4f} ETH "
                    f">= threshold {report.threshold_eth:.4f}"
                ),
            )
        return DefenseRuling(sequence=action.sequence)


class DefendedAggregator(AdversarialAggregator):
    """An adversarial aggregator whose host applies a sequencing defense.

    The defense wraps all three strategy hooks: the view is blinded
    before the strategy observes it, the action is revealed before the
    (unchanged) safety check, and enforcement runs after validation —
    so a defense can never be tricked into executing an invalid action.
    """

    def __init__(
        self,
        address: str,
        strategy: BaseStrategy,
        defense: Optional[Defense] = None,
        backlog: Optional[
            Callable[[], Tuple[NFTTransaction, ...]]
        ] = None,
        ovm: Optional[OVM] = None,
    ) -> None:
        super().__init__(address, strategy=strategy, ovm=ovm)
        self.defense = defense or Defense()
        self._backlog = backlog
        #: Rounds the defense flagged and demoted to the honest order.
        self.detections = 0

    def build_view(
        self, pre_state: L2State, collected: Tuple[NFTTransaction, ...]
    ) -> MempoolView:
        pending = tuple(self._backlog()) if self._backlog is not None else ()
        view = MempoolView(
            transactions=collected,
            pending=pending,
            encrypted=self.defense.encrypts,
            round_index=self._round_index,
        )
        return self.defense.blind(view)

    def reveal_action(
        self, action: StrategyAction, view: MempoolView
    ) -> StrategyAction:
        return self.defense.reveal(action, view)

    def apply_policy(
        self,
        pre_state: L2State,
        collected: Tuple[NFTTransaction, ...],
        action: StrategyAction,
    ) -> Tuple[NFTTransaction, ...]:
        ruling = self.defense.enforce(pre_state, collected, action)
        if ruling.detected:
            self.detections += 1
            get_metrics().counter(
                "matrix.detections", defense=self.defense.name
            ).inc()
        return ruling.sequence


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

DefenseFactory = Callable[[], Defense]


@dataclass(frozen=True)
class DefenseInfo:
    """One registry entry: name, description, factory."""

    name: str
    description: str
    factory: DefenseFactory


class DefenseRegistry:
    """Insertion-ordered name -> factory mapping (mirrors strategies)."""

    def __init__(self) -> None:
        self._entries: Dict[str, DefenseInfo] = {}

    def register(
        self, name: str, description: str, factory: DefenseFactory
    ) -> None:
        if not name:
            raise ReproError("defense name cannot be empty")
        self._entries[name] = DefenseInfo(
            name=name, description=description, factory=factory
        )

    def names(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    def list(self) -> List[DefenseInfo]:
        return list(self._entries.values())

    def info(self, name: str) -> DefenseInfo:
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self._entries)
            raise ReproError(
                f"unknown defense {name!r} (known: {known})"
            ) from None

    def create(self, name: str) -> Defense:
        """Build a fresh instance of the named defense."""
        return self.info(name).factory()

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[DefenseInfo]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


def default_defenses() -> DefenseRegistry:
    """A fresh registry holding every shipped defense."""
    registry = DefenseRegistry()
    registry.register("none", Defense.description, Defense)
    registry.register("fcfs", FCFSDefense.description, FCFSDefense)
    registry.register(
        "fee-auction", FeeAuctionDefense.description, FeeAuctionDefense
    )
    registry.register(
        "encrypted",
        EncryptedMempoolDefense.description,
        EncryptedMempoolDefense,
    )
    registry.register("guarded", GuardedDefense.description, GuardedDefense)
    return registry


#: The process-wide default registry.
DEFENSES: DefenseRegistry = default_defenses()
