"""The strategies × defenses × fault-plans matrix runner.

One *cell* is a complete, isolated rollup deployment — a seeded
:class:`~repro.streaming.traffic.TrafficGenerator`, a
:class:`~repro.streaming.mempool.ShardedMempool`, one
:class:`~repro.matrix.defenses.DefendedAggregator` hosting the cell's
strategy behind the cell's defense, an honest verifier — driven for a
fixed number of rounds with the chaos harness's
:class:`~repro.faults.InvariantChecker` sweeping after every round and
an optional :class:`~repro.faults.FaultPlan` applied through the
:class:`~repro.faults.FaultInjector` handlers.  Cells fan out over the
``--jobs`` fabric as ordinary tasks, so a
:class:`~repro.store.ResultStore` memoizes each cell individually and a
killed grid resumes from its last completed cell.

Determinism contract (same as :mod:`repro.streaming.pipeline`): every
field of :meth:`CellResult.deterministic_payload` is a pure function of
``(config, cell seed)``.  All cells consume the *identical* traffic
stream (seeded from ``config.seed``, not the cell seed) so leaderboard
rows are comparable: the only thing that varies across a row is the
adversary and the defense, never the victims.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import RollupConfig, _require
from ..crypto import hash_value
from ..errors import ReproError
from ..faults.injector import ChaosTargets, FaultInjector
from ..faults.invariants import InvariantChecker
from ..faults.plan import FaultEvent, FaultKind, FaultPlan
from ..parallel import Task, TaskRunner, get_runner, spawn_task_seeds
from ..rollup.node import RollupNode
from ..rollup.state import ExecutionMode
from ..rollup.verifier import Verifier
from ..sim.events import EventQueue
from ..store import ResultStore
from ..strategies.base import HonestStrategy
from ..strategies.registry import STRATEGIES, StrategyContext
from ..streaming.mempool import ShardedMempool
from ..streaming.traffic import StreamTrafficConfig, TrafficGenerator
from ..telemetry import get_metrics, span
from .defenses import DEFENSES, DefendedAggregator

#: Fault plans a matrix cell may run under ("none" = fault-free).
FAULT_PLAN_NAMES: Tuple[str, ...] = (
    "none",
    "commit-failure",
    "mempool-stall",
    "aggregator-crash",
)

_AGGREGATOR_ADDRESS = "matrix-agg"


def build_fault_plan(name: str, rounds: int) -> Optional[FaultPlan]:
    """The named seeded fault schedule, scaled to the cell's rounds.

    Every plan is recoverable within the cell: commit failures stay
    below the retry budget, stalls resume, crashes restart — the
    invariant checker must stay green through all of them.
    """
    if name == "none":
        return None
    mid = max(1, rounds // 2)
    later = min(mid + 1, max(rounds - 1, 1))
    if name == "commit-failure":
        return FaultPlan(events=(
            FaultEvent(
                time=float(mid), kind=FaultKind.COMMIT_FAILURE,
                target=_AGGREGATOR_ADDRESS, value=1,
            ),
        ))
    if name == "mempool-stall":
        return FaultPlan(events=(
            FaultEvent(time=float(mid), kind=FaultKind.MEMPOOL_STALL),
            FaultEvent(time=float(later), kind=FaultKind.MEMPOOL_RESUME),
        ))
    if name == "aggregator-crash":
        return FaultPlan(events=(
            FaultEvent(
                time=float(mid), kind=FaultKind.AGGREGATOR_CRASH,
                target=_AGGREGATOR_ADDRESS,
            ),
            FaultEvent(
                time=float(later), kind=FaultKind.AGGREGATOR_RESTART,
                target=_AGGREGATOR_ADDRESS,
            ),
        ))
    known = ", ".join(FAULT_PLAN_NAMES)
    raise ReproError(f"unknown fault plan {name!r} (known: {known})")


@dataclass(frozen=True)
class MatrixConfig:
    """One strategies × defenses × fault-plans grid."""

    strategies: Tuple[str, ...] = tuple(STRATEGIES.names())
    defenses: Tuple[str, ...] = tuple(DEFENSES.names())
    #: Fault plans crossed against ``fault_strategy`` under the "none"
    #: defense (beyond the implicit fault-free run of every cell).
    fault_plans: Tuple[str, ...] = (
        "commit-failure", "mempool-stall", "aggregator-crash",
    )
    fault_strategy: str = "revert-spam"
    rounds: int = 3
    batch_size: int = 8
    submit_per_batch: int = 10
    shards: int = 2
    num_users: int = 48
    num_ifus: int = 2
    max_supply: int = 256
    seed: int = 0
    #: Effort preset name handed to strategy factories ("quick"/"full").
    preset: str = "quick"

    def __post_init__(self) -> None:
        object.__setattr__(self, "strategies", tuple(self.strategies))
        object.__setattr__(self, "defenses", tuple(self.defenses))
        object.__setattr__(self, "fault_plans", tuple(self.fault_plans))
        _require(len(self.strategies) >= 1, "need at least one strategy")
        _require(len(self.defenses) >= 1, "need at least one defense")
        _require(self.rounds >= 1, "rounds must be positive")
        _require(self.batch_size >= 1, "batch_size must be positive")
        _require(self.submit_per_batch >= 1,
                 "submit_per_batch must be positive")
        _require(self.shards >= 1, "shards must be at least 1")
        _require(self.num_users >= 2, "need at least two users")
        for name in self.strategies:
            _require(name in STRATEGIES, f"unknown strategy {name!r}")
        for name in self.defenses:
            _require(name in DEFENSES, f"unknown defense {name!r}")
        for plan in self.fault_plans:
            _require(plan in FAULT_PLAN_NAMES,
                     f"unknown fault plan {plan!r}")
        if self.fault_plans:
            _require(
                self.fault_strategy in self.strategies,
                "fault_strategy must be one of the grid's strategies",
            )

    def cells(self) -> Tuple[Tuple[str, str, str], ...]:
        """Every (strategy, defense, fault_plan) cell, in grid order."""
        grid = [
            (strategy, defense, "none")
            for strategy in self.strategies
            for defense in self.defenses
        ]
        grid.extend(
            (self.fault_strategy, "none", plan)
            for plan in self.fault_plans
            if plan != "none"
        )
        return tuple(grid)

    def traffic_config(self) -> StreamTrafficConfig:
        return StreamTrafficConfig(
            num_users=self.num_users,
            num_ifus=self.num_ifus,
            max_supply=self.max_supply,
            seed=self.seed,
        )


@dataclass(frozen=True)
class CellResult:
    """Everything one (strategy, defense, fault plan) cell produced."""

    strategy: str
    defense: str
    fault_plan: str
    seed: int
    rounds: int
    submitted: int
    included: int
    pending: int
    batches: int
    #: Wealth delta of the strategy's beneficiaries over the cell.
    wealth_delta_eth: float
    #: The same beneficiaries' wealth delta in an honest counterfactual
    #: of this cell (same traffic, same defense, honest ordering) — the
    #: organic drift an attack must be measured against.
    baseline_wealth_delta_eth: float
    #: ``wealth_delta - baseline``: what the attack itself moved.
    attack_lift_eth: float
    #: Total fees of every adversary-inserted tx included in a batch
    #: (the modeled L1 inclusion cost of the insertions).
    adversary_fees_eth: float
    #: Subset of the above: fees of revert-marked losers that were
    #: included but did not execute — the price of spamming priority.
    revert_fees_eth: float
    #: ``attack_lift - adversary_fees``: what the strategy kept.
    net_profit_eth: float
    inserted_attempted: int
    inserted_landed: int
    revert_marked_landed: int
    reverts: int
    detections: int
    rounds_proposed: int
    rounds_attacked: int
    actions_rejected: int
    commit_retries: int
    stalled_rounds: int
    faults_applied: Tuple[str, ...]
    violations: Tuple[str, ...]
    state_root: str
    order_digest: str

    @property
    def detection_rate(self) -> float:
        """Flagged fraction of the rounds the strategy proposed a change."""
        if self.rounds_proposed == 0:
            return 0.0
        return self.detections / self.rounds_proposed

    @property
    def revert_rate(self) -> float:
        """Reverted fraction of the revert-marked txs that landed."""
        if self.revert_marked_landed == 0:
            return 0.0
        return self.reverts / self.revert_marked_landed

    def deterministic_payload(self) -> dict:
        """JSON-able view; floats rounded, fully deterministic."""
        return {
            "strategy": self.strategy,
            "defense": self.defense,
            "fault_plan": self.fault_plan,
            "seed": self.seed,
            "rounds": self.rounds,
            "submitted": self.submitted,
            "included": self.included,
            "pending": self.pending,
            "batches": self.batches,
            "wealth_delta_eth": round(self.wealth_delta_eth, 9),
            "baseline_wealth_delta_eth": round(
                self.baseline_wealth_delta_eth, 9
            ),
            "attack_lift_eth": round(self.attack_lift_eth, 9),
            "adversary_fees_eth": round(self.adversary_fees_eth, 9),
            "revert_fees_eth": round(self.revert_fees_eth, 9),
            "net_profit_eth": round(self.net_profit_eth, 9),
            "inserted_attempted": self.inserted_attempted,
            "inserted_landed": self.inserted_landed,
            "revert_marked_landed": self.revert_marked_landed,
            "reverts": self.reverts,
            "detections": self.detections,
            "rounds_proposed": self.rounds_proposed,
            "rounds_attacked": self.rounds_attacked,
            "actions_rejected": self.actions_rejected,
            "detection_rate": round(self.detection_rate, 9),
            "revert_rate": round(self.revert_rate, 9),
            "commit_retries": self.commit_retries,
            "stalled_rounds": self.stalled_rounds,
            "faults_applied": list(self.faults_applied),
            "violations": list(self.violations),
            "state_root": self.state_root,
            "order_digest": self.order_digest,
        }


def _honest_baseline_delta(
    config: MatrixConfig,
    defense_name: str,
    addresses: Tuple[str, ...],
) -> float:
    """Wealth delta of ``addresses`` in an honest run of this cell.

    Same traffic stream, same defense, same round schedule — but the
    aggregator hosts :class:`HonestStrategy`, so the delta is the purely
    organic drift of those accounts (IFUs trade on their own; adversary
    accounts sit idle).  Subtracting it isolates the attack's own lift.
    """
    if not addresses:
        return 0.0
    traffic = TrafficGenerator(config.traffic_config(), seed=config.seed)
    mempool = ShardedMempool(shards=config.shards)
    cell_state = traffic.pre_state.copy()
    cell_state.mode = ExecutionMode.STRICT
    node = RollupNode(
        l2_state=cell_state,
        config=RollupConfig(
            aggregator_mempool_size=config.batch_size,
            challenge_period_blocks=2,
        ),
        mempool=mempool,
    )
    node.add_aggregator(
        DefendedAggregator(
            _AGGREGATOR_ADDRESS,
            HonestStrategy(),
            DEFENSES.create(defense_name),
            backlog=mempool.pending,
        )
    )
    node.add_verifier(Verifier("matrix-ver"))
    before = sum(node.l2_state.wealth(address) for address in addresses)
    for _ in range(config.rounds):
        for tx in traffic.next_batch(config.submit_per_batch):
            node.submit(tx)
        node.run_round(config.batch_size)
        node.finalize_ready_batches()
    after = sum(node.l2_state.wealth(address) for address in addresses)
    return after - before


def _run_cell(
    config: MatrixConfig,
    strategy_name: str,
    defense_name: str,
    fault_plan_name: str,
    seed: Optional[int] = None,
) -> CellResult:
    """Drive one isolated deployment for ``config.rounds`` rounds.

    Module-level (and canonically-encodable arguments) so the process
    backend can pickle it and the result store can memoize it per cell.
    """
    cell_seed = config.seed if seed is None else int(seed)
    with span(
        "matrix.cell",
        strategy=strategy_name,
        defense=defense_name,
        fault_plan=fault_plan_name,
    ):
        # All cells share one traffic stream: seeded from config.seed so
        # leaderboard rows face identical victims.  The cell seed only
        # parameterizes the strategy (e.g. its DQN training).
        traffic = TrafficGenerator(config.traffic_config(), seed=config.seed)
        mempool = ShardedMempool(shards=config.shards)
        # STRICT execution, exactly like the streaming lanes: fee-
        # priority collection can break generation order, and a strict
        # sequencer records infeasible transactions as skipped — which
        # is also what makes revert-spam losers *revert*.
        cell_state = traffic.pre_state.copy()
        cell_state.mode = ExecutionMode.STRICT
        node = RollupNode(
            l2_state=cell_state,
            config=RollupConfig(
                aggregator_mempool_size=config.batch_size,
                challenge_period_blocks=2,
            ),
            mempool=mempool,
        )
        strategy = STRATEGIES.create(
            strategy_name,
            StrategyContext(
                ifus=traffic.ifus,
                seed=cell_seed,
                preset=config.preset,
                initial_price=cell_state.unit_price,
            ),
        )
        defense = DEFENSES.create(defense_name)
        aggregator = DefendedAggregator(
            _AGGREGATOR_ADDRESS, strategy, defense, backlog=mempool.pending
        )
        node.add_aggregator(aggregator)
        node.add_verifier(Verifier("matrix-ver"))
        # Fund the strategy's accounts *before* the invariant checker
        # snapshots its conservation baselines.
        for account in strategy.accounts():
            if account.balance_eth > 0:
                node.fund_and_deposit(account.address, account.balance_eth)
        checker = InvariantChecker(node)
        injector = FaultInjector(
            EventQueue(),
            ChaosTargets(
                mempool=mempool,
                aggregators={aggregator.address: aggregator},
                inject_commit_failures=node.inject_commit_failures,
            ),
        )
        plan = build_fault_plan(fault_plan_name, config.rounds)
        events_by_round: Dict[int, List[FaultEvent]] = {}
        if plan is not None:
            for event in plan.events:
                events_by_round.setdefault(int(event.time), []).append(event)

        beneficiaries = strategy.beneficiaries()
        wealth_before = sum(
            node.l2_state.wealth(address) for address in beneficiaries
        )
        violations: List[str] = []
        committed_orders: List[Tuple[str, ...]] = []
        inserted_landed: set = set()
        marked_hashes: set = set()
        marked_fees: Dict[str, float] = {}
        adversary_fees = 0.0
        reverts = 0
        revert_fees = 0.0
        revert_marked_landed = 0
        stalled_rounds = 0
        commit_retries = 0

        for round_index in range(config.rounds):
            for event in events_by_round.get(round_index, ()):
                injector.apply(event)
            for tx in traffic.next_batch(config.submit_per_batch):
                checker.note_accepted(node.submit(tx))
            report = node.run_round(config.batch_size)
            if report.stalled:
                stalled_rounds += 1
            commit_retries += len(report.commit_retries)
            action = aggregator.last_action
            if action is not None:
                for mark in action.revert_marked:
                    marked_hashes.add(mark)
                for tx in action.inserted:
                    marked_fees[tx.tx_hash] = tx.total_fee
            for result in report.results:
                collected_hashes = {
                    tx.tx_hash for tx in result.original_order
                }
                for tx in result.batch.transactions:
                    if (
                        tx.tx_hash not in collected_hashes
                        and tx.tx_hash not in inserted_landed
                    ):
                        # Adversary-authored insertion landing on chain:
                        # legitimize it for the conjured-tx invariant and
                        # charge its inclusion fee to the adversary.
                        inserted_landed.add(tx.tx_hash)
                        checker.note_accepted(tx.tx_hash)
                        adversary_fees += tx.total_fee
                for step in result.trace.steps:
                    tx_hash = step.tx.tx_hash
                    if tx_hash in marked_hashes:
                        revert_marked_landed += 1
                        if not step.executed:
                            reverts += 1
                            revert_fees += marked_fees.get(
                                tx_hash, step.tx.total_fee
                            )
                committed_orders.append(
                    tuple(tx.tx_hash for tx in result.batch.transactions)
                )
            checker.on_report(report)
            node.finalize_ready_batches()
            sweep = checker.check(round_index)
            for violation in sweep.violations:
                violations.append(f"round {round_index}: {violation}")

        wealth_after = sum(
            node.l2_state.wealth(address) for address in beneficiaries
        )
        wealth_delta = wealth_after - wealth_before
        baseline_delta = _honest_baseline_delta(
            config, defense_name, beneficiaries
        )
        attack_lift = wealth_delta - baseline_delta
        get_metrics().counter(
            "matrix.cells_completed", strategy=strategy_name,
            defense=defense_name,
        ).inc()
        return CellResult(
            strategy=strategy_name,
            defense=defense_name,
            fault_plan=fault_plan_name,
            seed=cell_seed,
            rounds=config.rounds,
            submitted=traffic.generated,
            included=checker.included_surviving_count(),
            pending=len(mempool),
            batches=len(committed_orders),
            wealth_delta_eth=wealth_delta,
            baseline_wealth_delta_eth=baseline_delta,
            attack_lift_eth=attack_lift,
            adversary_fees_eth=adversary_fees,
            revert_fees_eth=revert_fees,
            net_profit_eth=attack_lift - adversary_fees,
            inserted_attempted=aggregator.inserted_total,
            inserted_landed=len(inserted_landed),
            revert_marked_landed=revert_marked_landed,
            reverts=reverts,
            detections=aggregator.detections,
            rounds_proposed=aggregator.rounds_proposed,
            rounds_attacked=aggregator.rounds_attacked,
            actions_rejected=aggregator.actions_rejected,
            commit_retries=commit_retries,
            stalled_rounds=stalled_rounds,
            faults_applied=tuple(
                description for _, description in injector.applied
            ),
            violations=tuple(violations),
            state_root=node.current_state_root(),
            order_digest=hash_value(
                [list(order) for order in committed_orders]
            ),
        )


@dataclass(frozen=True)
class MatrixReport:
    """Aggregate of every cell: the leaderboard."""

    config: MatrixConfig
    cells: Tuple[CellResult, ...]

    @property
    def ok(self) -> bool:
        """Zero invariant violations across every cell."""
        return not self.total_violations

    @property
    def total_violations(self) -> Tuple[str, ...]:
        return tuple(
            f"{cell.strategy}/{cell.defense}/{cell.fault_plan}: {violation}"
            for cell in self.cells
            for violation in cell.violations
        )

    def leaderboard(self) -> Tuple[CellResult, ...]:
        """Cells ranked by net profit (ties broken by grid names)."""
        return tuple(
            sorted(
                self.cells,
                key=lambda cell: (
                    -round(cell.net_profit_eth, 9),
                    cell.strategy,
                    cell.defense,
                    cell.fault_plan,
                ),
            )
        )

    def deterministic_payload(self) -> dict:
        """Everything reproducible for ``(config, seed)`` — no wall clock."""
        return {
            "config": dataclasses.asdict(self.config),
            "cells": [cell.deterministic_payload() for cell in self.cells],
            "leaderboard": [
                {
                    "strategy": cell.strategy,
                    "defense": cell.defense,
                    "fault_plan": cell.fault_plan,
                    "net_profit_eth": round(cell.net_profit_eth, 9),
                    "detection_rate": round(cell.detection_rate, 9),
                    "revert_rate": round(cell.revert_rate, 9),
                }
                for cell in self.leaderboard()
            ],
            "violations": list(self.total_violations),
        }

    def deterministic_json(self) -> str:
        """Canonical JSON — byte-identical across ``--jobs`` and reruns."""
        return json.dumps(
            self.deterministic_payload(), sort_keys=True, indent=2
        )

    def render(self) -> str:
        """The human-readable leaderboard table."""
        lines = [
            f"strategy x defense matrix: {len(self.cells)} cells, "
            f"{self.config.rounds} rounds each "
            f"[{'OK' if self.ok else 'VIOLATIONS'}]",
            f"  {'strategy':<20} {'defense':<12} {'faults':<17} "
            f"{'profit':>10} {'fees':>8} {'detect':>7} {'revert':>7}",
        ]
        for cell in self.leaderboard():
            lines.append(
                f"  {cell.strategy:<20} {cell.defense:<12} "
                f"{cell.fault_plan:<17} "
                f"{cell.net_profit_eth:>+10.4f} "
                f"{cell.adversary_fees_eth:>8.3f} "
                f"{cell.detection_rate:>6.0%} "
                f"{cell.revert_rate:>6.0%}"
            )
        for violation in self.total_violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


def run_matrix(
    config: Optional[MatrixConfig] = None,
    runner: Optional[TaskRunner] = None,
    store: Optional[ResultStore] = None,
) -> MatrixReport:
    """Run every cell of the grid and aggregate the leaderboard.

    ``runner`` is the parallel fabric backend (``get_runner(jobs)``);
    cells are independent tasks, so the report is byte-identical for
    any jobs/workers/schedule value.  With a ``store`` (or a runner
    already carrying one) each cell is memoized individually.
    """
    config = config or MatrixConfig()
    runner = runner or get_runner(None)
    cells = config.cells()
    seeds = spawn_task_seeds(config.seed, len(cells))
    tasks = [
        Task(
            fn=_run_cell,
            args=(config, strategy, defense, plan),
            seed=seeds[index],
            label=f"matrix-{strategy}-{defense}-{plan}",
        )
        for index, (strategy, defense, plan) in enumerate(cells)
    ]
    previous_store = getattr(runner, "store", None)
    if store is not None:
        runner.store = store
    try:
        with span("matrix.run", cells=len(tasks)):
            results = tuple(runner.map(tasks))
    finally:
        runner.store = previous_store
    return MatrixReport(config=config, cells=results)


# --------------------------------------------------------------------- #
# Experiment-registry adapter (uniform (preset, seed, runner) interface)
# --------------------------------------------------------------------- #


def matrix_config_for(
    preset_name: str,
    seed: int = 0,
    strategies: Optional[Tuple[str, ...]] = None,
    defenses: Optional[Tuple[str, ...]] = None,
    fault_plans: Optional[Tuple[str, ...]] = None,
) -> MatrixConfig:
    """The grid a given effort preset runs (overridably)."""
    base: Dict[str, object] = dict(seed=seed, preset=preset_name)
    if preset_name == "full":
        base.update(rounds=5, batch_size=10, submit_per_batch=14)
    if strategies is not None:
        base["strategies"] = tuple(strategies)
    if defenses is not None:
        base["defenses"] = tuple(defenses)
    if fault_plans is not None:
        base["fault_plans"] = tuple(fault_plans)
    if "strategies" in base:
        chosen = base["strategies"]
        default_fault = MatrixConfig.__dataclass_fields__[
            "fault_strategy"
        ].default
        if default_fault not in chosen:
            base["fault_strategy"] = chosen[0]
    return MatrixConfig(**base)  # type: ignore[arg-type]


def run_matrix_experiment(preset, seed: int, runner) -> MatrixReport:
    """Registry entry point: ``preset`` is an EffortPreset."""
    return run_matrix(
        config=matrix_config_for(preset.name, seed=seed), runner=runner
    )


def render_matrix(report: MatrixReport) -> str:
    return report.render()


def matrix_to_json(report: MatrixReport) -> dict:
    return report.deterministic_payload()
