"""Strategies × defenses × fault-plans leaderboard (``parole matrix``).

The matrix runner crosses every registered adversary strategy
(:mod:`repro.strategies`) against every sequencing defense
(:mod:`repro.matrix.defenses`) — and, for one designated strategy, a set
of chaos-harness fault plans — in isolated rollup deployments, with the
invariant checker sweeping every round.  The output is a deterministic
profit / detection-rate / revert-rate leaderboard whose canonical JSON
is byte-identical across ``--jobs`` values and cold/warm result stores.
"""

from .defenses import (
    DEFENSES,
    DefendedAggregator,
    Defense,
    DefenseInfo,
    DefenseRegistry,
    DefenseRuling,
    EncryptedMempoolDefense,
    FCFSDefense,
    FeeAuctionDefense,
    GuardedDefense,
    default_defenses,
)
from .runner import (
    FAULT_PLAN_NAMES,
    CellResult,
    MatrixConfig,
    MatrixReport,
    build_fault_plan,
    matrix_config_for,
    matrix_to_json,
    render_matrix,
    run_matrix,
    run_matrix_experiment,
)

__all__ = [
    "DEFENSES",
    "DefendedAggregator",
    "Defense",
    "DefenseInfo",
    "DefenseRegistry",
    "DefenseRuling",
    "EncryptedMempoolDefense",
    "FCFSDefense",
    "FeeAuctionDefense",
    "GuardedDefense",
    "default_defenses",
    "FAULT_PLAN_NAMES",
    "CellResult",
    "MatrixConfig",
    "MatrixReport",
    "build_fault_plan",
    "matrix_config_for",
    "matrix_to_json",
    "render_matrix",
    "run_matrix",
    "run_matrix_experiment",
]
