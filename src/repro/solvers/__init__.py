"""Baseline re-ordering solvers (Figure 11's comparison set).

The paper contrasts DQN inference with the commercial NLP solvers APOPT,
MINOS and SNOPT.  Those are closed-source, so this package provides
open stand-ins with the same job description — solve the non-linear
transaction-ordering problem — and the same asymptotic cost behaviour:
continuous-relaxation NLP solvers built on scipy (time/memory grow
super-linearly with mempool size) plus combinatorial baselines
(exhaustive, branch-and-bound, annealing, hill-climbing, greedy).
"""

from .base import ReorderProblem, ReorderSolver, SolverResult
from .exhaustive import ExhaustiveSolver, BranchAndBoundSolver
from .annealing import SimulatedAnnealingSolver
from .hill_climb import HillClimbSolver, RandomRestartHillClimbSolver
from .greedy import GreedyInsertionSolver
from .nlp_relaxation import (
    ApoptLikeSolver,
    MinosLikeSolver,
    SnoptLikeSolver,
    RelaxationSolver,
)
from .dqn_solver import DQNInferenceSolver
from .profiling import ProfiledRun, profile_solver

__all__ = [
    "ReorderProblem",
    "ReorderSolver",
    "SolverResult",
    "ExhaustiveSolver",
    "BranchAndBoundSolver",
    "SimulatedAnnealingSolver",
    "HillClimbSolver",
    "RandomRestartHillClimbSolver",
    "GreedyInsertionSolver",
    "ApoptLikeSolver",
    "MinosLikeSolver",
    "SnoptLikeSolver",
    "RelaxationSolver",
    "DQNInferenceSolver",
    "ProfiledRun",
    "profile_solver",
]
