"""Greedy insertion heuristic.

Builds an order one transaction at a time, always inserting the next
(original-order) transaction at the position that maximises the IFU
objective of the partial prefix.  Fast and deterministic, but blind to
cross-transaction interactions — a useful "what a naive bot would do"
baseline.

Every insertion frontier (all positions the next transaction could take)
is scored as one candidate set through the columnar batch kernel; the
position scan keeps the serial loop's order and strict-improvement
tie-break, so the constructed order is byte-identical to the
one-score-per-position version.
"""

from __future__ import annotations

import time
from typing import List

from .base import ReorderProblem, ReorderSolver, SolverResult


class GreedyInsertionSolver(ReorderSolver):
    """Insert each transaction at its myopically-best position."""

    name = "greedy-insertion"

    def solve(self, problem: ReorderProblem) -> SolverResult:
        """Greedy construction followed by a final feasibility check."""
        started = time.perf_counter()
        order: List[int] = []
        for tx_index in range(problem.size):
            # Score the candidate prefix padded with the untouched
            # suffix so every evaluation covers a full permutation —
            # one batch-kernel call per insertion frontier.
            frontier = []
            for position in range(len(order) + 1):
                candidate = order[:position] + [tx_index] + order[position:]
                suffix = [k for k in range(problem.size) if k not in candidate]
                frontier.append(tuple(candidate + suffix))
            values = problem.score_many(frontier)
            best_position = len(order)
            best_value = float("-inf")
            for position, value in enumerate(values):
                if value > best_value:
                    best_value = value
                    best_position = position
            order.insert(best_position, tx_index)
        final_value = problem.score(order)
        elapsed = time.perf_counter() - started
        return self._result(problem, tuple(order), final_value, elapsed)
