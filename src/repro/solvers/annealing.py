"""Simulated annealing over the swap neighbourhood.

A strong combinatorial baseline: proposes random pairwise swaps (the
same action space as the DQN), accepting worsening moves with a
temperature-controlled probability.  Infeasible orders score ``-inf``
and are always rejected.
"""

from __future__ import annotations

import math
import time
from typing import Tuple

import numpy as np

from .base import ReorderProblem, ReorderSolver, SolverResult


class SimulatedAnnealingSolver(ReorderSolver):
    """Classic annealing with geometric cooling."""

    name = "simulated-annealing"

    def __init__(
        self,
        iterations: int = 2000,
        initial_temperature: float = 0.5,
        cooling: float = 0.995,
        seed: int = 0,
    ) -> None:
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.seed = seed

    def solve(self, problem: ReorderProblem) -> SolverResult:
        """Anneal from the identity permutation."""
        rng = np.random.default_rng(self.seed)
        started = time.perf_counter()
        current = list(problem.identity_order())
        current_value = problem.score(current)
        best_order: Tuple[int, ...] = tuple(current)
        best_value = current_value
        temperature = self.initial_temperature
        accepted = 0
        for _ in range(self.iterations):
            i, j = rng.choice(problem.size, size=2, replace=False)
            current[i], current[j] = current[j], current[i]
            value = problem.score(current)
            delta = value - current_value
            take = delta >= 0 or (
                value != float("-inf")
                and temperature > 1e-12
                and rng.random() < math.exp(delta / temperature)
            )
            if take:
                current_value = value
                accepted += 1
                if value > best_value:
                    best_value = value
                    best_order = tuple(current)
            else:
                current[i], current[j] = current[j], current[i]
            temperature *= self.cooling
        elapsed = time.perf_counter() - started
        return self._result(
            problem,
            best_order,
            best_value,
            elapsed,
            metadata={"accepted": float(accepted)},
        )
