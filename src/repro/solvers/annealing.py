"""Simulated annealing over the swap neighbourhood.

A strong combinatorial baseline: proposes random pairwise swaps (the
same action space as the DQN), accepting worsening moves with a
temperature-controlled probability.  Infeasible orders score ``-inf``
and are always rejected.

With ``restarts > 1`` the solver runs that many independent annealing
chains in lockstep and scores every chain's proposal per iteration in
one columnar batch-kernel call (see ``ReorderProblem.score_many``).
Each chain owns its own RNG stream (``seed + chain``), so chain 0 is
byte-identical to the single-chain solver — extra restarts only widen
the search, they never perturb it.
"""

from __future__ import annotations

import math
import time
from typing import List, Tuple

import numpy as np

from ..telemetry import span
from .base import ReorderProblem, ReorderSolver, SolverResult


class SimulatedAnnealingSolver(ReorderSolver):
    """Classic annealing with geometric cooling (optionally restarted)."""

    name = "simulated-annealing"

    def __init__(
        self,
        iterations: int = 2000,
        initial_temperature: float = 0.5,
        cooling: float = 0.995,
        seed: int = 0,
        restarts: int = 1,
    ) -> None:
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.seed = seed
        self.restarts = restarts

    def solve(self, problem: ReorderProblem) -> SolverResult:
        """Anneal ``restarts`` lockstep chains from the identity order."""
        chains = self.restarts
        rngs = [np.random.default_rng(self.seed + c) for c in range(chains)]
        started = time.perf_counter()
        current: List[List[int]] = [
            list(problem.identity_order()) for _ in range(chains)
        ]
        identity_value = problem.score(current[0])
        current_value = [identity_value] * chains
        best_order: Tuple[int, ...] = tuple(current[0])
        best_value = identity_value
        temperature = self.initial_temperature
        accepted = 0
        with span(
            "solver.round",
            solver=self.name,
            chains=chains,
            iterations=self.iterations,
        ):
            for _ in range(self.iterations):
                swaps = []
                for chain, rng in enumerate(rngs):
                    i, j = rng.choice(problem.size, size=2, replace=False)
                    order = current[chain]
                    order[i], order[j] = order[j], order[i]
                    swaps.append((i, j))
                # One kernel call scores every chain's proposal; with a
                # single chain this degenerates to the serial score path
                # (the environment routes a lone miss through the
                # incremental engine).
                values = problem.score_many([tuple(o) for o in current])
                for chain, rng in enumerate(rngs):
                    value = values[chain]
                    delta = value - current_value[chain]
                    take = delta >= 0 or (
                        value != float("-inf")
                        and temperature > 1e-12
                        and rng.random() < math.exp(delta / temperature)
                    )
                    if take:
                        current_value[chain] = value
                        accepted += 1
                        if value > best_value:
                            best_value = value
                            best_order = tuple(current[chain])
                    else:
                        i, j = swaps[chain]
                        order = current[chain]
                        order[i], order[j] = order[j], order[i]
                temperature *= self.cooling
        elapsed = time.perf_counter() - started
        return self._result(
            problem,
            best_order,
            best_value,
            elapsed,
            metadata={
                "accepted": float(accepted),
                "restarts": float(chains),
            },
        )
