"""Continuous-relaxation NLP solvers (the APOPT/MINOS/SNOPT stand-ins).

The ordering problem is relaxed into continuous optimisation: each
transaction gets a real-valued *priority key*; a key vector decodes into
the permutation given by ``argsort``.  The objective is the (negated)
IFU wealth of the decoded order.  scipy's general-purpose NLP machinery
then minimises over the key space — exactly the job APOPT, MINOS and
SNOPT perform for the paper, and with the same pathology: the number of
decision variables grows with N, every function evaluation replays N
transactions, and the solvers' internal dense linear algebra makes both
time and memory grow super-linearly with mempool size (Figure 11).

Solver → stand-in mapping (documented substitution, DESIGN.md §2):

=========  ======================================  ==========================
Paper      Stand-in scipy method                   Matching characteristic
=========  ======================================  ==========================
APOPT      SLSQP (active-set SQP)                  dense quadratic subproblems
MINOS      BFGS (quasi-Newton, dense Hessian)      dense approximate Hessian
SNOPT      trust-constr (interior trust region)    good small-N, poor scaling
=========  ======================================  ==========================
"""

from __future__ import annotations

import time
from typing import Tuple

import numpy as np
from scipy import optimize

from .base import ReorderProblem, ReorderSolver, SolverResult


class RelaxationSolver(ReorderSolver):
    """Generic scipy-minimize-over-priority-keys solver."""

    name = "relaxation"
    method = "Nelder-Mead"

    def __init__(
        self,
        restarts: int = 3,
        max_iterations: int = 120,
        seed: int = 0,
        penalty: float = 10.0,
    ) -> None:
        self.restarts = restarts
        self.max_iterations = max_iterations
        self.seed = seed
        #: Objective value assigned to infeasible decodes; keeps the
        #: landscape finite for gradient-based methods.
        self.penalty = penalty

    # ------------------------------------------------------------------ #

    @staticmethod
    def decode(keys: np.ndarray) -> Tuple[int, ...]:
        """Priority keys → permutation (ascending key executes first)."""
        return tuple(int(i) for i in np.argsort(keys, kind="stable"))

    def _loss(self, problem: ReorderProblem, keys: np.ndarray) -> float:
        order = self.decode(keys)
        value = problem.score(order)
        if value == float("-inf"):
            return self.penalty
        return -value

    def solve(self, problem: ReorderProblem) -> SolverResult:
        """Multi-start scipy minimisation over the key relaxation."""
        rng = np.random.default_rng(self.seed)
        started = time.perf_counter()
        best_order = problem.identity_order()
        best_value = problem.score(best_order)
        iterations_used = 0
        for restart in range(self.restarts):
            if restart == 0:
                keys0 = np.linspace(0.0, 1.0, problem.size)
            else:
                keys0 = rng.uniform(0.0, 1.0, size=problem.size)
            outcome = optimize.minimize(
                lambda keys: self._loss(problem, keys),
                keys0,
                method=self.method,
                options=self._options(),
            )
            iterations_used += int(getattr(outcome, "nit", 0) or 0)
            order = self.decode(outcome.x)
            value = problem.score(order)
            if value > best_value:
                best_value = value
                best_order = order
        elapsed = time.perf_counter() - started
        return self._result(
            problem,
            best_order,
            best_value,
            elapsed,
            metadata={"iterations": float(iterations_used)},
        )

    def _options(self) -> dict:
        return {"maxiter": self.max_iterations}


class ApoptLikeSolver(RelaxationSolver):
    """APOPT stand-in: sequential quadratic programming (SLSQP)."""

    name = "APOPT-like (SLSQP)"
    method = "SLSQP"


class MinosLikeSolver(RelaxationSolver):
    """MINOS stand-in: dense quasi-Newton (BFGS)."""

    name = "MINOS-like (BFGS)"
    method = "BFGS"

    def _options(self) -> dict:
        return {"maxiter": self.max_iterations, "gtol": 1e-6}


class SnoptLikeSolver(RelaxationSolver):
    """SNOPT stand-in: trust-region interior method (trust-constr)."""

    name = "SNOPT-like (trust-constr)"
    method = "trust-constr"

    def _options(self) -> dict:
        return {"maxiter": self.max_iterations, "gtol": 1e-6, "verbose": 0}
