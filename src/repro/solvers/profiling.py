"""Time and peak-memory profiling of solver runs (Figure 11).

Wraps a solver invocation in ``tracemalloc`` so the Figure 11(b) memory
comparison reflects actual allocation peaks, and wall-clocks the run for
Figure 11(a).  Since every solver scores candidates through the problem's
incremental replay engine, each profiled run also reports the engine's
counters (scratch vs incremental replays, prefix-step reuse, permutation
cache hit rate) — the replay work the engine avoided.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from ..telemetry import get_metrics, span
from .base import ReorderProblem, ReorderSolver, SolverResult


@dataclass(frozen=True)
class ProfiledRun:
    """A solver result annotated with measured time and memory."""

    result: SolverResult
    elapsed_seconds: float
    peak_memory_bytes: int
    #: Replay-engine counters accumulated during the run (see
    #: :class:`repro.rollup.replay_engine.ReplayEngineStats.as_dict`).
    #: Frozen at construction: exposed as a read-only mapping over a
    #: private copy, so a frozen run cannot be mutated through it.
    replay_stats: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "replay_stats", MappingProxyType(dict(self.replay_stats))
        )

    @property
    def solver_name(self) -> str:
        """The profiled solver's name."""
        return self.result.solver_name

    @property
    def peak_memory_kib(self) -> float:
        """Peak traced allocation in KiB."""
        return self.peak_memory_bytes / 1024.0

    @property
    def cache_hit_rate(self) -> float:
        """Permutation-cache hit rate over the profiled run."""
        return self.replay_stats.get("cache_hit_rate", 0.0)

    @property
    def mean_resume_depth(self) -> float:
        """Average reused-prefix length of incremental replays."""
        return self.replay_stats.get("mean_resume_depth", 0.0)


def profile_solver(
    solver: ReorderSolver,
    problem: ReorderProblem,
    extra_memory_bytes: int = 0,
) -> ProfiledRun:
    """Run ``solver`` on ``problem`` under tracemalloc.

    ``extra_memory_bytes`` adds a constant footprint the tracer cannot
    see — e.g. the DQN's pre-trained weights, which exist before the
    profiled inference call (Figure 11(b) counts them against the DQN).
    """
    stats_before = problem.replay_stats()
    # An enclosing ManifestRecorder may already be tracing allocations;
    # nest instead of stomping its trace.
    was_tracing = tracemalloc.is_tracing()
    if was_tracing:
        tracemalloc.reset_peak()
    else:
        tracemalloc.start()
    started = time.perf_counter()
    with span("solver.profile", solver=solver.name) as current:
        try:
            result = solver.solve(problem)
        finally:
            _, peak = tracemalloc.get_traced_memory()
            if not was_tracing:
                tracemalloc.stop()
        elapsed = time.perf_counter() - started
        current.add(
            elapsed_s=elapsed,
            peak_bytes=peak + extra_memory_bytes,
            evaluations=result.evaluations,
        )
    stats_after = problem.replay_stats()
    # Counters are cumulative per problem; report this run's increments
    # for the additive ones and the final value for the derived rates
    # (hit rate, resume depth, reuse fraction, mean batch size).
    replay_stats = {
        key: (
            value - stats_before.get(key, 0.0)
            if not key.endswith(("_rate", "_depth", "_fraction", "_size"))
            else value
        )
        for key, value in stats_after.items()
    }
    metrics = get_metrics()
    metrics.counter("solver.profiled_runs", solver=solver.name).inc()
    metrics.histogram("solver.elapsed_seconds").observe(elapsed)
    annotated = SolverResult(
        solver_name=result.solver_name,
        best_order=result.best_order,
        best_objective=result.best_objective,
        original_objective=result.original_objective,
        elapsed_seconds=elapsed,
        evaluations=result.evaluations,
        peak_memory_bytes=peak + extra_memory_bytes,
        metadata=result.metadata,
    )
    return ProfiledRun(
        result=annotated,
        elapsed_seconds=elapsed,
        peak_memory_bytes=peak + extra_memory_bytes,
        replay_stats=replay_stats,
    )
