"""DQN inference wrapped as a :class:`ReorderSolver` (Figure 11's subject).

The IFU trains the model offline (Section VII-F); the adversarial
aggregator only pays the *inference* cost online.  This wrapper trains
once on construction (or accepts a pre-trained module) and exposes
greedy rollout through the common solver interface so it can be profiled
head-to-head with the NLP stand-ins.

``population=1`` (the default) is the paper's greedy rollout, unchanged
byte for byte.  ``population=K`` switches to a beam rollout: one
``q_values_batch`` forward pass ranks the swap actions of all K beam
members at once, the top-ranked successors of every member are scored
in a single columnar batch-kernel call (``ReorderEnv.evaluate_orders``),
and the K best feasible orders survive to the next round — whole action
populations per forward pass instead of one argmax per step.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from ..config import GenTranSeqConfig
from ..core.gentranseq import GenTranSeq
from .base import ReorderProblem, ReorderSolver, SolverResult


class DQNInferenceSolver(ReorderSolver):
    """Greedy or beam rollout of a (pre)trained GENTRANSEQ Q-network."""

    name = "DQN (inference)"

    def __init__(
        self,
        gentranseq: Optional[GenTranSeq] = None,
        config: Optional[GenTranSeqConfig] = None,
        train_episodes: int = 0,
        max_swaps: int = 50,
        population: int = 1,
    ) -> None:
        if population < 1:
            raise ValueError("population must be >= 1")
        self.gentranseq = gentranseq or GenTranSeq(config=config)
        self.train_episodes = train_episodes
        self.max_swaps = max_swaps
        self.population = population
        self._trained = gentranseq is not None

    def ensure_trained(self, problem: ReorderProblem) -> None:
        """Offline training pass (not counted against inference cost)."""
        if self._trained or self.train_episodes <= 0:
            return
        offline = self.gentranseq.config.with_overrides(
            episodes=self.train_episodes
        )
        trainer = GenTranSeq(config=offline, objective=self.gentranseq.objective)
        trainer.optimize(problem.pre_state, problem.transactions, problem.ifus)
        self.gentranseq = trainer
        self._trained = True

    def solve(self, problem: ReorderProblem) -> SolverResult:
        """Rollout; cost is what Figure 11 measures."""
        self.ensure_trained(problem)
        if self.population > 1:
            return self._solve_beam(problem)
        started = time.perf_counter()
        inference = self.gentranseq.infer(
            problem.pre_state,
            problem.transactions,
            problem.ifus,
            max_swaps=self.max_swaps,
        )
        elapsed = time.perf_counter() - started
        order = tuple(
            problem.transactions.index(tx) for tx in inference.best_sequence
        )
        return SolverResult(
            solver_name=self.name,
            best_order=order,
            best_objective=inference.best_objective,
            original_objective=inference.original_objective,
            elapsed_seconds=elapsed,
            evaluations=self.max_swaps,
            peak_memory_bytes=self.gentranseq.inference_memory_bytes(),
        )

    def _solve_beam(self, problem: ReorderProblem) -> SolverResult:
        """Beam rollout: K orders advance together, batch-scored per round."""
        env = self.gentranseq.build_env(
            problem.pre_state, problem.transactions, problem.ifus
        )
        agent = self.gentranseq._agent_for(env)
        width = self.population
        started = time.perf_counter()
        evaluations = 0

        identity = tuple(range(env.sequence_length))
        beam: List[Tuple[int, ...]] = [identity]
        beam_evals = env.evaluate_orders(beam)
        evaluations += 1
        best_order = identity
        best_objective = env.original_objective
        for _ in range(self.max_swaps):
            # One forward pass ranks every beam member's full action set.
            observations = np.stack(
                [
                    env._encoder.encode_columns(
                        env.sequence_for(order),
                        evaluation["summary"].prices_before,
                        evaluation["summary"].remaining_after,
                    )
                    for order, evaluation in zip(beam, beam_evals)
                ]
            )
            q_matrix = agent.q_values_batch(observations)
            # Top `width` swaps per member; the pooled successors are one
            # candidate set for the batch kernel.
            ranked = np.argsort(-q_matrix, axis=1, kind="stable")[:, :width]
            successors: List[Tuple[int, ...]] = []
            seen = set(beam)
            for member, order in enumerate(beam):
                for action in ranked[member]:
                    i, j = env.action_pair(int(action))
                    candidate = list(order)
                    candidate[i], candidate[j] = candidate[j], candidate[i]
                    key = tuple(candidate)
                    if key not in seen:
                        seen.add(key)
                        successors.append(key)
            if not successors:
                break
            evaluated = env.evaluate_orders(successors)
            evaluations += len(successors)
            for order, evaluation in zip(successors, evaluated):
                if (
                    evaluation["feasible"]
                    and evaluation["objective"] > best_objective
                ):
                    best_objective = evaluation["objective"]
                    best_order = order
            # Survivors: best `width` successors by objective (stable on
            # ties, infeasible orders sink with -inf).
            scores = np.asarray(
                [
                    e["objective"] if e["feasible"] else float("-inf")
                    for e in evaluated
                ]
            )
            keep = np.argsort(-scores, kind="stable")[:width]
            beam = [successors[i] for i in keep]
            beam_evals = [evaluated[i] for i in keep]
        elapsed = time.perf_counter() - started
        return SolverResult(
            solver_name=self.name,
            best_order=best_order,
            best_objective=best_objective,
            original_objective=env.original_objective,
            elapsed_seconds=elapsed,
            evaluations=evaluations,
            peak_memory_bytes=self.gentranseq.inference_memory_bytes(),
            metadata={"population": float(width)},
        )

    def model_memory_bytes(self) -> int:
        """Constant Q-network footprint for profiling."""
        return self.gentranseq.inference_memory_bytes()
