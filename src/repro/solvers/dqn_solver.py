"""DQN inference wrapped as a :class:`ReorderSolver` (Figure 11's subject).

The IFU trains the model offline (Section VII-F); the adversarial
aggregator only pays the *inference* cost online.  This wrapper trains
once on construction (or accepts a pre-trained module) and exposes
greedy rollout through the common solver interface so it can be profiled
head-to-head with the NLP stand-ins.
"""

from __future__ import annotations

import time
from typing import Optional

from ..config import GenTranSeqConfig
from ..core.gentranseq import GenTranSeq
from .base import ReorderProblem, ReorderSolver, SolverResult


class DQNInferenceSolver(ReorderSolver):
    """Greedy rollout of a (pre)trained GENTRANSEQ Q-network."""

    name = "DQN (inference)"

    def __init__(
        self,
        gentranseq: Optional[GenTranSeq] = None,
        config: Optional[GenTranSeqConfig] = None,
        train_episodes: int = 0,
        max_swaps: int = 50,
    ) -> None:
        self.gentranseq = gentranseq or GenTranSeq(config=config)
        self.train_episodes = train_episodes
        self.max_swaps = max_swaps
        self._trained = gentranseq is not None

    def ensure_trained(self, problem: ReorderProblem) -> None:
        """Offline training pass (not counted against inference cost)."""
        if self._trained or self.train_episodes <= 0:
            return
        offline = self.gentranseq.config.with_overrides(
            episodes=self.train_episodes
        )
        trainer = GenTranSeq(config=offline, objective=self.gentranseq.objective)
        trainer.optimize(problem.pre_state, problem.transactions, problem.ifus)
        self.gentranseq = trainer
        self._trained = True

    def solve(self, problem: ReorderProblem) -> SolverResult:
        """Greedy inference rollout; cost is what Figure 11 measures."""
        self.ensure_trained(problem)
        started = time.perf_counter()
        inference = self.gentranseq.infer(
            problem.pre_state,
            problem.transactions,
            problem.ifus,
            max_swaps=self.max_swaps,
        )
        elapsed = time.perf_counter() - started
        order = tuple(
            problem.transactions.index(tx) for tx in inference.best_sequence
        )
        return SolverResult(
            solver_name=self.name,
            best_order=order,
            best_objective=inference.best_objective,
            original_objective=inference.original_objective,
            elapsed_seconds=elapsed,
            evaluations=self.max_swaps,
            peak_memory_bytes=self.gentranseq.inference_memory_bytes(),
        )

    def model_memory_bytes(self) -> int:
        """Constant Q-network footprint for profiling."""
        return self.gentranseq.inference_memory_bytes()
