"""Exact solvers: exhaustive enumeration and branch-and-bound.

Exhaustive search certifies optimality for small N (used to validate the
case studies and as ground truth in tests).  Branch-and-bound prunes
partial orderings with an optimistic bound on the IFU's achievable
wealth, extending exact solving a little further; both explode
factorially and exist to demonstrate *why* the paper needs a learned
policy.
"""

from __future__ import annotations

import time
from itertools import permutations
from typing import List, Tuple

from ..errors import SolverError
from .base import ReorderProblem, ReorderSolver, SolverResult


class ExhaustiveSolver(ReorderSolver):
    """Try every permutation (guarded by a hard size limit)."""

    name = "exhaustive"

    #: Candidates scored per batch-kernel call.  Enumeration order and
    #: the strict-improvement scan are chunk-size independent, so this
    #: only tunes kernel occupancy, never the certified optimum.
    chunk_size = 256

    def __init__(self, max_size: int = 9) -> None:
        self.max_size = max_size

    def solve(self, problem: ReorderProblem) -> SolverResult:
        """Enumerate all ``N!`` orders; raises above ``max_size``."""
        if problem.size > self.max_size:
            raise SolverError(
                f"exhaustive search over {problem.size}! permutations refused "
                f"(limit {self.max_size})"
            )
        started = time.perf_counter()
        best_order: Tuple[int, ...] = problem.identity_order()
        best_objective = problem.score(best_order)
        chunk: List[Tuple[int, ...]] = []
        for order in permutations(range(problem.size)):
            chunk.append(order)
            if len(chunk) < self.chunk_size:
                continue
            best_order, best_objective = self._scan(
                problem, chunk, best_order, best_objective
            )
            chunk = []
        if chunk:
            best_order, best_objective = self._scan(
                problem, chunk, best_order, best_objective
            )
        elapsed = time.perf_counter() - started
        return self._result(problem, best_order, best_objective, elapsed)

    def _scan(
        self,
        problem: ReorderProblem,
        chunk: List[Tuple[int, ...]],
        best_order: Tuple[int, ...],
        best_objective: float,
    ) -> Tuple[Tuple[int, ...], float]:
        """Batch-score one chunk, then scan it in enumeration order."""
        for order, value in zip(chunk, problem.score_many(chunk)):
            if value > best_objective:
                best_objective = value
                best_order = order
        return best_order, best_objective


class BranchAndBoundSolver(ReorderSolver):
    """Depth-first search over orderings with optimistic-bound pruning.

    The bound assumes the IFU could still capture the maximum possible
    price appreciation on all held tokens for the unplaced suffix — a
    valid over-estimate because Eq. 10 caps the price at the
    one-remaining-token level.
    """

    name = "branch-and-bound"

    def __init__(self, max_size: int = 12, node_budget: int = 2_000_000) -> None:
        self.max_size = max_size
        self.node_budget = node_budget

    def solve(self, problem: ReorderProblem) -> SolverResult:
        """Exact search with pruning; raises above ``max_size``."""
        if problem.size > self.max_size:
            raise SolverError(
                f"branch-and-bound over {problem.size} transactions refused "
                f"(limit {self.max_size})"
            )
        started = time.perf_counter()
        self._nodes = 0
        identity = problem.identity_order()
        self._best_order: Tuple[int, ...] = identity
        self._best_objective = problem.score(identity)
        self._bound_ceiling = self._wealth_ceiling(problem)
        self._search(problem, [], set(range(problem.size)))
        elapsed = time.perf_counter() - started
        return self._result(
            problem,
            self._best_order,
            self._best_objective,
            elapsed,
            metadata={"nodes": float(self._nodes)},
        )

    def _wealth_ceiling(self, problem: ReorderProblem) -> float:
        state = problem.pre_state
        price_max = state.pricing.price(1)
        # Most optimistic: every IFU ends holding every token it could touch
        # at the maximum price plus its full cash balance.
        ceiling = 0.0
        for ifu in problem.ifus:
            holdings_bound = state.holdings(ifu) + sum(
                1 for tx in problem.transactions if tx.recipient == ifu or (
                    tx.sender == ifu and tx.kind.value == "mint"
                )
            )
            ceiling += state.balance(ifu) + holdings_bound * price_max
        return ceiling / max(len(problem.ifus), 1)

    def _search(
        self,
        problem: ReorderProblem,
        prefix: List[int],
        remaining: set,
    ) -> None:
        self._nodes += 1
        if self._nodes > self.node_budget:
            raise SolverError(f"branch-and-bound exceeded {self.node_budget} nodes")
        if not remaining:
            value = problem.score(prefix)
            if value > self._best_objective:
                self._best_objective = value
                self._best_order = tuple(prefix)
            return
        if self._bound_ceiling <= self._best_objective:
            return
        for candidate in sorted(remaining):
            prefix.append(candidate)
            remaining.discard(candidate)
            self._search(problem, prefix, remaining)
            remaining.add(candidate)
            prefix.pop()
