"""Common interface for transaction re-ordering solvers.

A :class:`ReorderProblem` bundles the pre-state, the original sequence
and the IFU set; its :meth:`~ReorderProblem.score` evaluates any
permutation (feasibility-aware, matching the GENTRANSEQ environment's
objective).  Every solver maps a problem to a :class:`SolverResult`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.environment import ReorderEnv
from ..core.multi_ifu import Objective, mean_wealth
from ..config import GenTranSeqConfig
from ..rollup.state import L2State
from ..rollup.transaction import NFTTransaction


@dataclass
class ReorderProblem:
    """One instance of the NFT transaction re-ordering problem."""

    pre_state: L2State
    transactions: Tuple[NFTTransaction, ...]
    ifus: Tuple[str, ...]
    objective: Objective = mean_wealth

    def __post_init__(self) -> None:
        self.transactions = tuple(self.transactions)
        self.ifus = tuple(self.ifus)
        self._env = ReorderEnv(
            pre_state=self.pre_state,
            transactions=self.transactions,
            ifus=self.ifus,
            config=GenTranSeqConfig(),
            objective=self.objective,
        )
        self.evaluations = 0

    @property
    def size(self) -> int:
        """N — sequence length."""
        return len(self.transactions)

    @property
    def original_objective(self) -> float:
        """Objective value of the original ordering."""
        return self._env.original_objective

    def score(self, order: Sequence[int]) -> float:
        """Objective of a permutation; ``-inf`` when infeasible.

        Feasible means every transaction that executed under the original
        order still executes and batch-end inventory is consistent.
        """
        self.evaluations += 1
        evaluation = self._env.evaluate_order(order)
        if not evaluation["feasible"]:
            return float("-inf")
        return evaluation["objective"]

    def score_many(self, orders: Sequence[Sequence[int]]) -> List[float]:
        """Score a whole candidate set through the columnar batch kernel.

        One :meth:`ReorderEnv.evaluate_orders` call: cached candidates
        are answered from the evaluation cache, the misses replay
        simultaneously.  Returns one value per input order, positionally
        — each bit-identical to :meth:`score` on the same order, so a
        solver can swap a scoring loop for one ``score_many`` call
        without changing the permutation it selects.
        """
        self.evaluations += len(orders)
        return [
            evaluation["objective"] if evaluation["feasible"] else float("-inf")
            for evaluation in self._env.evaluate_orders(orders)
        ]

    def identity_order(self) -> Tuple[int, ...]:
        """The original permutation ``(0, 1, ..., N-1)``."""
        return tuple(range(self.size))

    def replay_stats(self) -> Dict[str, float]:
        """Replay-engine counters accumulated by this problem's scoring.

        Every :meth:`score` call routes through the environment's
        incremental replay engine and permutation cache; these counters
        (scratch vs incremental replays, reused steps, cache hit rate)
        quantify the replay work avoided.
        """
        return self._env.replay_stats()


@dataclass
class SolverResult:
    """What a solver found and what it cost."""

    solver_name: str
    best_order: Tuple[int, ...]
    best_objective: float
    original_objective: float
    elapsed_seconds: float
    evaluations: int
    peak_memory_bytes: int = 0
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def profit(self) -> float:
        """Objective gain over the original ordering."""
        return self.best_objective - self.original_objective

    @property
    def improved(self) -> bool:
        """Whether the solver beat the original ordering."""
        return self.profit > 1e-12


class ReorderSolver(abc.ABC):
    """Base class every baseline solver implements."""

    name: str = "solver"

    @abc.abstractmethod
    def solve(self, problem: ReorderProblem) -> SolverResult:
        """Search for the best feasible permutation of the problem."""

    def _result(
        self,
        problem: ReorderProblem,
        best_order: Sequence[int],
        best_objective: float,
        elapsed: float,
        metadata: Optional[Dict[str, float]] = None,
    ) -> SolverResult:
        if best_objective == float("-inf"):
            best_order = problem.identity_order()
            best_objective = problem.original_objective
        return SolverResult(
            solver_name=self.name,
            best_order=tuple(best_order),
            best_objective=best_objective,
            original_objective=problem.original_objective,
            elapsed_seconds=elapsed,
            evaluations=problem.evaluations,
            metadata=metadata or {},
        )
