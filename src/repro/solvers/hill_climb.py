"""Hill climbing over the swap neighbourhood.

First-improvement hill climbing is the deterministic greedy the paper's
"traditional deterministic trading algorithms will fail" claim refers
to: it gets stuck in the local optima the reward landscape is full of.
The random-restart variant quantifies how many restarts that costs.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import List, Tuple

import numpy as np

from ..telemetry import span
from .base import ReorderProblem, ReorderSolver, SolverResult


class HillClimbSolver(ReorderSolver):
    """Best-improvement hill climbing until a local optimum."""

    name = "hill-climb"

    def __init__(self, max_rounds: int = 200) -> None:
        self.max_rounds = max_rounds

    def solve(self, problem: ReorderProblem) -> SolverResult:
        """Climb from the identity permutation to a swap-local optimum."""
        started = time.perf_counter()
        order, value, rounds = self._climb(
            problem, list(problem.identity_order())
        )
        elapsed = time.perf_counter() - started
        return self._result(
            problem, order, value, elapsed, metadata={"rounds": float(rounds)}
        )

    def _climb(
        self, problem: ReorderProblem, order: List[int]
    ) -> Tuple[Tuple[int, ...], float, int]:
        value = problem.score(order)
        rounds = 0
        pairs = tuple(combinations(range(problem.size), 2))
        for rounds in range(1, self.max_rounds + 1):
            # Whole swap neighbourhood as one candidate set: a single
            # batch-kernel call instead of N(N-1)/2 serial replays.  The
            # selection scan below runs in the same ``combinations``
            # order with the same tie-break as the serial loop, so the
            # climb visits byte-identical orders.
            neighbourhood = []
            for i, j in pairs:
                order[i], order[j] = order[j], order[i]
                neighbourhood.append(tuple(order))
                order[i], order[j] = order[j], order[i]
            with span(
                "solver.round",
                solver=self.name,
                round=rounds,
                candidates=len(neighbourhood),
            ):
                values = problem.score_many(neighbourhood)
            best_swap = None
            best_gain = 0.0
            for (i, j), candidate in zip(pairs, values):
                gain = candidate - value
                if candidate != float("-inf") and gain > best_gain + 1e-15:
                    best_gain = gain
                    best_swap = (i, j)
            if best_swap is None:
                break
            i, j = best_swap
            order[i], order[j] = order[j], order[i]
            value += best_gain
            value = problem.score(order)  # refresh exactly (a cache hit)
        return tuple(order), value, rounds


class RandomRestartHillClimbSolver(ReorderSolver):
    """Hill climbing from several random starting permutations."""

    name = "hill-climb-restarts"

    def __init__(self, restarts: int = 5, max_rounds: int = 100, seed: int = 0) -> None:
        self.restarts = restarts
        self.max_rounds = max_rounds
        self.seed = seed

    def solve(self, problem: ReorderProblem) -> SolverResult:
        """Best local optimum across random restarts."""
        rng = np.random.default_rng(self.seed)
        inner = HillClimbSolver(max_rounds=self.max_rounds)
        started = time.perf_counter()
        best_order = problem.identity_order()
        best_value = problem.score(best_order)
        for restart in range(self.restarts):
            if restart == 0:
                start = list(problem.identity_order())
            else:
                start = list(rng.permutation(problem.size))
            order, value, _ = inner._climb(problem, start)
            if value > best_value:
                best_value = value
                best_order = order
        elapsed = time.perf_counter() - started
        return self._result(problem, best_order, best_value, elapsed)
