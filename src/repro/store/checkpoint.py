"""Mid-training checkpoints for DQN runs, persisted into the store.

A :class:`TrainingCheckpointer` snapshots the *complete* training state
every K episodes — Q/target network weights, Adam moments, replay-buffer
contents, the agent's RNG bit-generator state, the epsilon schedule
position and the per-episode history, plus the environment's
best-order-so-far — so an interrupted Fig. 8 run resumes mid-training
and finishes **bit-identically** to an uninterrupted one (asserted by
``tests/store/test_cached_runs.py``).

Checkpoints live under ``ckpt:`` keys and are :meth:`clear`-ed once the
run completes (the task-level result cache takes over from there), so
they never accumulate in a healthy store.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from .codec import decode, encode
from .result_store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.environment import ReorderEnv
    from ..drl.dqn import DQNAgent
    from ..drl.trainer import TrainingHistory

__all__ = ["CHECKPOINT_SCHEMA", "TrainingCheckpointer"]

CHECKPOINT_SCHEMA = "repro.store/checkpoint/v1"


class TrainingCheckpointer:
    """Periodic save/restore of one training run's full state."""

    def __init__(self, store: ResultStore, key: str, every: int = 5) -> None:
        if every <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.store = store
        self.key = key
        self.every = every

    # -- restore --------------------------------------------------------

    def restore(
        self,
        agent: "DQNAgent",
        env: Optional["ReorderEnv"],
        history: "TrainingHistory",
    ) -> int:
        """Load the latest checkpoint, if any; returns the next episode.

        Mutates ``agent`` (weights, optimizer, replay, RNG, schedule
        position), ``env`` (best order/objective found so far) and
        ``history`` (completed episodes) in place.  Returns 0 when no
        usable checkpoint exists.
        """
        payload, found = self.store.fetch(self.key)
        if not found or payload.get("schema") != CHECKPOINT_SCHEMA:
            return 0
        state: Dict[str, Any] = decode(payload["state"])
        agent.load_state_dict(state["agent"])
        if env is not None and state.get("env") is not None:
            env.best_order = tuple(state["env"]["best_order"])
            env.best_objective = state["env"]["best_objective"]
        history.episodes.extend(state["history"])
        return int(payload["episode"])

    # -- save -----------------------------------------------------------

    def maybe_save(
        self,
        episode: int,
        agent: "DQNAgent",
        env: Optional["ReorderEnv"],
        history: "TrainingHistory",
        total_episodes: int,
    ) -> bool:
        """Persist after every ``every``-th episode (not after the last —
        a finished run is covered by the result cache, not checkpoints).
        """
        completed = episode + 1
        if completed % self.every != 0 or completed >= total_episodes:
            return False
        self.save(completed, agent, env, history)
        return True

    def save(
        self,
        next_episode: int,
        agent: "DQNAgent",
        env: Optional["ReorderEnv"],
        history: "TrainingHistory",
    ) -> None:
        env_state = None
        if env is not None:
            env_state = {
                "best_order": list(env.best_order),
                "best_objective": env.best_objective,
            }
        state = {
            "agent": agent.state_dict(),
            "env": env_state,
            "history": list(history.episodes),
        }
        self.store.put(
            self.key,
            {
                "schema": CHECKPOINT_SCHEMA,
                "episode": next_episode,
                "state": encode(state),
            },
        )

    def clear(self) -> None:
        """Drop the checkpoint (call when the run completes)."""
        self.store.delete(self.key)
