"""Disk-backed, content-addressed store for experiment results.

Zero-dependency memoization for the evaluation grid: JSON payloads
keyed by content-addressed strings (see :mod:`repro.store.keys`), with

* **atomic writes** — payloads land via tmp-file + ``os.replace``, so a
  crash mid-write never leaves a readable-but-corrupt object; the index
  is updated only *after* the object rename, so it never points at a
  missing or partial file;
* **an index file** (``index.json``) carrying per-entry size, creation
  time and a monotone sequence number — the accelerator for lookups and
  the ground truth for eviction order.  Object files embed their own
  key, so a lost or stale index is rebuilt by scanning ``objects/``;
* **eviction by size and age** — oldest-first (by insertion sequence),
  enforced on ``put``; an entry is never evicted while an older entry
  is kept;
* **namespaces** — ``store.namespaced("chaos")`` returns a view that
  prefixes every key with ``chaos:``, so chaos-matrix results can share
  a directory with clean runs without ever sharing entries.

Handles are cheap, picklable (the in-memory index is dropped, workers
re-read from disk) and safe to share between the run-all orchestrator,
the parallel fabric and DQN checkpointing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..errors import ReproError
from ..telemetry import event, get_metrics, span
from .codec import decode, encode

__all__ = ["ResultStore", "StoreStats", "StoreError"]

_OBJECT_SCHEMA = "repro.store/object/v1"
_INDEX_SCHEMA = "repro.store/index/v1"


class StoreError(ReproError):
    """The store is misconfigured or an entry is unusable."""


@dataclass
class StoreStats:
    """Process-local operation counters (shared by namespaced views)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    bytes_written: int = 0
    bytes_read: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultStore:
    """Content-addressed JSON store with atomic writes and eviction."""

    def __init__(
        self,
        root: Union[str, pathlib.Path],
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        namespace: str = "",
        _stats: Optional[StoreStats] = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise StoreError("max_bytes must be positive (or None)")
        if max_age_seconds is not None and max_age_seconds <= 0:
            raise StoreError("max_age_seconds must be positive (or None)")
        self.root = pathlib.Path(root)
        self.max_bytes = max_bytes
        self.max_age_seconds = max_age_seconds
        self.namespace = namespace
        self.stats = _stats if _stats is not None else StoreStats()
        self._index: Optional[Dict[str, Dict[str, Any]]] = None
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "objects").mkdir(exist_ok=True)

    # -- pickling: workers re-read the index from disk ------------------

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_index"] = None
        state["stats"] = StoreStats()  # counters are process-local
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    # -- namespacing ----------------------------------------------------

    def namespaced(self, namespace: str) -> "ResultStore":
        """A view of the same store that prefixes keys with ``namespace:``.

        Idempotent for an identical namespace, so threading one handle
        through nested layers cannot stack prefixes.
        """
        if namespace == self.namespace:
            return self
        return ResultStore(
            self.root,
            max_bytes=self.max_bytes,
            max_age_seconds=self.max_age_seconds,
            namespace=namespace,
            _stats=self.stats,
        )

    def _full_key(self, key: str) -> str:
        if not key:
            raise StoreError("empty store key")
        return f"{self.namespace}:{key}" if self.namespace else key

    # -- paths ----------------------------------------------------------

    def _digest(self, full_key: str) -> str:
        return hashlib.sha256(full_key.encode("utf-8")).hexdigest()

    def _object_path(self, full_key: str) -> pathlib.Path:
        digest = self._digest(full_key)
        return self.root / "objects" / digest[:2] / f"{digest}.json"

    @property
    def index_path(self) -> pathlib.Path:
        return self.root / "index.json"

    # -- index ----------------------------------------------------------

    def _load_index(self, refresh: bool = False) -> Dict[str, Dict[str, Any]]:
        if self._index is not None and not refresh:
            return self._index
        try:
            raw = json.loads(self.index_path.read_text())
            entries = raw.get("entries", {})
            if not isinstance(entries, dict):
                raise ValueError("malformed index")
        except (OSError, ValueError):
            entries = self._rebuild_index()
        self._index = entries
        return entries

    def _rebuild_index(self) -> Dict[str, Dict[str, Any]]:
        """Rescan ``objects/`` — object files are the ground truth."""
        entries: Dict[str, Dict[str, Any]] = {}
        seq = 0
        records: List[Tuple[float, str, Dict[str, Any]]] = []
        for path in sorted((self.root / "objects").rglob("*.json")):
            try:
                obj = json.loads(path.read_text())
                key = obj["key"]
                created = float(obj.get("created", 0.0))
            except (OSError, ValueError, KeyError, TypeError):
                continue  # partial/corrupt object: invisible, not fatal
            records.append((created, key, {"size": path.stat().st_size}))
        for created, key, meta in sorted(records, key=lambda r: r[0]):
            entries[key] = {"size": meta["size"], "created": created, "seq": seq}
            seq += 1
        self._write_index(entries)
        return entries

    def _write_index(self, entries: Dict[str, Dict[str, Any]]) -> None:
        payload = json.dumps(
            {"schema": _INDEX_SCHEMA, "entries": entries},
            sort_keys=True,
        )
        self._atomic_write(self.index_path, payload)
        self._index = entries

    def _atomic_write(self, path: pathlib.Path, text: str) -> int:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        data = text.encode("utf-8")
        tmp.write_bytes(data)
        os.replace(tmp, path)
        return len(data)

    # -- raw JSON payloads ----------------------------------------------

    def put(self, key: str, payload: Any) -> str:
        """Store a JSON-able payload under ``key``; returns the full key.

        The object file is written atomically first; the index entry is
        added only after the rename succeeds, so readers never observe a
        key whose payload is missing or partial.
        """
        full = self._full_key(key)
        with span("store.put", key=full):
            now = time.time()
            entries = self._load_index(refresh=True)
            seq = 1 + max(
                (e.get("seq", 0) for e in entries.values()), default=-1
            )
            text = json.dumps(
                {
                    "schema": _OBJECT_SCHEMA,
                    "key": full,
                    "created": now,
                    "seq": seq,
                    "payload": payload,
                }
            )
            size = self._atomic_write(self._object_path(full), text)
            entries[full] = {"size": size, "created": now, "seq": seq}
            self.stats.puts += 1
            self.stats.bytes_written += size
            get_metrics().counter("store.puts").inc()
            self._evict(entries, now)
            self._write_index(entries)
        return full

    def fetch(self, key: str) -> Tuple[Any, bool]:
        """``(payload, True)`` on a hit, ``(None, False)`` on a miss."""
        full = self._full_key(key)
        entries = self._load_index()
        entry = entries.get(full)
        path = self._object_path(full)
        if entry is None:
            # Another process may have written since our index snapshot.
            entries = self._load_index(refresh=True)
            entry = entries.get(full)
        if entry is not None and self._expired(entry, time.time()):
            self.delete(key)
            entry = None
        if entry is None or not path.exists():
            self._record_miss(full)
            return None, False
        try:
            obj = json.loads(path.read_bytes())
            payload = obj["payload"]
        except (OSError, ValueError, KeyError):
            self._record_miss(full)
            return None, False
        self.stats.hits += 1
        self.stats.bytes_read += entry.get("size", 0)
        get_metrics().counter("store.fetch", outcome="hit").inc()
        event("store.hit", key=full)
        return payload, True

    def _record_miss(self, full_key: str) -> None:
        self.stats.misses += 1
        get_metrics().counter("store.fetch", outcome="miss").inc()
        event("store.miss", key=full_key)

    def get(self, key: str, default: Any = None) -> Any:
        """The payload under ``key``, or ``default`` on a miss."""
        payload, found = self.fetch(key)
        return payload if found else default

    def contains(self, key: str) -> bool:
        entries = self._load_index(refresh=True)
        return self._full_key(key) in entries

    def delete(self, key: str) -> bool:
        """Remove ``key``; True when an entry existed."""
        full = self._full_key(key)
        entries = self._load_index(refresh=True)
        existed = full in entries
        entries.pop(full, None)
        try:
            self._object_path(full).unlink()
        except OSError:
            pass
        if existed:
            self._write_index(entries)
        return existed

    # -- typed object payloads (via the tagged codec) -------------------

    def put_object(self, key: str, value: Any) -> str:
        """Store an arbitrary result object (dataclasses round-trip)."""
        return self.put(key, encode(value))

    def fetch_object(self, key: str) -> Tuple[Any, bool]:
        payload, found = self.fetch(key)
        if not found:
            return None, False
        return decode(payload), True

    # -- maintenance ----------------------------------------------------

    def keys(self) -> List[str]:
        """Every stored full key (namespace prefixes included)."""
        return sorted(self._load_index(refresh=True))

    def size_bytes(self) -> int:
        return sum(e.get("size", 0) for e in self._load_index(refresh=True).values())

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        entries = self._load_index(refresh=True)
        count = len(entries)
        for full in list(entries):
            try:
                self._object_path(full).unlink()
            except OSError:
                pass
        self._write_index({})
        return count

    def _expired(self, entry: Dict[str, Any], now: float) -> bool:
        if self.max_age_seconds is None:
            return False
        return now - float(entry.get("created", now)) > self.max_age_seconds

    def _evict(self, entries: Dict[str, Dict[str, Any]], now: float) -> None:
        """Enforce the age and size budgets, oldest-first.

        Entries leave strictly in insertion order (``seq``), so an entry
        is never removed while any older entry stays — the survivors are
        always the newest suffix of the insertion sequence.
        """
        doomed: List[str] = [
            full for full, entry in entries.items() if self._expired(entry, now)
        ]
        if self.max_bytes is not None:
            total = sum(
                e.get("size", 0) for k, e in entries.items() if k not in doomed
            )
            by_age = sorted(
                (k for k in entries if k not in doomed),
                key=lambda k: entries[k].get("seq", 0),
            )
            for full in by_age:
                if total <= self.max_bytes:
                    break
                total -= entries[full].get("size", 0)
                doomed.append(full)
        for full in doomed:
            entries.pop(full, None)
            try:
                self._object_path(full).unlink()
            except OSError:
                pass
            self.stats.evictions += 1

    # -- iteration / debugging ------------------------------------------

    def entries(self) -> Iterable[Tuple[str, Dict[str, Any]]]:
        """(full key, index entry) pairs, oldest first."""
        index = self._load_index(refresh=True)
        return sorted(index.items(), key=lambda kv: kv[1].get("seq", 0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ns = f", namespace={self.namespace!r}" if self.namespace else ""
        return f"ResultStore({str(self.root)!r}{ns})"
