"""Cache-key derivation for the content-addressed result store.

Every key is a SHA-256 digest over a *canonical encoding* of the value
tuple the ISSUE's memoization discipline calls for::

    (store schema version, code fingerprint, experiment id,
     effort preset, config hash, seed)

plus a short human-readable prefix (``exp:`` / ``task:`` / ``ckpt:``)
naming the key family.  The *code fingerprint* is a hash of the whole
``repro`` source tree, computed once per process — any source change
invalidates every cached entry, the same conservative rule build
systems apply.

Canonicalisation here is **strict**: a value that cannot be reduced to
deterministic JSON primitives (an arbitrary object whose ``repr`` would
embed a memory address, a lambda, a closure) raises
:class:`UnkeyableError` instead of silently producing an unstable key.
Callers treat that as "this work is not cache-addressable" and simply
skip caching it.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import pathlib
from typing import Any, Callable, Mapping, Optional, Union

import numpy as np

from ..errors import ReproError

__all__ = [
    "STORE_SCHEMA_VERSION",
    "UnkeyableError",
    "canonical",
    "digest",
    "code_fingerprint",
    "config_digest",
    "experiment_key",
    "task_key",
    "checkpoint_key",
]

#: Bump when the store's key anatomy or payload layout changes: every
#: pre-existing entry becomes unreachable (a miss), never misread.
STORE_SCHEMA_VERSION = "repro.store/v1"


class UnkeyableError(ReproError):
    """A value cannot be canonically encoded into a cache key."""


def canonical(value: Any) -> Any:
    """Reduce ``value`` to deterministic JSON-able primitives, strictly.

    Dataclasses are encoded with their qualified type name (two configs
    of different types never collide even with equal fields); mappings
    are key-sorted; sets are element-sorted; numpy scalars/arrays are
    expanded; module-level functions are encoded by qualified name.
    Anything else raises :class:`UnkeyableError`.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, enum.Enum):
        return ["__enum__", _type_ref(type(value)), value.value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return ["__dataclass__", _type_ref(type(value)), fields]
    if isinstance(value, Mapping):
        items = [
            [canonical_repr(canonical(k)), canonical(v)]
            for k, v in value.items()
        ]
        items.sort(key=lambda kv: kv[0])
        return ["__mapping__", items]
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        encoded = [canonical(item) for item in value]
        return ["__set__", sorted(encoded, key=canonical_repr)]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return ["__ndarray__", str(value.dtype), list(value.shape),
                canonical(value.tolist())]
    if callable(value):
        return ["__fn__", _fn_ref(value)]
    # A store handle threaded through task kwargs (e.g. a checkpoint
    # store) never changes the task's *result*, so it is key-neutral.
    from .result_store import ResultStore

    if isinstance(value, ResultStore):
        return "__store__"
    raise UnkeyableError(
        f"cannot canonically encode {type(value).__module__}."
        f"{type(value).__qualname__} into a cache key"
    )


def canonical_repr(encoded: Any) -> str:
    """A stable total order over already-canonical values."""
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"))


def _type_ref(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _fn_ref(fn: Callable[..., Any]) -> str:
    qualname = getattr(fn, "__qualname__", None)
    module = getattr(fn, "__module__", None)
    if not qualname or not module:
        raise UnkeyableError(f"cannot key callable {fn!r}")
    if "<lambda>" in qualname or "<locals>" in qualname:
        raise UnkeyableError(
            f"cannot key non-module-level callable {module}.{qualname}"
        )
    return f"{module}:{qualname}"


def digest(value: Any) -> str:
    """SHA-256 hex digest of ``value``'s canonical encoding."""
    payload = canonical_repr(canonical(value))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_digest(config: Any) -> str:
    """Short stable hash of a config mapping/dataclass."""
    return digest(config)[:16]


_FINGERPRINT_CACHE: dict = {}


def code_fingerprint(root: Union[str, pathlib.Path, None] = None) -> str:
    """Hash of the source tree, cached per process per root.

    Hashes every ``*.py`` file under ``root`` (default: the installed
    ``repro`` package directory), sorted by relative path, so any code
    change — anywhere in the package — yields a new fingerprint and
    therefore invalidates every cached result derived from it.
    """
    base = (
        pathlib.Path(root)
        if root is not None
        else pathlib.Path(__file__).resolve().parent.parent
    )
    key = str(base)
    cached = _FINGERPRINT_CACHE.get(key)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    for path in sorted(base.rglob("*.py"), key=lambda p: str(p.relative_to(base))):
        hasher.update(str(path.relative_to(base)).encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(path.read_bytes())
        hasher.update(b"\x00")
    fingerprint = hasher.hexdigest()
    _FINGERPRINT_CACHE[key] = fingerprint
    return fingerprint


def experiment_key(
    experiment_id: str,
    preset: str,
    config: Any,
    seed: Optional[int],
) -> str:
    """Key for one whole experiment run (the ``run_all`` artifact unit)."""
    return "exp:" + digest(
        [
            STORE_SCHEMA_VERSION,
            code_fingerprint(),
            experiment_id,
            preset,
            config_digest(config),
            seed,
        ]
    )


def task_key(
    fn: Callable[..., Any],
    args: Any = (),
    kwargs: Optional[Mapping[str, Any]] = None,
    seed: Optional[int] = None,
) -> str:
    """Key for one fabric task — the sweep-cell unit of caching.

    The ``(args, kwargs)`` pair plays the role of the experiment
    config; the function's qualified name plays the experiment id.
    Raises :class:`UnkeyableError` when any argument is not canonically
    encodable (the fabric then runs the task uncached).
    """
    return "task:" + digest(
        [
            STORE_SCHEMA_VERSION,
            code_fingerprint(),
            _fn_ref(fn),
            config_digest([canonical(args), canonical(dict(kwargs or {}))]),
            seed,
        ]
    )


def checkpoint_key(tag: str, config: Any, seed: Optional[int]) -> str:
    """Key for an in-progress training checkpoint (cleared on success)."""
    return "ckpt:" + digest(
        [
            STORE_SCHEMA_VERSION,
            code_fingerprint(),
            tag,
            config_digest(config),
            seed,
        ]
    )
