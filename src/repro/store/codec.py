"""Tagged JSON codec: exact round-trips for experiment result objects.

The store holds JSON values, but experiment results are (frozen)
dataclasses of tuples, enums and numpy scalars/arrays.  This codec
encodes such objects into plain JSON with explicit type tags and
decodes them back to *equal* objects — bit-exact for floats (JSON
round-trips finite doubles exactly via ``repr``), shape/dtype-exact for
numpy arrays, type-exact for dataclasses and enums.  That exactness is
what makes a cache hit byte-identical to a cold run once the result is
re-rendered and re-serialized.

Only types under the ``repro``/``tests``/``benchmarks`` namespaces (or
stdlib enums) are reconstructed; anything else raises
:class:`CodecError` at encode time, so unsupported payloads fail loudly
instead of caching garbage.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
from typing import Any, Dict, Mapping

import numpy as np

from ..errors import ReproError

__all__ = ["CodecError", "encode", "decode"]

#: Tag vocabulary.  Kept terse: checkpoints serialize whole replay
#: buffers through this codec.
_TUPLE = "__tuple__"
_SET = "__set__"
_FROZENSET = "__frozenset__"
_DATACLASS = "__dc__"
_ENUM = "__enum__"
_NDARRAY = "__nd__"
_NPSCALAR = "__np__"
_DICT = "__dict__"
_TAGS = (_TUPLE, _SET, _FROZENSET, _DATACLASS, _ENUM, _NDARRAY, _NPSCALAR, _DICT)


class CodecError(ReproError):
    """A value cannot be encoded (or decoded) by the store codec."""


def encode(value: Any) -> Any:
    """Encode ``value`` into a plain-JSON structure with type tags."""
    if value is None or isinstance(value, (bool, int, str, float)):
        return value
    if isinstance(value, enum.Enum):
        return {_ENUM: _type_ref(type(value)), "v": encode(value.value)}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            _DATACLASS: _type_ref(type(value)),
            "f": {
                f.name: encode(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, tuple):
        return {_TUPLE: [encode(item) for item in value]}
    if isinstance(value, list):
        return [encode(item) for item in value]
    if isinstance(value, (set, frozenset)):
        tag = _FROZENSET if isinstance(value, frozenset) else _SET
        from .keys import canonical_repr

        items = sorted((encode(item) for item in value), key=canonical_repr)
        return {tag: items}
    if isinstance(value, Mapping):
        if all(isinstance(k, str) for k in value) and not (
            set(value) & set(_TAGS)
        ):
            return {str(k): encode(v) for k, v in value.items()}
        return {_DICT: [[encode(k), encode(v)] for k, v in value.items()]}
    if isinstance(value, np.ndarray):
        return {
            _NDARRAY: str(value.dtype),
            "shape": list(value.shape),
            "data": value.ravel().tolist(),
        }
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return {_NPSCALAR: value.dtype.name, "v": value.item()}
    raise CodecError(
        f"cannot encode {type(value).__module__}.{type(value).__qualname__} "
        "for the result store"
    )


def decode(value: Any) -> Any:
    """Invert :func:`encode`."""
    if value is None or isinstance(value, (bool, int, str, float)):
        return value
    if isinstance(value, list):
        return [decode(item) for item in value]
    if isinstance(value, dict):
        if _TUPLE in value:
            return tuple(decode(item) for item in value[_TUPLE])
        if _SET in value:
            return set(decode(item) for item in value[_SET])
        if _FROZENSET in value:
            return frozenset(decode(item) for item in value[_FROZENSET])
        if _ENUM in value:
            return _resolve(value[_ENUM])(decode(value["v"]))
        if _DATACLASS in value:
            return _build_dataclass(
                _resolve(value[_DATACLASS]),
                {k: decode(v) for k, v in value["f"].items()},
            )
        if _NDARRAY in value:
            array = np.asarray(
                decode(value["data"]), dtype=np.dtype(value[_NDARRAY])
            )
            return array.reshape(tuple(value["shape"]))
        if _NPSCALAR in value:
            return np.dtype(value[_NPSCALAR]).type(value["v"])
        if _DICT in value:
            return {decode(k): decode(v) for k, v in value[_DICT]}
        return {k: decode(v) for k, v in value.items()}
    raise CodecError(f"cannot decode stored value of type {type(value).__name__}")


def _type_ref(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


_ALLOWED_MODULE_PREFIXES = ("repro.", "tests.", "benchmarks.", "enum", "test_", "bench_")


def _resolve(ref: str) -> type:
    module_name, _, qualname = ref.partition(":")
    if not (
        module_name.startswith(_ALLOWED_MODULE_PREFIXES)
        or module_name in ("repro", "tests", "benchmarks", "conftest", "__main__")
    ):
        raise CodecError(f"refusing to resolve type outside repro: {ref}")
    try:
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as exc:
        raise CodecError(f"cannot resolve stored type {ref}: {exc}") from exc
    if not isinstance(obj, type):
        raise CodecError(f"stored type ref {ref} is not a class")
    return obj


def _build_dataclass(cls: type, fields: Dict[str, Any]) -> Any:
    if not dataclasses.is_dataclass(cls):
        raise CodecError(f"{cls!r} is not a dataclass")
    init_fields = {f.name for f in dataclasses.fields(cls) if f.init}
    instance = cls(**{k: v for k, v in fields.items() if k in init_fields})
    for name, value in fields.items():
        if name not in init_fields:
            object.__setattr__(instance, name, value)
    return instance
