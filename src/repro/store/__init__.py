"""``repro.store`` — content-addressed result store with resumable runs.

The memoization layer behind warm ``parole run-all --cache DIR`` re-runs
and crash-resume: a zero-dependency, disk-backed
:class:`~repro.store.result_store.ResultStore` (atomic writes, JSON
payloads, an index file, size/age eviction), cache keys derived from
``(store schema version, code fingerprint, experiment id, effort
preset, config hash, seed)`` (:mod:`repro.store.keys`), an exact
round-trip codec for result dataclasses (:mod:`repro.store.codec`) and
periodic DQN training checkpoints
(:class:`~repro.store.checkpoint.TrainingCheckpointer`).

See ``docs/store.md`` for key anatomy, invalidation rules and a resume
walkthrough.
"""

from .codec import CodecError, decode, encode
from .keys import (
    STORE_SCHEMA_VERSION,
    UnkeyableError,
    canonical,
    checkpoint_key,
    code_fingerprint,
    config_digest,
    digest,
    experiment_key,
    task_key,
)
from .result_store import ResultStore, StoreError, StoreStats
from .checkpoint import CHECKPOINT_SCHEMA, TrainingCheckpointer

__all__ = [
    "STORE_SCHEMA_VERSION",
    "CHECKPOINT_SCHEMA",
    "UnkeyableError",
    "CodecError",
    "StoreError",
    "ResultStore",
    "StoreStats",
    "TrainingCheckpointer",
    "canonical",
    "checkpoint_key",
    "code_fingerprint",
    "config_digest",
    "decode",
    "digest",
    "encode",
    "experiment_key",
    "task_key",
]
