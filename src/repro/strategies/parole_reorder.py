"""The PAROLE attack re-homed as the reference strategy plug-in.

Wraps :class:`~repro.core.parole.ParoleAttack` (arbitrage pre-check +
GENTRANSEQ DQN reordering) behind the :class:`~repro.strategies.base.
BaseStrategy` contract.  The action is a pure permutation — exactly the
capability the paper's adversarial aggregator has — and profit accrues
to the IFU accounts, which is why :meth:`beneficiaries` reports the
IFUs rather than adversary-funded accounts.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..config import AttackConfig, GenTranSeqConfig
from ..core.parole import ParoleAttack
from ..rollup.state import L2State
from .base import BaseStrategy, MempoolView, StrategyAction


class ParoleReorderStrategy(BaseStrategy):
    """GENTRANSEQ permute-only reordering in favor of the IFUs."""

    name = "parole-reorder"
    description = (
        "PAROLE reference plug-in: GENTRANSEQ permute-only reordering "
        "favoring the IFUs"
    )

    def __init__(
        self,
        ifus: Sequence[str] = (),
        seed: int = 0,
        episodes: int = 3,
        steps_per_episode: int = 24,
        objective_name: str = "mean",
        attack: Optional[ParoleAttack] = None,
    ) -> None:
        if attack is None:
            attack = ParoleAttack(
                config=AttackConfig(
                    ifu_accounts=tuple(ifus),
                    gentranseq=GenTranSeqConfig(
                        episodes=episodes,
                        steps_per_episode=steps_per_episode,
                        seed=seed,
                    ),
                ),
                objective_name=objective_name,
            )
        self.attack = attack

    def beneficiaries(self) -> Tuple[str, ...]:
        return self.attack.ifus

    def observe(self, pre_state: L2State, view: MempoolView) -> StrategyAction:
        outcome = self.attack.run(pre_state, view.transactions)
        return StrategyAction.permutation(outcome.executed_sequence)
