"""The adversary strategy protocol: observe a mempool view, emit an action.

PAROLE's pairwise-swap reordering is one MEV strategy among several
(PAPERS.md): sandwich insertion in private L2 mempools, revert-based
claim spam on fast-finality rollups, speculative backruns on observed-
but-unconfirmed state.  This module defines the contract every strategy
plug-in implements so the adversarial aggregator can host any of them
behind one *generalized* safety check:

* :class:`MempoolView` — what the aggregator shows the strategy: the
  collected batch, the pending backlog it can observe, and whether the
  view is encrypted (sealed envelopes instead of plaintext txs);
* :class:`StrategyAction` — what the strategy proposes: a full execution
  ``sequence`` plus explicit declarations of every capability it used
  (``permute`` / ``insert`` / ``revert``), so the aggregator can verify
  the action against the declaration instead of silently rejecting
  anything that is not a permutation;
* :func:`validate_action` — the aggregator-side check: victim
  transactions are conserved as a multiset, insertions are authored by
  the strategy's declared accounts and declared as insertions, revert
  marks reference the strategy's own inserted transactions.

A strategy that fails validation degrades the round to the honest order
(and bumps the ``aggregator.reorderer_rejected`` counter), exactly like
the old permute-only check did.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, FrozenSet, Iterable, Sequence, Tuple

from ..errors import ReproError
from ..rollup.transaction import NFTTransaction

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..rollup.state import L2State

#: Legacy signature of a permute-only reordering callable
#: (pre-state, collected txs) -> new order.  Kept as the adapter input of
#: :class:`ReordererStrategy`; new code implements :class:`Strategy`.
Reorderer = Callable[
    ["L2State", Sequence[NFTTransaction]], Sequence[NFTTransaction]
]

#: The action taxonomy a strategy may declare.
ACTION_KINDS: FrozenSet[str] = frozenset({"permute", "insert", "revert"})


@dataclass(frozen=True)
class MempoolView:
    """What one strategy invocation is allowed to observe.

    ``transactions`` is the collected batch the aggregator must order;
    ``pending`` is the backlog still sitting in the mempool (observed
    but *unconfirmed* — the speculation surface of optimistic
    backrunning).  Under an encrypting defense both are sealed
    stand-ins: fee metadata survives, senders and kinds do not.
    """

    transactions: Tuple[NFTTransaction, ...]
    pending: Tuple[NFTTransaction, ...] = ()
    encrypted: bool = False
    round_index: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "transactions", tuple(self.transactions))
        object.__setattr__(self, "pending", tuple(self.pending))


@dataclass(frozen=True)
class StrategyAction:
    """One strategy's proposal for a collected batch.

    ``sequence`` is the complete execution order (victims plus any
    insertions).  ``inserted`` lists the adversary-authored transactions
    the sequence contains beyond the collected batch; ``revert_marked``
    lists tx hashes of *inserted* transactions the strategy expects to
    lose and revert (duplicate-claim spam).  ``kinds`` declares which
    capabilities the action uses — the aggregator verifies content
    against declaration in :func:`validate_action`.
    """

    sequence: Tuple[NFTTransaction, ...]
    inserted: Tuple[NFTTransaction, ...] = ()
    revert_marked: Tuple[str, ...] = ()
    kinds: Tuple[str, ...] = ("permute",)

    def __post_init__(self) -> None:
        object.__setattr__(self, "sequence", tuple(self.sequence))
        object.__setattr__(self, "inserted", tuple(self.inserted))
        object.__setattr__(self, "revert_marked", tuple(self.revert_marked))
        object.__setattr__(self, "kinds", tuple(self.kinds))
        unknown = set(self.kinds) - ACTION_KINDS
        if unknown:
            raise ReproError(
                f"unknown action kind(s) {sorted(unknown)}; "
                f"valid kinds: {sorted(ACTION_KINDS)}"
            )

    @classmethod
    def permutation(
        cls, sequence: Iterable[NFTTransaction]
    ) -> "StrategyAction":
        """A pure reordering (or the identity) of the collected batch."""
        return cls(sequence=tuple(sequence))


@dataclass(frozen=True)
class StrategyAccount:
    """One adversary-controlled account a strategy needs funded.

    The matrix runner funds these on the rollup *before* the invariant
    checker snapshots its conservation baselines, and measures profit as
    the wealth delta of the strategy's beneficiaries.
    """

    address: str
    balance_eth: float = 0.0

    def __post_init__(self) -> None:
        if not self.address:
            raise ReproError("strategy account needs an address")
        if self.balance_eth < 0:
            raise ReproError("strategy account funding cannot be negative")


@dataclass(frozen=True)
class ActionVerdict:
    """Outcome of validating one action against its declaration."""

    ok: bool
    reason: str = ""


def validate_action(
    collected: Sequence[NFTTransaction],
    action: StrategyAction,
    allowed_senders: FrozenSet[str] = frozenset(),
) -> ActionVerdict:
    """The aggregator's generalized safety check.

    Replaces the old "permutation or reject" rule: an action is valid
    iff every capability it *uses* it also *declares*, every collected
    (victim) transaction survives exactly once, every insertion is
    authored by one of the strategy's declared accounts, and every
    revert mark references one of its own insertions.
    """
    kinds = set(action.kinds)
    if action.inserted and "insert" not in kinds:
        return ActionVerdict(False, "undeclared insertion")
    if action.revert_marked and "revert" not in kinds:
        return ActionVerdict(False, "undeclared revert marks")
    for tx in action.inserted:
        if tx.sender not in allowed_senders:
            return ActionVerdict(
                False,
                f"inserted tx from undeclared account {tx.sender!r}",
            )
    # Split the proposed sequence into insertions and the victim
    # subsequence (multiset-aware: an "insertion" that merely duplicates
    # a victim hash is caught as a conservation failure).
    budget = Counter(tx.tx_hash for tx in action.inserted)
    victim_hashes = []
    for tx in action.sequence:
        if budget.get(tx.tx_hash, 0) > 0:
            budget[tx.tx_hash] -= 1
        else:
            victim_hashes.append(tx.tx_hash)
    if any(budget.values()):
        return ActionVerdict(
            False, "declared insertion missing from the sequence"
        )
    if sorted(victim_hashes) != sorted(tx.tx_hash for tx in collected):
        return ActionVerdict(
            False, "collected transactions not conserved by the sequence"
        )
    inserted_hashes = {tx.tx_hash for tx in action.inserted}
    for tx_hash in action.revert_marked:
        if tx_hash not in inserted_hashes:
            return ActionVerdict(
                False,
                "revert mark must reference one of the strategy's own "
                "insertions",
            )
    return ActionVerdict(True)


class BaseStrategy:
    """Convenience base class for strategy plug-ins.

    The protocol itself is structural: anything with ``name``,
    ``accounts()``, ``beneficiaries()`` and ``observe()`` is a strategy.
    Subclass this to get sensible defaults (no accounts, beneficiaries =
    account addresses) and the honest-action helper.
    """

    #: Registry name (kebab-case).
    name: str = "base"
    #: One-line description shown by ``list_strategies()``.
    description: str = ""

    def accounts(self) -> Tuple[StrategyAccount, ...]:
        """Adversary accounts the deployment must fund for this strategy."""
        return ()

    def beneficiaries(self) -> Tuple[str, ...]:
        """Addresses whose wealth delta measures this strategy's profit."""
        return tuple(account.address for account in self.accounts())

    def observe(
        self, pre_state: "L2State", view: MempoolView
    ) -> StrategyAction:
        """Produce an action for one collected batch."""
        raise NotImplementedError

    @staticmethod
    def honest(view: MempoolView) -> StrategyAction:
        """The identity action: execute the batch as collected."""
        return StrategyAction.permutation(view.transactions)


class HonestStrategy(BaseStrategy):
    """The no-op baseline: every batch executes in collected order."""

    name = "honest"
    description = "baseline: execute every batch in collected order"

    def observe(
        self, pre_state: "L2State", view: MempoolView
    ) -> StrategyAction:
        return self.honest(view)


class ReordererStrategy(BaseStrategy):
    """Adapter wrapping a legacy permute-only :data:`Reorderer` callable.

    This is what the ``AdversarialAggregator(reorderer=...)`` deprecation
    shim constructs: the callable's output is declared as a pure
    permutation, so the generalized check enforces exactly the old
    permute-only contract (drops or injections fall back to honest).
    """

    description = "legacy permute-only reorderer callable"

    def __init__(
        self,
        reorderer: Reorderer,
        name: str = "reorderer",
        beneficiaries: Tuple[str, ...] = (),
    ) -> None:
        self.reorderer = reorderer
        self.name = name
        self._beneficiaries = tuple(beneficiaries)

    def beneficiaries(self) -> Tuple[str, ...]:
        return self._beneficiaries

    def observe(
        self, pre_state: "L2State", view: MempoolView
    ) -> StrategyAction:
        return StrategyAction.permutation(
            self.reorderer(pre_state, view.transactions)
        )
