"""The strategy registry: named factories the matrix and API resolve.

Third-party plug-ins register a *factory* (not an instance): every
matrix cell constructs a fresh strategy from a :class:`StrategyContext`
(who the IFUs are, the cell seed, the effort preset, the opening unit
price) so no state leaks between cells and the whole grid stays a pure
function of ``(config, seed)``.

The shipped strategies are registered lazily — their modules import
only when first constructed — so importing :mod:`repro.strategies`
stays cheap and cycle-free from inside :mod:`repro.rollup`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Tuple

from ..errors import ReproError
from .base import BaseStrategy


@dataclass(frozen=True)
class StrategyContext:
    """Everything a factory may condition on when building a strategy."""

    #: The illicitly favored users of the deployment (reference plug-in).
    ifus: Tuple[str, ...] = ()
    seed: int = 0
    #: Effort preset name ("quick" or "full") — scales training budgets.
    preset: str = "quick"
    #: Unit price of the collection at cell start (sizes bankrolls).
    initial_price: float = 0.2


#: A factory builds one fresh strategy instance per cell.
StrategyFactory = Callable[[StrategyContext], BaseStrategy]


@dataclass(frozen=True)
class StrategyInfo:
    """One registry entry: name, description, factory."""

    name: str
    description: str
    factory: StrategyFactory


class StrategyRegistry:
    """Insertion-ordered name -> factory mapping."""

    def __init__(self) -> None:
        self._entries: Dict[str, StrategyInfo] = {}

    def register(
        self, name: str, description: str, factory: StrategyFactory
    ) -> None:
        """Add (or replace) a named strategy factory."""
        if not name:
            raise ReproError("strategy name cannot be empty")
        self._entries[name] = StrategyInfo(
            name=name, description=description, factory=factory
        )

    def names(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    def list(self) -> List[StrategyInfo]:
        """Every entry, in registration order."""
        return list(self._entries.values())

    def info(self, name: str) -> StrategyInfo:
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self._entries)
            raise ReproError(
                f"unknown strategy {name!r} (known: {known})"
            ) from None

    def create(
        self, name: str, context: StrategyContext = StrategyContext()
    ) -> BaseStrategy:
        """Build a fresh instance of the named strategy."""
        return self.info(name).factory(context)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[StrategyInfo]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


# --------------------------------------------------------------------- #
# Shipped strategies (factories import lazily to keep this module free
# of heavy imports — repro.rollup.aggregator imports this package).
# --------------------------------------------------------------------- #


def _honest(context: StrategyContext) -> BaseStrategy:
    from .base import HonestStrategy

    return HonestStrategy()


def _parole_reorder(context: StrategyContext) -> BaseStrategy:
    from .parole_reorder import ParoleReorderStrategy

    episodes, steps = (12, 80) if context.preset == "full" else (3, 24)
    return ParoleReorderStrategy(
        ifus=context.ifus,
        seed=context.seed,
        episodes=episodes,
        steps_per_episode=steps,
    )


def _sandwich(context: StrategyContext) -> BaseStrategy:
    from .sandwich import SandwichStrategy

    return SandwichStrategy(seed=context.seed)


def _revert_spam(context: StrategyContext) -> BaseStrategy:
    from .revert_spam import RevertSpamStrategy

    # Bankroll just above one claim at the opening price: the first
    # duplicate wins, every other duplicate loses and reverts.
    return RevertSpamStrategy(
        bankroll_eth=round(context.initial_price * 1.4, 9),
        seed=context.seed,
    )


def _optimistic_backrun(context: StrategyContext) -> BaseStrategy:
    from .backrun import OptimisticBackrunStrategy

    return OptimisticBackrunStrategy(seed=context.seed)


def default_strategies() -> StrategyRegistry:
    """A fresh registry holding every shipped strategy."""
    registry = StrategyRegistry()
    registry.register(
        "honest",
        "baseline: execute every batch in collected order",
        _honest,
    )
    registry.register(
        "parole-reorder",
        "PAROLE reference plug-in: GENTRANSEQ permute-only reordering "
        "favoring the IFUs",
        _parole_reorder,
    )
    registry.register(
        "sandwich",
        "front-run/back-run insertion around victim NFT buys",
        _sandwich,
    )
    registry.register(
        "revert-spam",
        "duplicate-claim spam: losers revert, paying fees for priority",
        _revert_spam,
    )
    registry.register(
        "optimistic-backrun",
        "speculative backruns on observed-but-unconfirmed pending state",
        _optimistic_backrun,
    )
    return registry


#: The process-wide default registry (what the API facade and the matrix
#: resolve names against).  Third-party code may register into it.
STRATEGIES: StrategyRegistry = default_strategies()
