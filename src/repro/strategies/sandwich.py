"""Sandwich insertion around victim NFT buys (private-L2-mempool MEV).

Grounded in "How to Serve Your Sandwich? MEV Attacks in Private L2
Mempools" (PAPERS.md): under scarcity pricing (Eq. 10) every executed
mint shrinks the remaining supply and lifts the collection's unit
price, so a batch of victim mints is a price ramp the adversary can
straddle —

* **front-run**: mint *before* the first victim buy, paying the still-
  low pre-ramp price;
* **back-run**: after the last victim buy, sell the adversary's
  inventory to a second adversary account at the now-inflated price,
  realizing the appreciation as ETH in the primary account.

Profit is measured over the *pair* of adversary accounts (the back-run
transfer moves wealth between them; what the sandwich extracts is the
price ramp itself).  Under an encrypting defense the view contains
sealed stand-ins with no visible mints, so the strategy degrades to the
honest action — exactly the protection such mempools claim.
"""

from __future__ import annotations

from typing import List, Tuple

from ..rollup.state import L2State
from ..rollup.transaction import NFTTransaction, TxKind
from .base import BaseStrategy, MempoolView, StrategyAccount, StrategyAction


class SandwichStrategy(BaseStrategy):
    """Front-run/back-run insertion around victim mint ramps."""

    name = "sandwich"
    description = "front-run/back-run insertion around victim NFT buys"

    def __init__(
        self,
        account: str = "sandwich-attacker",
        exit_account: str = "sandwich-exit",
        balance_eth: float = 40.0,
        #: Priority fee bid on inserted transactions.  Deliberately a
        #: *fixed budget*: under a fee-auction defense the insertions
        #: compete on fee and usually lose their position.
        fee_bid: float = 0.4,
        #: Victim mints needed before a sandwich is worth inserting.
        min_victim_mints: int = 2,
        seed: int = 0,
    ) -> None:
        self.account = account
        self.exit_account = exit_account
        self.balance_eth = float(balance_eth)
        self.fee_bid = float(fee_bid)
        self.min_victim_mints = int(min_victim_mints)
        self.seed = int(seed)
        self._counter = 0
        self.sandwiches = 0

    def accounts(self) -> Tuple[StrategyAccount, ...]:
        return (
            StrategyAccount(self.account, self.balance_eth),
            StrategyAccount(self.exit_account, self.balance_eth),
        )

    def _mint(self, label: str) -> NFTTransaction:
        self._counter += 1
        return NFTTransaction(
            kind=TxKind.MINT,
            sender=self.account,
            base_fee=1.0,
            priority_fee=self.fee_bid,
            nonce=self._counter,
            label=f"{label}-{self.seed}-{self._counter}",
        )

    def _exit_transfer(self, label: str) -> NFTTransaction:
        self._counter += 1
        return NFTTransaction(
            kind=TxKind.TRANSFER,
            sender=self.account,
            recipient=self.exit_account,
            base_fee=1.0,
            priority_fee=self.fee_bid,
            nonce=self._counter,
            label=f"{label}-{self.seed}-{self._counter}",
        )

    def observe(self, pre_state: L2State, view: MempoolView) -> StrategyAction:
        victims: List[int] = [
            index
            for index, tx in enumerate(view.transactions)
            if tx.kind is TxKind.MINT
            and tx.sender not in (self.account, self.exit_account)
        ]
        if len(victims) < self.min_victim_mints:
            return self.honest(view)
        if pre_state.balance(self.account) < pre_state.unit_price:
            return self.honest(view)
        first, last = victims[0], victims[-1]
        front = self._mint("sandwich-front")
        back = self._exit_transfer("sandwich-back")
        sequence = (
            view.transactions[:first]
            + (front,)
            + view.transactions[first : last + 1]
            + (back,)
            + view.transactions[last + 1 :]
        )
        self.sandwiches += 1
        return StrategyAction(
            sequence=sequence,
            inserted=(front, back),
            kinds=("permute", "insert"),
        )
