"""Speculative backruns on observed-but-unconfirmed state.

Grounded in "Optimistic MEV in Ethereum Layer 2s" (PAPERS.md): on an
optimistic rollup the mempool backlog is visible *before* it is
sequenced, so an adversary can bet on its effect — here, that pending
mints it can observe (``MempoolView.pending``) will execute soon and
lift the scarcity price.  The strategy appends a speculative mint at
the *tail* of the current batch: it buys at this batch's closing price,
expecting the observed backlog to ramp the price next round.

The speculation can misfire — the backlog may contain burns, or may
never be sequenced — which is the defining risk of optimistic MEV.
Under an encrypting defense the pending view is sealed (no visible
mints), so the strategy degrades to honest.
"""

from __future__ import annotations

from typing import Tuple

from ..rollup.state import L2State
from ..rollup.transaction import NFTTransaction, TxKind
from .base import BaseStrategy, MempoolView, StrategyAccount, StrategyAction


class OptimisticBackrunStrategy(BaseStrategy):
    """Tail-insert mints when the observable backlog signals a ramp."""

    name = "optimistic-backrun"
    description = (
        "speculative backruns on observed-but-unconfirmed pending state"
    )

    def __init__(
        self,
        account: str = "backrun-attacker",
        balance_eth: float = 40.0,
        fee_bid: float = 0.3,
        #: Pending mints required before the bet is placed.
        min_pending_mints: int = 2,
        seed: int = 0,
    ) -> None:
        self.account = account
        self.balance_eth = float(balance_eth)
        self.fee_bid = float(fee_bid)
        self.min_pending_mints = int(min_pending_mints)
        self.seed = int(seed)
        self._counter = 0
        self.bets = 0

    def accounts(self) -> Tuple[StrategyAccount, ...]:
        return (StrategyAccount(self.account, self.balance_eth),)

    def observe(self, pre_state: L2State, view: MempoolView) -> StrategyAction:
        pending_mints = sum(
            1
            for tx in view.pending
            if tx.kind is TxKind.MINT and tx.sender != self.account
        )
        if pending_mints < self.min_pending_mints:
            return self.honest(view)
        if pre_state.balance(self.account) < pre_state.unit_price:
            return self.honest(view)
        self._counter += 1
        bet = NFTTransaction(
            kind=TxKind.MINT,
            sender=self.account,
            base_fee=1.0,
            priority_fee=self.fee_bid,
            nonce=self._counter,
            label=f"backrun-bet-{self.seed}-{self._counter}",
        )
        self.bets += 1
        return StrategyAction(
            sequence=view.transactions + (bet,),
            inserted=(bet,),
            kinds=("permute", "insert"),
        )
