"""Revert-based duplicate-claim spam (fast-finality rollup MEV).

Grounded in "When Priority Fails: Revert-Based MEV on Fast-Finality
Rollups" (PAPERS.md): when a scarce claim (here: minting a limited-
edition token at the current scarcity price) is worth more than its
fee, the rational play is to submit *many* duplicate claims at high
priority fee and let the losers revert — each loser pays its fee, the
single winner captures the claim.

The strategy funds one account with a bankroll barely above one claim:
the first duplicate in the sequence executes, every later duplicate
fails the balance check and reverts (STRICT execution records it as
skipped).  Every duplicate is declared up-front via ``revert_marked``,
so the leaderboard can charge the losers' fees against the strategy's
profit — the defining cost of this attack class.
"""

from __future__ import annotations

from typing import Tuple

from ..rollup.state import L2State
from ..rollup.transaction import NFTTransaction, TxKind
from .base import BaseStrategy, MempoolView, StrategyAccount, StrategyAction


class RevertSpamStrategy(BaseStrategy):
    """Duplicate mint claims at the head of every batch."""

    name = "revert-spam"
    description = (
        "duplicate-claim spam: losers revert, paying fees for priority"
    )

    def __init__(
        self,
        account: str = "spam-attacker",
        duplicates: int = 3,
        #: Starting balance — sized for roughly *one* winning claim, so
        #: the remaining duplicates revert by construction.
        bankroll_eth: float = 0.3,
        #: Priority fee on every duplicate (the "paying for priority").
        fee_bid: float = 0.6,
        base_fee: float = 0.05,
        seed: int = 0,
    ) -> None:
        self.account = account
        self.duplicates = int(duplicates)
        self.bankroll_eth = float(bankroll_eth)
        self.fee_bid = float(fee_bid)
        self.base_fee = float(base_fee)
        self.seed = int(seed)
        self._counter = 0

    def accounts(self) -> Tuple[StrategyAccount, ...]:
        return (StrategyAccount(self.account, self.bankroll_eth),)

    def observe(self, pre_state: L2State, view: MempoolView) -> StrategyAction:
        if pre_state.remaining_supply < 1:
            return self.honest(view)
        claims = []
        for _ in range(self.duplicates):
            self._counter += 1
            claims.append(
                NFTTransaction(
                    kind=TxKind.MINT,
                    sender=self.account,
                    base_fee=self.base_fee,
                    priority_fee=self.fee_bid,
                    nonce=self._counter,
                    label=f"spam-claim-{self.seed}-{self._counter}",
                )
            )
        claims = tuple(claims)
        return StrategyAction(
            sequence=claims + view.transactions,
            inserted=claims,
            revert_marked=tuple(tx.tx_hash for tx in claims),
            kinds=("permute", "insert", "revert"),
        )
