"""Adversary strategy plug-ins: the protocol, the registry, the fleet.

See ``docs/strategies.md`` for the protocol contract, the action
taxonomy and the third-party plug-in guide.  The shipped strategies are
exposed lazily (``from repro.strategies import SandwichStrategy`` works,
but importing this package does not pull in the DQN stack), so
:mod:`repro.rollup.aggregator` can depend on the protocol types without
an import cycle.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING

from .base import (
    ACTION_KINDS,
    ActionVerdict,
    BaseStrategy,
    HonestStrategy,
    MempoolView,
    Reorderer,
    ReordererStrategy,
    StrategyAccount,
    StrategyAction,
    validate_action,
)
from .registry import (
    STRATEGIES,
    StrategyContext,
    StrategyInfo,
    StrategyRegistry,
    default_strategies,
)

if TYPE_CHECKING:  # pragma: no cover - static-analysis imports only
    from .backrun import OptimisticBackrunStrategy
    from .parole_reorder import ParoleReorderStrategy
    from .revert_spam import RevertSpamStrategy
    from .sandwich import SandwichStrategy

#: Lazily-imported shipped plug-ins (kept out of the eager import path).
_LAZY = {
    "ParoleReorderStrategy": ".parole_reorder",
    "SandwichStrategy": ".sandwich",
    "RevertSpamStrategy": ".revert_spam",
    "OptimisticBackrunStrategy": ".backrun",
}

__all__ = [
    "ACTION_KINDS",
    "ActionVerdict",
    "BaseStrategy",
    "HonestStrategy",
    "MempoolView",
    "Reorderer",
    "ReordererStrategy",
    "StrategyAccount",
    "StrategyAction",
    "validate_action",
    "STRATEGIES",
    "StrategyContext",
    "StrategyInfo",
    "StrategyRegistry",
    "default_strategies",
    "ParoleReorderStrategy",
    "SandwichStrategy",
    "RevertSpamStrategy",
    "OptimisticBackrunStrategy",
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(module_name, __name__)
    return getattr(module, name)
