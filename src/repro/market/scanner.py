"""The Figure 10 arbitrage scanner.

Section VII-E: "We searched for instances where the same NFT was priced
differently at different times and looked for arbitrage opportunities
among the transactions ... We also calculate the total profit
opportunity by deriving the relation we obtained through our
simulation-based experiments."

The scanner walks each collection's snapshot series, finds price
differentials, and converts them into a per-collection profit
opportunity using the simulation-derived relation: profit per window
scales with the differential (what a reordering can capture) and the
number of reorderable transactions in the window, with the same
diminishing returns in window size that Figure 6 shows for mempool
size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import MarketError
from .nft_collections import Chain, FrequencyTier, SyntheticCollection
from .snapshot import SnapshotStore


@dataclass(frozen=True)
class ArbitrageFinding:
    """One exploitable price differential in a collection's history."""

    contract_address: str
    chain: Chain
    tier: FrequencyTier
    window_start: int
    window_end: int
    price_low: float
    price_high: float
    reorderable_txs: int
    profit_opportunity_eth: float

    @property
    def differential(self) -> float:
        """High minus low price inside the window (ETH)."""
        return self.price_high - self.price_low


@dataclass
class TierSummary:
    """Aggregated profit opportunity for one chain x tier cell."""

    chain: Chain
    tier: FrequencyTier
    collections: int
    findings: int
    total_profit_eth: float

    @property
    def mean_profit_eth(self) -> float:
        """Average profit opportunity per collection."""
        if self.collections == 0:
            return 0.0
        return self.total_profit_eth / self.collections


class ArbitrageScanner:
    """Scans snapshot archives for reordering profit opportunities."""

    def __init__(
        self,
        window: int = 8,
        min_differential_eth: float = 0.01,
        capture_rate: float = 0.35,
    ) -> None:
        if window < 2:
            raise MarketError("scanner window must cover at least 2 snapshots")
        self.window = window
        self.min_differential_eth = min_differential_eth
        #: Fraction of a differential a reordering captures — calibrated
        #: from the simulation experiments (the case studies capture the
        #: full burn-dip of one token; across a batch roughly a third of
        #: the differential is orderable into the IFU's favour).
        self.capture_rate = capture_rate

    def scan_collection(
        self, collection: SyntheticCollection
    ) -> List[ArbitrageFinding]:
        """All windowed findings for one collection."""
        history = collection.price_history
        findings: List[ArbitrageFinding] = []
        txs_per_snapshot = max(
            1, collection.tx_count // max(len(history), 1)
        )
        for start in range(0, max(len(history) - self.window + 1, 0), self.window):
            window_points = history[start : start + self.window]
            prices = [point.price_eth for point in window_points]
            low, high = min(prices), max(prices)
            differential = high - low
            if differential < self.min_differential_eth:
                continue
            reorderable = txs_per_snapshot * len(window_points)
            profit = self._profit_relation(differential, reorderable)
            findings.append(
                ArbitrageFinding(
                    contract_address=collection.address,
                    chain=collection.chain,
                    tier=collection.tier,
                    window_start=window_points[0].timestamp,
                    window_end=window_points[-1].timestamp,
                    price_low=low,
                    price_high=high,
                    reorderable_txs=reorderable,
                    profit_opportunity_eth=profit,
                )
            )
        return findings

    def _profit_relation(self, differential: float, reorderable_txs: int) -> float:
        """The simulation-derived relation: captured differential with
        log-diminishing returns in batch size (mirrors Figure 6's
        mempool-size convergence)."""
        batch_factor = math.log1p(reorderable_txs) / math.log1p(50)
        return self.capture_rate * differential * min(batch_factor, 2.0)

    def scan(self, store: SnapshotStore) -> List[ArbitrageFinding]:
        """Scan the whole archive."""
        findings: List[ArbitrageFinding] = []
        for collection in store:
            findings.extend(self.scan_collection(collection))
        return findings

    def summarize(self, store: SnapshotStore) -> List[TierSummary]:
        """Figure 10's cells: profit opportunity per chain x tier."""
        cells: Dict[Tuple[Chain, FrequencyTier], TierSummary] = {}
        for chain in Chain:
            for tier in FrequencyTier:
                cells[(chain, tier)] = TierSummary(
                    chain=chain,
                    tier=tier,
                    collections=0,
                    findings=0,
                    total_profit_eth=0.0,
                )
        counted: set = set()
        for collection in store:
            key = (collection.chain, collection.tier)
            if collection.address not in counted:
                cells[key].collections += 1
                counted.add(collection.address)
            for finding in self.scan_collection(collection):
                cells[key].findings += 1
                cells[key].total_profit_eth += finding.profit_opportunity_eth
        return list(cells.values())
