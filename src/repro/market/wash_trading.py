"""Wash-trading detection over marketplace sale records.

The paper's related work (Section III) leans on the NFT wash-trading
literature — artificial volume from tokens cycling among colluding
wallets.  Since our marketplace produces full sale logs, we include the
standard graph-based detector as an extension: build the directed trade
graph per token, flag (a) tokens that return to a previous owner within
a window (closed cycles) and (b) tight wallet clusters whose internal
volume dwarfs their external trade.

Built on ``networkx`` (an allowed dependency); used by tests and the
``parole``-adjacent market tooling, not by the attack itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import networkx as nx

from ..errors import MarketError
from .opensea import SaleRecord


@dataclass(frozen=True)
class WashCycle:
    """A token that returned to a previous owner."""

    token_id: int
    wallets: Tuple[str, ...]
    sale_blocks: Tuple[int, ...]
    volume_eth: float

    @property
    def length(self) -> int:
        """Number of sales in the cycle."""
        return len(self.sale_blocks)


@dataclass(frozen=True)
class WashReport:
    """Full detector output."""

    cycles: Tuple[WashCycle, ...]
    suspicious_wallets: Tuple[str, ...]
    artificial_volume_eth: float
    total_volume_eth: float

    @property
    def artificial_fraction(self) -> float:
        """Share of volume attributed to wash cycles."""
        if self.total_volume_eth == 0.0:
            return 0.0
        return self.artificial_volume_eth / self.total_volume_eth


class WashTradeDetector:
    """Cycle- and cluster-based wash-trade flagging."""

    def __init__(
        self,
        max_cycle_blocks: int = 1000,
        min_cluster_internal_fraction: float = 0.75,
    ) -> None:
        if max_cycle_blocks <= 0:
            raise MarketError("max_cycle_blocks must be positive")
        self.max_cycle_blocks = max_cycle_blocks
        self.min_cluster_internal_fraction = min_cluster_internal_fraction

    # ------------------------------------------------------------------ #

    def trade_graph(self, sales: Sequence[SaleRecord]) -> nx.MultiDiGraph:
        """Directed multigraph: one edge per sale, seller -> buyer."""
        graph = nx.MultiDiGraph()
        for sale in sales:
            graph.add_edge(
                sale.seller,
                sale.buyer,
                token_id=sale.token_id,
                price=sale.price_eth,
                block=sale.block_number,
            )
        return graph

    def find_cycles(self, sales: Sequence[SaleRecord]) -> List[WashCycle]:
        """Tokens that re-enter a previous owner within the block window."""
        per_token: Dict[int, List[SaleRecord]] = {}
        for sale in sorted(sales, key=lambda s: s.block_number):
            per_token.setdefault(sale.token_id, []).append(sale)
        cycles: List[WashCycle] = []
        for token_id, history in per_token.items():
            owners_seen: Dict[str, int] = {}
            path: List[SaleRecord] = []
            for sale in history:
                path.append(sale)
                owners_seen.setdefault(sale.seller, sale.block_number)
                if sale.buyer in owners_seen:
                    window = sale.block_number - owners_seen[sale.buyer]
                    if window <= self.max_cycle_blocks:
                        cycle_sales = [
                            s for s in path
                            if s.block_number >= owners_seen[sale.buyer]
                        ]
                        cycles.append(
                            WashCycle(
                                token_id=token_id,
                                wallets=tuple(
                                    dict.fromkeys(
                                        [s.seller for s in cycle_sales]
                                        + [cycle_sales[-1].buyer]
                                    )
                                ),
                                sale_blocks=tuple(
                                    s.block_number for s in cycle_sales
                                ),
                                volume_eth=sum(
                                    s.price_eth for s in cycle_sales
                                ),
                            )
                        )
                    # Reset tracking after a flagged return.
                    owners_seen = {sale.buyer: sale.block_number}
                    path = []
        return cycles

    def suspicious_clusters(
        self, sales: Sequence[SaleRecord]
    ) -> List[Set[str]]:
        """Wallet groups whose trade volume is overwhelmingly internal."""
        graph = self.trade_graph(sales)
        if graph.number_of_nodes() == 0:
            return []
        undirected = graph.to_undirected()
        clusters: List[Set[str]] = []
        for component in nx.connected_components(undirected):
            if len(component) < 2:
                continue
            internal = external = 0.0
            for seller, buyer, data in graph.edges(data=True):
                if seller in component and buyer in component:
                    internal += data["price"]
                elif seller in component or buyer in component:
                    external += data["price"]
            total = internal + external
            if total > 0 and internal / total >= self.min_cluster_internal_fraction:
                # Only flag components that actually cycle, not simple
                # chains of one-way sales.
                subgraph = graph.subgraph(component)
                if any(True for _ in nx.simple_cycles(nx.DiGraph(subgraph))):
                    clusters.append(set(component))
        return clusters

    def inspect(self, sales: Sequence[SaleRecord]) -> WashReport:
        """Full report over a sale log."""
        cycles = self.find_cycles(sales)
        clusters = self.suspicious_clusters(sales)
        suspicious: Set[str] = set()
        for cycle in cycles:
            suspicious.update(cycle.wallets)
        for cluster in clusters:
            suspicious.update(cluster)
        artificial = sum(cycle.volume_eth for cycle in cycles)
        total = sum(sale.price_eth for sale in sales)
        return WashReport(
            cycles=tuple(cycles),
            suspicious_wallets=tuple(sorted(suspicious)),
            artificial_volume_eth=artificial,
            total_volume_eth=total,
        )
