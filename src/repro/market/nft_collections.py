"""Synthetic NFT collections for the Figure 10 snapshot study.

The paper scraped historical snapshots of NFTs deployed through the
Optimism and Arbitrum mainchains and bucketed them by transaction
frequency (FT): LFT (< 100 ownerships), MFT (101-3000) and HFT (> 3000).
We cannot scrape, so this module generates collections whose statistics
match the study's observables:

* ownership counts drawn per tier;
* scarcity-anchored price paths (Eq. 10 baseline) with tier- and
  chain-dependent volatility — Arbitrum collections churn harder, which
  is what drives the paper's "higher arbitrage opportunity with the NFTs
  deployed via the Arbitrum chain" observation;
* per-event transaction history (mint/transfer/burn mix).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import SnapshotStudyConfig
from ..crypto import hash_value
from ..errors import MarketError
from ..tokens import ScarcityPricing


class Chain(enum.Enum):
    """The optimistic-rollup mainchains of the study."""

    OPTIMISM = "optimism"
    ARBITRUM = "arbitrum"


class FrequencyTier(enum.Enum):
    """Transaction-frequency tiers (Figure 10's x-axis groups)."""

    LFT = "lft"
    MFT = "mft"
    HFT = "hft"


#: Per-chain churn multiplier: Arbitrum's NFT turnover is markedly higher
#: (the paper highlights it), which widens its price differentials.
CHAIN_CHURN: Dict[Chain, float] = {Chain.OPTIMISM: 1.0, Chain.ARBITRUM: 1.55}

#: Per-tier relative price volatility: thin (LFT) markets move the most
#: per trade; deep (HFT) markets are liquid but trade far more often.
TIER_VOLATILITY: Dict[FrequencyTier, float] = {
    FrequencyTier.LFT: 0.18,
    FrequencyTier.MFT: 0.10,
    FrequencyTier.HFT: 0.05,
}


@dataclass(frozen=True)
class PricePoint:
    """One observed (time, price) sample of a collection."""

    timestamp: int
    price_eth: float


@dataclass
class SyntheticCollection:
    """A generated NFT collection with its trading history."""

    address: str
    chain: Chain
    tier: FrequencyTier
    owners: int
    max_supply: int
    initial_price_eth: float
    price_history: List[PricePoint] = field(default_factory=list)
    tx_count: int = 0

    @property
    def short_address(self) -> str:
        """Paper-style abbreviation, e.g. ``0x7A..c8e``."""
        return self.address[:4] + ".." + self.address[-3:]

    def price_range(self) -> Tuple[float, float]:
        """(min, max) observed price."""
        prices = [point.price_eth for point in self.price_history]
        if not prices:
            raise MarketError(f"collection {self.short_address} has no history")
        return min(prices), max(prices)

    def max_differential(self) -> float:
        """Largest same-NFT price difference across snapshots (ETH)."""
        low, high = self.price_range()
        return high - low


def _owners_for_tier(
    tier: FrequencyTier, config: SnapshotStudyConfig, rng: np.random.Generator
) -> int:
    if tier is FrequencyTier.LFT:
        return int(rng.integers(10, config.lft_max_owners))
    if tier is FrequencyTier.MFT:
        return int(rng.integers(config.lft_max_owners + 1, config.mft_max_owners))
    return int(rng.integers(config.mft_max_owners + 1, 12_000))


def generate_collection(
    chain: Chain,
    tier: FrequencyTier,
    rng: np.random.Generator,
    config: Optional[SnapshotStudyConfig] = None,
    snapshots: int = 64,
) -> SyntheticCollection:
    """Generate one collection with a scarcity-anchored price path.

    The price path follows Eq. 10 applied to a mean-reverting random
    walk of the remaining supply, with multiplicative noise scaled by
    tier volatility and chain churn.
    """
    cfg = config or SnapshotStudyConfig()
    owners = _owners_for_tier(tier, cfg, rng)
    max_supply = max(owners * 2, 16)
    initial_price = float(rng.uniform(0.05, 0.5))
    pricing = ScarcityPricing(max_supply=max_supply, initial_price_eth=initial_price)
    address = "0x" + hash_value(
        ["collection", chain.value, tier.value, owners, initial_price]
    )[:40]

    volatility = TIER_VOLATILITY[tier] * CHAIN_CHURN[chain]
    # Remaining supply starts near half and random-walks with churn.
    remaining = max_supply - owners
    remaining = max(1, remaining)
    history: List[PricePoint] = []
    tx_count = 0
    for step in range(snapshots):
        drift = int(rng.integers(-2, 3) * CHAIN_CHURN[chain])
        remaining = int(np.clip(remaining + drift, 1, max_supply - 1))
        base_price = pricing.price(remaining)
        noise = float(rng.normal(0.0, volatility))
        price = max(0.001, base_price * (1.0 + noise))
        history.append(PricePoint(timestamp=step, price_eth=price))
        # Transactions per snapshot window scale with ownership depth.
        tx_count += int(max(1, rng.poisson(owners / 50 + 1) * CHAIN_CHURN[chain]))
    return SyntheticCollection(
        address=address,
        chain=chain,
        tier=tier,
        owners=owners,
        max_supply=max_supply,
        initial_price_eth=initial_price,
        price_history=history,
        tx_count=tx_count,
    )


def generate_study_collections(
    config: Optional[SnapshotStudyConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[SyntheticCollection]:
    """The full Figure 10 population: every chain x tier combination."""
    cfg = config or SnapshotStudyConfig()
    rand = rng or np.random.default_rng(cfg.seed)
    collections: List[SyntheticCollection] = []
    for chain in Chain:
        for tier in FrequencyTier:
            for _ in range(cfg.collections_per_tier):
                collections.append(
                    generate_collection(chain, tier, rand, cfg)
                )
    return collections
