"""Regenerating Table III: PAROLE Token behaviour in OpenSea transactions.

The paper deployed the PT on Optimism Goerli and reported, for one
sample of each transaction type, the transaction hash, block number, L1
state index, gas usage (percent of limit) and fees.  We regenerate rows
of the same schema from the deterministic gas schedule in
:mod:`repro.chain.gas`, anchored to the paper's reported block numbers
and calibrated so the gas-usage percentages match the published values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..chain.gas import GasSchedule
from ..crypto import hash_value

#: The (type, block number, L1 state index) anchors Table III reports.
TABLE3_ANCHORS: Tuple[Tuple[str, int, int], ...] = (
    ("mint", 17_934_499, 115_922),
    ("transfer", 18_183_117, 117_994),
    ("burn", 18_184_325, 118_004),
)


@dataclass(frozen=True)
class TransactionRecord:
    """One Table III row."""

    tx_type: str
    tx_hash: str
    block_number: int
    l1_state_index: int
    gas_usage_percent: float
    fee_gwei: float

    def as_row(self) -> Tuple[str, str, int, int, str, str]:
        """Formatted row matching the paper's column layout."""
        return (
            self.tx_type.capitalize(),
            self.tx_hash[:6] + "..",
            self.block_number,
            self.l1_state_index,
            f"{self.gas_usage_percent:.2f}%",
            _format_fee(self.fee_gwei),
        )


def _format_fee(fee_gwei: float) -> str:
    if fee_gwei >= 1000:
        return f"{fee_gwei / 1000:.0f}k Gwei"
    return f"{fee_gwei:.0f} Gwei"


def record_for(
    tx_type: str,
    block_number: int,
    l1_state_index: int,
    schedule: GasSchedule = None,
) -> TransactionRecord:
    """Build one record from the gas schedule."""
    gas_schedule = schedule or GasSchedule()
    usage = gas_schedule.usage_for(tx_type)
    tx_hash = "0x" + hash_value(["pt-tx", tx_type, block_number])[:8]
    return TransactionRecord(
        tx_type=tx_type,
        tx_hash=tx_hash,
        block_number=block_number,
        l1_state_index=l1_state_index,
        gas_usage_percent=usage.usage_percent,
        fee_gwei=usage.fee_wei / 10**9,
    )


def table3_rows(schedule: GasSchedule = None) -> List[TransactionRecord]:
    """All three Table III rows in the paper's order."""
    return [
        record_for(tx_type, block, index, schedule)
        for tx_type, block, index in TABLE3_ANCHORS
    ]
