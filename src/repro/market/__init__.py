"""NFT market substrate: gas model, snapshots, scanner, marketplace.

* :mod:`repro.market.gasmodel`        — Table III regeneration;
* :mod:`repro.market.nft_collections` — synthetic Optimism/Arbitrum
  collections by transaction-frequency tier (LFT/MFT/HFT);
* :mod:`repro.market.snapshot`        — holders.at-style snapshot store;
* :mod:`repro.market.scanner`         — the Figure 10 arbitrage scanner;
* :mod:`repro.market.opensea`         — an OpenSea-testnet-like
  marketplace over a deployed :class:`~repro.tokens.LimitedEditionNFT`.
"""

from .gasmodel import TransactionRecord, record_for, table3_rows
from .nft_collections import (
    Chain,
    FrequencyTier,
    SyntheticCollection,
    generate_collection,
    generate_study_collections,
)
from .snapshot import NFTSnapshot, SnapshotStore
from .scanner import ArbitrageFinding, ArbitrageScanner, TierSummary
from .opensea import Marketplace, MarketplaceListing, SaleRecord
from .wash_trading import WashCycle, WashReport, WashTradeDetector

__all__ = [
    "TransactionRecord",
    "record_for",
    "table3_rows",
    "Chain",
    "FrequencyTier",
    "SyntheticCollection",
    "generate_collection",
    "generate_study_collections",
    "NFTSnapshot",
    "SnapshotStore",
    "ArbitrageFinding",
    "ArbitrageScanner",
    "TierSummary",
    "Marketplace",
    "MarketplaceListing",
    "SaleRecord",
    "WashCycle",
    "WashReport",
    "WashTradeDetector",
]
