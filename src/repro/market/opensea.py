"""An OpenSea-testnet-like marketplace over the limited-edition NFT.

The paper validated PT behaviour by trading it on the OpenSea testnet
via Optimism Goerli.  :class:`Marketplace` provides the equivalent
surface in-process: listings, purchases (which execute ERC-721
transfers), mints and burns — each action also emits a Table III-style
:class:`~repro.market.gasmodel.TransactionRecord` so marketplace
activity and gas accounting stay linked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, MutableMapping, Optional, Tuple

from ..chain.gas import GasSchedule
from ..errors import MarketError
from ..tokens import LimitedEditionNFT
from .gasmodel import TransactionRecord, record_for


@dataclass(frozen=True)
class MarketplaceListing:
    """An active sell listing."""

    token_id: int
    seller: str
    ask_price_eth: float
    listed_at_block: int


@dataclass(frozen=True)
class SaleRecord:
    """A completed marketplace sale."""

    token_id: int
    seller: str
    buyer: str
    price_eth: float
    block_number: int


class Marketplace:
    """Listings and sales over one deployed NFT contract."""

    def __init__(
        self,
        contract: LimitedEditionNFT,
        balances: MutableMapping[str, float],
        start_block: int = 17_934_499,
        gas_schedule: Optional[GasSchedule] = None,
    ) -> None:
        self.contract = contract
        self.balances = balances
        self.block_number = start_block
        self.gas_schedule = gas_schedule or GasSchedule()
        self._listings: Dict[int, MarketplaceListing] = {}
        self._sales: List[SaleRecord] = []
        self._records: List[TransactionRecord] = []
        self._l1_state_index = 115_922

    # ------------------------------------------------------------------ #

    def _advance(self, tx_type: str) -> TransactionRecord:
        self.block_number += 1
        self._l1_state_index += 1
        record = record_for(
            tx_type, self.block_number, self._l1_state_index, self.gas_schedule
        )
        self._records.append(record)
        return record

    @property
    def listings(self) -> Tuple[MarketplaceListing, ...]:
        """Active listings, by token id order."""
        return tuple(self._listings[t] for t in sorted(self._listings))

    @property
    def sales(self) -> Tuple[SaleRecord, ...]:
        """Completed sales, oldest first."""
        return tuple(self._sales)

    @property
    def records(self) -> Tuple[TransactionRecord, ...]:
        """Gas/fee records of every marketplace-driven transaction."""
        return tuple(self._records)

    # ------------------------------------------------------------------ #
    # Actions
    # ------------------------------------------------------------------ #

    def mint(self, minter: str) -> Tuple[int, TransactionRecord]:
        """Mint through the marketplace; pays the Eq. 10 price."""
        token_id = self.contract.mint(minter, self.balances)
        return token_id, self._advance("mint")

    def list_token(self, seller: str, token_id: int, ask_price_eth: float) -> None:
        """Create a sell listing (the collection price still floors it)."""
        if self.contract.owner_of(token_id) != seller:
            raise MarketError(
                f"{seller!r} cannot list token {token_id}: not the owner"
            )
        if ask_price_eth <= 0:
            raise MarketError("ask price must be positive")
        if token_id in self._listings:
            raise MarketError(f"token {token_id} is already listed")
        self._listings[token_id] = MarketplaceListing(
            token_id=token_id,
            seller=seller,
            ask_price_eth=ask_price_eth,
            listed_at_block=self.block_number,
        )

    def delist(self, seller: str, token_id: int) -> None:
        """Remove a listing; only the lister may."""
        listing = self._listings.get(token_id)
        if listing is None:
            raise MarketError(f"token {token_id} is not listed")
        if listing.seller != seller:
            raise MarketError(f"{seller!r} did not create this listing")
        del self._listings[token_id]

    def buy(self, buyer: str, token_id: int) -> Tuple[SaleRecord, TransactionRecord]:
        """Fill a listing: executes the ERC-721 transfer at the Eq. 10
        collection price (scarcity floors the sale) and settles any ask
        premium buyer → seller on top."""
        listing = self._listings.get(token_id)
        if listing is None:
            raise MarketError(f"token {token_id} is not listed")
        floor = self.contract.unit_price
        premium = max(0.0, listing.ask_price_eth - floor)
        if self.balances.get(buyer, 0.0) < floor + premium:
            raise MarketError(
                f"buyer {buyer!r} cannot cover {floor + premium:.4f} ETH"
            )
        self.contract.transfer(listing.seller, buyer, token_id, self.balances)
        if premium > 0:
            self.balances[buyer] -= premium
            self.balances[listing.seller] = (
                self.balances.get(listing.seller, 0.0) + premium
            )
        del self._listings[token_id]
        record = self._advance("transfer")
        sale = SaleRecord(
            token_id=token_id,
            seller=listing.seller,
            buyer=buyer,
            price_eth=floor + premium,
            block_number=self.block_number,
        )
        self._sales.append(sale)
        return sale, record

    def burn(self, owner: str, token_id: int) -> TransactionRecord:
        """Burn through the marketplace (delists first if needed)."""
        if token_id in self._listings:
            if self._listings[token_id].seller != owner:
                raise MarketError(
                    f"token {token_id} is listed by someone else"
                )
            del self._listings[token_id]
        self.contract.burn(owner, token_id)
        return self._advance("burn")

    def total_volume_eth(self) -> float:
        """Cumulative sale volume."""
        return sum(sale.price_eth for sale in self._sales)
