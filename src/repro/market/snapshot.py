"""holders.at-style NFT snapshot store (Section VII-E's data source).

The paper looked up wallets and minting-contract addresses on
``holders.at`` to obtain historical NFT snapshots — prices, transaction
volumes, ownerships.  :class:`SnapshotStore` provides the equivalent
query surface over synthetic collections: lookups by contract address,
by chain, by tier, and time-windowed price series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from ..errors import MarketError
from .nft_collections import Chain, FrequencyTier, SyntheticCollection


@dataclass(frozen=True)
class NFTSnapshot:
    """One point-in-time observation of a collection."""

    contract_address: str
    chain: Chain
    tier: FrequencyTier
    timestamp: int
    price_eth: float
    owners: int
    tx_count: int


class SnapshotStore:
    """Queryable archive of collection snapshots."""

    def __init__(self, collections: Sequence[SyntheticCollection] = ()) -> None:
        self._collections: Dict[str, SyntheticCollection] = {}
        for collection in collections:
            self.ingest(collection)

    def __len__(self) -> int:
        return len(self._collections)

    def __iter__(self) -> Iterator[SyntheticCollection]:
        return iter(self._collections.values())

    def ingest(self, collection: SyntheticCollection) -> None:
        """Add a collection's history to the archive."""
        if collection.address in self._collections:
            raise MarketError(
                f"collection {collection.short_address} already ingested"
            )
        self._collections[collection.address] = collection

    def lookup(self, contract_address: str) -> SyntheticCollection:
        """Contract-address lookup (the holders.at query)."""
        try:
            return self._collections[contract_address]
        except KeyError:
            raise MarketError(
                f"no snapshots for contract {contract_address!r}"
            ) from None

    def by_chain(self, chain: Chain) -> List[SyntheticCollection]:
        """All collections deployed via ``chain``."""
        return [c for c in self._collections.values() if c.chain is chain]

    def by_tier(self, tier: FrequencyTier) -> List[SyntheticCollection]:
        """All collections in a transaction-frequency tier."""
        return [c for c in self._collections.values() if c.tier is tier]

    def snapshots_of(
        self,
        contract_address: str,
        since: int = 0,
        until: Optional[int] = None,
    ) -> List[NFTSnapshot]:
        """Time-windowed snapshots of one collection."""
        collection = self.lookup(contract_address)
        end = until if until is not None else float("inf")
        return [
            NFTSnapshot(
                contract_address=collection.address,
                chain=collection.chain,
                tier=collection.tier,
                timestamp=point.timestamp,
                price_eth=point.price_eth,
                owners=collection.owners,
                tx_count=collection.tx_count,
            )
            for point in collection.price_history
            if since <= point.timestamp <= end
        ]

    def price_series(self, contract_address: str) -> List[float]:
        """The full price series of one collection."""
        return [
            point.price_eth
            for point in self.lookup(contract_address).price_history
        ]
