"""JSON serialization of workloads, transactions and results.

Experiments should be archivable and replayable: this module round-trips
the objects a study produces — transactions, L2 states, whole workloads,
and attack-outcome summaries — through plain JSON-compatible dicts, plus
file helpers.  Round-trip fidelity is property-tested.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Union

from .config import NFTContractConfig, WorkloadConfig
from .core.parole import AttackOutcome
from .errors import ReproError
from .rollup.state import ExecutionMode, L2State
from .rollup.transaction import NFTTransaction, TxKind
from .workloads.generator import Workload

SCHEMA_VERSION = 1


class SerializationError(ReproError):
    """Malformed payload during decode."""


# ---------------------------------------------------------------------- #
# Transactions
# ---------------------------------------------------------------------- #

def transaction_to_dict(tx: NFTTransaction) -> Dict[str, Any]:
    """Encode one transaction."""
    return {
        "kind": tx.kind.value,
        "sender": tx.sender,
        "recipient": tx.recipient,
        "token_id": tx.token_id,
        "base_fee": tx.base_fee,
        "priority_fee": tx.priority_fee,
        "nonce": tx.nonce,
        "submitted_at": tx.submitted_at,
        "label": tx.label,
    }


def transaction_from_dict(data: Dict[str, Any]) -> NFTTransaction:
    """Decode one transaction."""
    try:
        return NFTTransaction(
            kind=TxKind(data["kind"]),
            sender=data["sender"],
            recipient=data.get("recipient"),
            token_id=data.get("token_id"),
            base_fee=data.get("base_fee", 1.0),
            priority_fee=data.get("priority_fee", 0.0),
            nonce=data.get("nonce", 0),
            submitted_at=data.get("submitted_at", 0),
            label=data.get("label", ""),
        )
    except (KeyError, ValueError) as exc:
        raise SerializationError(f"bad transaction payload: {exc}") from exc


# ---------------------------------------------------------------------- #
# State
# ---------------------------------------------------------------------- #

def state_to_dict(state: L2State) -> Dict[str, Any]:
    """Encode an L2 state snapshot."""
    return {
        "nft": {
            "symbol": state.nft_config.symbol,
            "name": state.nft_config.name,
            "max_supply": state.nft_config.max_supply,
            "initial_price_eth": state.nft_config.initial_price_eth,
        },
        "balances": dict(state.balances),
        "inventory": dict(state.inventory),
        "mode": state.mode.value,
    }


def state_from_dict(data: Dict[str, Any]) -> L2State:
    """Decode an L2 state snapshot."""
    try:
        nft = data["nft"]
        return L2State(
            nft_config=NFTContractConfig(
                symbol=nft["symbol"],
                name=nft["name"],
                max_supply=nft["max_supply"],
                initial_price_eth=nft["initial_price_eth"],
            ),
            balances=data["balances"],
            inventory={k: int(v) for k, v in data["inventory"].items()},
            mode=ExecutionMode(data.get("mode", "batch")),
        )
    except (KeyError, ValueError) as exc:
        raise SerializationError(f"bad state payload: {exc}") from exc


# ---------------------------------------------------------------------- #
# Workloads
# ---------------------------------------------------------------------- #

def workload_to_dict(workload: Workload) -> Dict[str, Any]:
    """Encode a full workload (pre-state + original-order transactions)."""
    return {
        "schema": SCHEMA_VERSION,
        "pre_state": state_to_dict(workload.pre_state),
        "transactions": [
            transaction_to_dict(tx) for tx in workload.transactions
        ],
        "ifus": list(workload.ifus),
        "users": list(workload.users),
        "config": {
            "mempool_size": workload.config.mempool_size,
            "num_users": workload.config.num_users,
            "num_ifus": workload.config.num_ifus,
            "seed": workload.config.seed,
            "max_supply": workload.config.max_supply,
        },
    }


def workload_from_dict(data: Dict[str, Any]) -> Workload:
    """Decode a workload."""
    if data.get("schema") != SCHEMA_VERSION:
        raise SerializationError(
            f"unsupported schema {data.get('schema')!r}; expected "
            f"{SCHEMA_VERSION}"
        )
    try:
        config_data = data["config"]
        config = WorkloadConfig(
            mempool_size=config_data["mempool_size"],
            num_users=config_data["num_users"],
            num_ifus=config_data["num_ifus"],
            seed=config_data.get("seed", 0),
            max_supply=config_data.get("max_supply"),
        )
        return Workload(
            pre_state=state_from_dict(data["pre_state"]),
            transactions=tuple(
                transaction_from_dict(item) for item in data["transactions"]
            ),
            ifus=tuple(data["ifus"]),
            users=tuple(data["users"]),
            config=config,
        )
    except KeyError as exc:
        raise SerializationError(f"bad workload payload: {exc}") from exc


# ---------------------------------------------------------------------- #
# Attack outcomes
# ---------------------------------------------------------------------- #

def outcome_to_dict(outcome: AttackOutcome) -> Dict[str, Any]:
    """Encode an attack outcome summary (result telemetry, not weights)."""
    result = outcome.result
    return {
        "schema": SCHEMA_VERSION,
        "attacked": outcome.attacked,
        "profit_eth": outcome.profit,
        "per_ifu_profit": dict(outcome.per_ifu_profit),
        "assessment": {
            "has_opportunity": outcome.assessment.has_opportunity,
            "reasons": list(outcome.assessment.reasons),
            "involvement": dict(outcome.assessment.involvement),
        },
        "executed_order": [
            transaction_to_dict(tx) for tx in outcome.executed_sequence
        ],
        "original_objective": (
            result.original_objective if result is not None else None
        ),
        "best_objective": (
            result.best_objective if result is not None else None
        ),
        "episode_rewards": (
            list(result.episode_rewards) if result is not None else []
        ),
    }


# ---------------------------------------------------------------------- #
# Files
# ---------------------------------------------------------------------- #

def save_json(data: Dict[str, Any], path: Union[str, pathlib.Path]) -> None:
    """Write a payload as pretty-printed JSON."""
    pathlib.Path(path).write_text(json.dumps(data, indent=2, sort_keys=True))


def load_json(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """Read a JSON payload."""
    try:
        return json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot load {path}: {exc}") from exc


def save_workload(workload: Workload, path: Union[str, pathlib.Path]) -> None:
    """Archive a workload to disk."""
    save_json(workload_to_dict(workload), path)


def load_workload(path: Union[str, pathlib.Path]) -> Workload:
    """Restore a workload from disk."""
    return workload_from_dict(load_json(path))
