"""Generic DQN training loop over :class:`~repro.drl.env_base.Environment`.

Implements the outer loop of Algorithm 1 (episodes x steps), recording the
per-episode cumulative reward ``R^ep = sum r_sp`` of Eq. 7 plus profit and
solution-size telemetry consumed by the Figure 8 and Figure 9 benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..config import GenTranSeqConfig
from .dqn import DQNAgent
from .env_base import Environment


@dataclass
class EpisodeStats:
    """Telemetry of one training episode."""

    episode: int
    total_reward: float
    epsilon: float
    steps: int
    best_profit: float
    first_profit_step: Optional[int]
    final_info: Dict[str, Any] = field(default_factory=dict)


@dataclass
class TrainingHistory:
    """Full training record returned by :func:`train`."""

    episodes: List[EpisodeStats] = field(default_factory=list)

    @property
    def rewards(self) -> List[float]:
        """Per-episode cumulative rewards, in order."""
        return [e.total_reward for e in self.episodes]

    @property
    def best_profit(self) -> float:
        """Best profit observed across all episodes."""
        if not self.episodes:
            return 0.0
        return max(e.best_profit for e in self.episodes)

    def first_profit_steps(self) -> List[int]:
        """Swap counts needed to reach the first profitable sequence,
        one entry per episode that found one (Figure 9's solution sizes)."""
        return [
            e.first_profit_step
            for e in self.episodes
            if e.first_profit_step is not None
        ]


def train(
    env: Environment,
    agent: DQNAgent,
    config: Optional[GenTranSeqConfig] = None,
    stop_when_profitable: bool = False,
) -> TrainingHistory:
    """Run the Algorithm 1 training loop and return its history.

    Parameters
    ----------
    env:
        The MDP to train against (a fresh episode per ``reset``).
    agent:
        The DQN agent; mutated in place.
    config:
        Episode/step budget; defaults to the agent's config (Table II).
    stop_when_profitable:
        Early-exit an episode at the first profitable sequence; used by
        the defense probe where only existence of profit matters.
    """
    cfg = config or agent.config
    history = TrainingHistory()
    patience = cfg.early_stop_patience
    for episode in range(cfg.episodes):
        if patience is not None and len(history.episodes) > patience:
            from ..analysis.convergence import is_plateaued

            if is_plateaued(history.rewards, lookback=patience):
                break
        epsilon = agent.begin_episode(episode)
        observation = env.reset()
        total_reward = 0.0
        best_profit = 0.0
        first_profit_step: Optional[int] = None
        info: Dict[str, Any] = {}
        steps_taken = 0
        for step in range(cfg.steps_per_episode):
            action = agent.act(observation)
            next_observation, reward, done, info = env.step(action)
            profit = float(info.get("profit", 0.0))
            profitable = profit > 0.0
            if profitable and first_profit_step is None:
                first_profit_step = step + 1
            best_profit = max(best_profit, profit)
            agent.observe(
                observation,
                action,
                reward,
                next_observation,
                done,
                profit_found=profitable,
            )
            observation = next_observation
            total_reward += reward
            steps_taken = step + 1
            if done or (stop_when_profitable and profitable):
                break
        history.episodes.append(
            EpisodeStats(
                episode=episode,
                total_reward=total_reward,
                epsilon=epsilon,
                steps=steps_taken,
                best_profit=best_profit,
                first_profit_step=first_profit_step,
                final_info=dict(info),
            )
        )
    return history
