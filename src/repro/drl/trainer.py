"""Generic DQN training loop over :class:`~repro.drl.env_base.Environment`.

Implements the outer loop of Algorithm 1 (episodes x steps), recording the
per-episode cumulative reward ``R^ep = sum r_sp`` of Eq. 7 plus profit and
solution-size telemetry consumed by the Figure 8 and Figure 9 benches.

Per-episode series (reward, TD loss, epsilon, replay-buffer fill) land in
both the returned :class:`TrainingHistory` *and* the active telemetry
registry/tracer (``drl.*`` metrics, one ``drl.episode`` span per episode),
so a Fig. 8 run manifest carries the full learning curve without any
ad-hoc side lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..config import GenTranSeqConfig
from ..telemetry import get_metrics, get_tracer
from .dqn import DQNAgent
from .env_base import Environment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store.checkpoint import TrainingCheckpointer


@dataclass
class EpisodeStats:
    """Telemetry of one training episode."""

    episode: int
    total_reward: float
    epsilon: float
    steps: int
    best_profit: float
    first_profit_step: Optional[int]
    final_info: Dict[str, Any] = field(default_factory=dict)
    #: Mean TD loss over the episode's executed Q-network updates
    #: (0.0 when no update ran, e.g. before the buffer holds a batch).
    mean_loss: float = 0.0
    #: Replay-buffer fill at episode end.
    buffer_size: int = 0


@dataclass
class TrainingHistory:
    """Full training record returned by :func:`train`."""

    episodes: List[EpisodeStats] = field(default_factory=list)

    @property
    def rewards(self) -> List[float]:
        """Per-episode cumulative rewards, in order."""
        return [e.total_reward for e in self.episodes]

    @property
    def losses(self) -> List[float]:
        """Per-episode mean TD losses, in order (Fig. 8 companions)."""
        return [e.mean_loss for e in self.episodes]

    @property
    def epsilons(self) -> List[float]:
        """Per-episode exploration rates, in order."""
        return [e.epsilon for e in self.episodes]

    @property
    def best_profit(self) -> float:
        """Best profit observed across all episodes."""
        if not self.episodes:
            return 0.0
        return max(e.best_profit for e in self.episodes)

    def first_profit_steps(self) -> List[int]:
        """Swap counts needed to reach the first profitable sequence,
        one entry per episode that found one (Figure 9's solution sizes)."""
        return [
            e.first_profit_step
            for e in self.episodes
            if e.first_profit_step is not None
        ]


def train(
    env: Environment,
    agent: DQNAgent,
    config: Optional[GenTranSeqConfig] = None,
    stop_when_profitable: bool = False,
    checkpointer: Optional["TrainingCheckpointer"] = None,
) -> TrainingHistory:
    """Run the Algorithm 1 training loop and return its history.

    Parameters
    ----------
    env:
        The MDP to train against (a fresh episode per ``reset``).
    agent:
        The DQN agent; mutated in place.
    config:
        Episode/step budget; defaults to the agent's config (Table II).
    stop_when_profitable:
        Early-exit an episode at the first profitable sequence; used by
        the defense probe where only existence of profit matters.
    checkpointer:
        Optional :class:`~repro.store.checkpoint.TrainingCheckpointer`:
        restores the latest persisted state before the first episode
        (so an interrupted run resumes mid-training, bit-identically)
        and re-persists every K episodes.
    """
    cfg = config or agent.config
    history = TrainingHistory()
    patience = cfg.early_stop_patience
    start_episode = 0
    if checkpointer is not None:
        checkpoint_env = env if hasattr(env, "best_order") else None
        start_episode = checkpointer.restore(agent, checkpoint_env, history)
    metrics = get_metrics()
    tracer = get_tracer()
    m_episodes = metrics.counter("drl.episodes")
    m_steps = metrics.counter("drl.steps")
    m_updates = metrics.counter("drl.q_updates")
    m_epsilon = metrics.gauge("drl.epsilon")
    m_buffer = metrics.gauge("drl.buffer_size")
    m_reward = metrics.histogram(
        "drl.episode_reward",
        bounds=(-10000.0, -1000.0, -100.0, -10.0, 0.0,
                10.0, 100.0, 1000.0, 10000.0),
    )
    m_loss = metrics.histogram("drl.td_loss")
    for episode in range(start_episode, cfg.episodes):
        if patience is not None and len(history.episodes) > patience:
            from ..analysis.convergence import is_plateaued

            if is_plateaued(history.rewards, lookback=patience):
                break
        epsilon = agent.begin_episode(episode)
        with tracer.span("drl.episode", episode=episode) as ep_span:
            observation = env.reset()
            total_reward = 0.0
            best_profit = 0.0
            first_profit_step: Optional[int] = None
            info: Dict[str, Any] = {}
            steps_taken = 0
            episode_losses: List[float] = []
            for step in range(cfg.steps_per_episode):
                action = agent.act(observation)
                next_observation, reward, done, info = env.step(action)
                profit = float(info.get("profit", 0.0))
                profitable = profit > 0.0
                if profitable and first_profit_step is None:
                    first_profit_step = step + 1
                best_profit = max(best_profit, profit)
                loss = agent.observe(
                    observation,
                    action,
                    reward,
                    next_observation,
                    done,
                    profit_found=profitable,
                )
                if loss is not None:
                    episode_losses.append(loss)
                    m_updates.inc()
                    m_loss.observe(loss)
                observation = next_observation
                total_reward += reward
                steps_taken = step + 1
                if done or (stop_when_profitable and profitable):
                    break
            mean_loss = (
                sum(episode_losses) / len(episode_losses)
                if episode_losses
                else 0.0
            )
            ep_span.add(
                reward=total_reward,
                epsilon=epsilon,
                steps=steps_taken,
                mean_loss=mean_loss,
                best_profit=best_profit,
            )
        m_episodes.inc()
        m_steps.inc(steps_taken)
        m_epsilon.set(epsilon)
        m_buffer.set(len(agent.replay))
        m_reward.observe(total_reward)
        history.episodes.append(
            EpisodeStats(
                episode=episode,
                total_reward=total_reward,
                epsilon=epsilon,
                steps=steps_taken,
                best_profit=best_profit,
                first_profit_step=first_profit_step,
                final_info=dict(info),
                mean_loss=mean_loss,
                buffer_size=len(agent.replay),
            )
        )
        if checkpointer is not None:
            checkpointer.maybe_save(
                episode,
                agent,
                env if hasattr(env, "best_order") else None,
                history,
                cfg.episodes,
            )
    return history
