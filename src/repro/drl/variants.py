"""DQN variants: Double DQN and prioritized experience replay.

The paper uses vanilla DQN (Section II-C).  Two standard refinements are
provided as extensions and exercised by the ablation benches:

* :class:`DoubleDQNAgent` — decouples action *selection* (online
  Q-network) from action *evaluation* (target network) in the bootstrap
  target, removing vanilla DQN's max-operator over-estimation bias
  (van Hasselt et al., 2016).
* :class:`PrioritizedReplayBuffer` — samples transitions proportionally
  to their last TD error (Schaul et al., 2016), with importance-sampling
  weights to keep the update unbiased.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import DRLError
from .dqn import DQNAgent
from .replay import ReplayBuffer, Transition


class DoubleDQNAgent(DQNAgent):
    """DQN with the Double-DQN bootstrap target."""

    def _train_batch(self) -> float:
        states, actions, rewards, next_states, dones = self.replay.sample(
            self.config.batch_size, self.rng
        )
        # Select the best next action with the *online* network...
        online_next = self.q_values_batch(next_states)
        best_actions = online_next.argmax(axis=1)
        # ...but evaluate it with the *target* network.
        target_next = self.target_q_values_batch(next_states)
        rows = np.arange(states.shape[0])
        best_next = target_next[rows, best_actions]
        targets = rewards + self.config.discount_factor * best_next * (~dones)
        current = self.q_network.forward(states, remember=True)
        blended = (
            (1.0 - self.config.learning_rate) * current[rows, actions]
            + self.config.learning_rate * targets
        )
        loss = self.q_network.train_on_cached_targets(actions, blended)
        self._losses.append(loss)
        return loss


class PrioritizedReplayBuffer(ReplayBuffer):
    """Proportional prioritized replay with IS weights.

    ``alpha`` controls how strongly priorities skew sampling (0 =
    uniform); ``beta`` the strength of the importance-sampling
    correction.  New transitions enter at the current maximum priority so
    every experience is replayed at least once.
    """

    def __init__(
        self,
        capacity: int,
        alpha: float = 0.6,
        beta: float = 0.4,
        epsilon: float = 1e-3,
    ) -> None:
        super().__init__(capacity)
        if not 0.0 <= alpha <= 1.0:
            raise DRLError("alpha must be in [0, 1]")
        if not 0.0 <= beta <= 1.0:
            raise DRLError("beta must be in [0, 1]")
        self.alpha = alpha
        self.beta = beta
        self.epsilon = epsilon
        self._priorities = np.zeros(capacity, dtype=np.float64)
        self._max_priority = 1.0
        self._last_indices: Optional[np.ndarray] = None

    def push(self, transition: Transition) -> None:
        """Insert at maximum priority."""
        index = self._next  # position the parent will write to
        super().push(transition)
        self._priorities[index] = self._max_priority

    def sample(
        self, batch_size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Priority-proportional sampling; records indices for updates."""
        if batch_size <= 0:
            raise DRLError("batch_size must be positive")
        if len(self) < batch_size:
            raise DRLError(
                f"buffer holds {len(self)} transitions, need {batch_size}"
            )
        raw = self._priorities[: len(self)] ** self.alpha
        probabilities = raw / raw.sum()
        indices = rng.choice(
            len(self), size=batch_size, replace=False, p=probabilities
        )
        self._last_indices = indices
        batch = [self._storage[i] for i in indices]
        states = np.stack([t.state for t in batch])
        actions = np.array([t.action for t in batch], dtype=np.int64)
        rewards = np.array([t.reward for t in batch], dtype=np.float64)
        next_states = np.stack([t.next_state for t in batch])
        dones = np.array([t.done for t in batch], dtype=bool)
        return states, actions, rewards, next_states, dones

    def importance_weights(self) -> np.ndarray:
        """IS weights for the last sampled batch, normalised to max 1."""
        if self._last_indices is None:
            raise DRLError("sample() must run before importance_weights()")
        raw = self._priorities[: len(self)] ** self.alpha
        probabilities = raw / raw.sum()
        selected = probabilities[self._last_indices]
        weights = (len(self) * selected) ** (-self.beta)
        return weights / weights.max()

    def update_priorities(self, td_errors: np.ndarray) -> None:
        """Refresh the last batch's priorities from its TD errors."""
        if self._last_indices is None:
            raise DRLError("sample() must run before update_priorities()")
        if len(td_errors) != len(self._last_indices):
            raise DRLError("one TD error per sampled transition required")
        new_priorities = np.abs(td_errors) + self.epsilon
        self._priorities[self._last_indices] = new_priorities
        self._max_priority = max(
            self._max_priority, float(new_priorities.max())
        )
        self._last_indices = None

    def clear(self) -> None:
        """Drop transitions and priorities."""
        super().clear()
        self._priorities[:] = 0.0
        self._max_priority = 1.0
        self._last_indices = None


class PrioritizedDQNAgent(DQNAgent):
    """DQN trained from a prioritized replay buffer."""

    def __init__(self, *args, alpha: float = 0.6, beta: float = 0.4, **kwargs):
        super().__init__(*args, **kwargs)
        self.replay = PrioritizedReplayBuffer(
            self.config.replay_buffer_size, alpha=alpha, beta=beta
        )

    def _train_batch(self) -> float:
        states, actions, rewards, next_states, dones = self.replay.sample(
            self.config.batch_size, self.rng
        )
        next_q = self.target_q_values_batch(next_states)
        best_next = next_q.max(axis=1)
        targets = rewards + self.config.discount_factor * best_next * (~dones)
        current = self.q_network.forward(states, remember=True)
        rows = np.arange(states.shape[0])
        predictions = current[rows, actions]
        td_errors = targets - predictions
        weights = self.replay.importance_weights()
        blended = (
            (1.0 - self.config.learning_rate) * predictions
            + self.config.learning_rate * (
                predictions + weights * td_errors
            )
        )
        loss = self.q_network.train_on_cached_targets(actions, blended)
        self.replay.update_priorities(td_errors)
        self._losses.append(loss)
        return loss
