"""The environment interface the DQN agent trains against.

Any MDP exposing this protocol can be plugged into
:func:`repro.drl.trainer.train`; the GENTRANSEQ reordering environment of
:mod:`repro.core.environment` is the paper's instance.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Tuple

import numpy as np


class Environment(abc.ABC):
    """Episodic MDP with a discrete action space and vector observations."""

    @property
    @abc.abstractmethod
    def observation_size(self) -> int:
        """Width of the flattened observation vector."""

    @property
    @abc.abstractmethod
    def action_count(self) -> int:
        """Number of discrete actions."""

    @abc.abstractmethod
    def reset(self) -> np.ndarray:
        """Start a new episode; returns the initial observation."""

    @abc.abstractmethod
    def step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        """Apply ``action``; returns ``(observation, reward, done, info)``."""
