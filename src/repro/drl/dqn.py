"""The DQN agent (Figure 2, Algorithm 1 lines 7-16).

Combines the numpy Q-network, the target network, the replay buffer and
the epsilon-greedy policy.  Updates follow the paper's cadence: the
Q-network trains every ``q_network_update_every`` environment steps, the
target network copies the Q-network every ``target_network_update_every``
steps, and additionally whenever a profitable sequence is found
(Algorithm 1 line 16: ``TargetNet.copy(QNet) if Profit``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import GenTranSeqConfig
from ..errors import DRLError
from .network import MLP
from .replay import ReplayBuffer, Transition
from .schedule import EpsilonSchedule


class DQNAgent:
    """Epsilon-greedy deep Q-learning over a discrete action space."""

    def __init__(
        self,
        observation_size: int,
        action_count: int,
        config: Optional[GenTranSeqConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if action_count <= 0:
            raise DRLError("action_count must be positive")
        self.config = config or GenTranSeqConfig()
        self.rng = rng or np.random.default_rng(self.config.seed)
        self.observation_size = observation_size
        self.action_count = action_count
        self.q_network = MLP(
            observation_size,
            self.config.hidden_layers,
            action_count,
            self.rng,
            learning_rate=self.config.gradient_learning_rate,
        )
        self.target_network = self.q_network.clone(self.rng)
        self.replay = ReplayBuffer(self.config.replay_buffer_size)
        self.schedule = EpsilonSchedule(
            epsilon_max=self.config.epsilon,
            epsilon_min=self.config.epsilon_min,
            decay=self.config.epsilon_decay,
        )
        self.epsilon = self.config.epsilon
        self._steps = 0
        self._losses: list = []

    # ------------------------------------------------------------------ #
    # Policy
    # ------------------------------------------------------------------ #

    def act(self, observation: np.ndarray, greedy: bool = False) -> int:
        """Pick an action: epsilon-greedy unless ``greedy`` forces argmax."""
        if not greedy and self.rng.random() < self.epsilon:
            return int(self.rng.integers(self.action_count))
        return int(np.argmax(self.q_values(observation)))

    def q_values(self, observation: np.ndarray) -> np.ndarray:
        """Raw Q-value vector for an observation (inference path)."""
        return self.q_network.forward(observation)

    def q_values_batch(self, observations: np.ndarray) -> np.ndarray:
        """Q-values for a stack of observations in one forward pass.

        One matmul chain instead of ``len(observations)`` — the batched
        path every per-action evaluation should go through.  Matches
        stacking :meth:`q_values` per row up to BLAS summation order
        (different kernels for single-row vs batched GEMM).
        """
        stacked = np.atleast_2d(np.asarray(observations, dtype=np.float64))
        return self.q_network.forward(stacked)

    def target_q_values_batch(self, observations: np.ndarray) -> np.ndarray:
        """Target-network Q-values for a stack of observations."""
        stacked = np.atleast_2d(np.asarray(observations, dtype=np.float64))
        return self.target_network.forward(stacked)

    def begin_episode(self, episode: int) -> float:
        """Set epsilon for ``episode`` from the Eq. 9 schedule."""
        self.epsilon = self.schedule.value(episode)
        return self.epsilon

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #

    def observe(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        profit_found: bool = False,
    ) -> Optional[float]:
        """Store a transition and run scheduled updates.

        Returns the TD loss when a Q-network update happened, else None.
        """
        self.replay.push(
            Transition(
                state=np.asarray(state, dtype=np.float64),
                action=action,
                reward=reward,
                next_state=np.asarray(next_state, dtype=np.float64),
                done=done,
            )
        )
        self._steps += 1
        loss: Optional[float] = None
        if (
            self._steps % self.config.q_network_update_every == 0
            and len(self.replay) >= self.config.batch_size
        ):
            loss = self._train_batch()
        if profit_found or self._steps % self.config.target_network_update_every == 0:
            self.sync_target()
        return loss

    def _train_batch(self) -> float:
        states, actions, rewards, next_states, dones = self.replay.sample(
            self.config.batch_size, self.rng
        )
        next_q = self.target_q_values_batch(next_states)
        best_next = next_q.max(axis=1)
        targets = rewards + self.config.discount_factor * best_next * (~dones)
        # The paper's Q-learning step size alpha blends the bootstrapped
        # target with the current estimate before the gradient step.
        # One remembered forward serves both the blend and the gradient.
        current = self.q_network.forward(states, remember=True)
        rows = np.arange(states.shape[0])
        blended = (
            (1.0 - self.config.learning_rate) * current[rows, actions]
            + self.config.learning_rate * targets
        )
        loss = self.q_network.train_on_cached_targets(actions, blended)
        self._losses.append(loss)
        return loss

    def sync_target(self) -> None:
        """Copy Q-network weights into the target network."""
        self.target_network.copy_weights_from(self.q_network)

    def state_dict(self) -> dict:
        """Everything a mid-training resume needs, bit-exactly.

        Covers both networks (with Adam moments), the replay buffer,
        the agent's RNG bit-generator state, the current epsilon and the
        step/loss counters.  See
        :class:`repro.store.checkpoint.TrainingCheckpointer`.
        """
        return {
            "q_network": self.q_network.state_dict(),
            "target_network": self.target_network.state_dict(),
            "replay": self.replay.state_dict(),
            "rng": self.rng.bit_generator.state,
            "epsilon": self.epsilon,
            "steps": self._steps,
            "losses": list(self._losses),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this agent."""
        self.q_network.load_state_dict(state["q_network"])
        self.target_network.load_state_dict(state["target_network"])
        self.replay.load_state_dict(state["replay"])
        self.rng.bit_generator.state = state["rng"]
        self.epsilon = float(state["epsilon"])
        self._steps = int(state["steps"])
        self._losses = list(state["losses"])

    @property
    def steps(self) -> int:
        """Total environment steps observed."""
        return self._steps

    @property
    def losses(self) -> list:
        """TD losses of every executed update, oldest first."""
        return list(self._losses)

    def inference_memory_bytes(self) -> int:
        """Parameter bytes needed at inference (Fig. 11(b) accounting)."""
        return self.q_network.memory_bytes()
