"""Deep reinforcement learning substrate.

A from-scratch numpy implementation of the DQN machinery of Section II-C
and Figure 2: an MLP Q-network with manual backpropagation and Adam, a
replay memory buffer, a periodically-synchronised target network, and the
epsilon-greedy exploration schedule of Eq. 9.
"""

from .network import MLP, AdamOptimizer
from .replay import ReplayBuffer, Transition
from .schedule import EpsilonSchedule
from .env_base import Environment
from .dqn import DQNAgent
from .variants import (
    DoubleDQNAgent,
    PrioritizedDQNAgent,
    PrioritizedReplayBuffer,
)
from .trainer import EpisodeStats, TrainingHistory, train

__all__ = [
    "MLP",
    "AdamOptimizer",
    "ReplayBuffer",
    "Transition",
    "EpsilonSchedule",
    "Environment",
    "DQNAgent",
    "DoubleDQNAgent",
    "PrioritizedDQNAgent",
    "PrioritizedReplayBuffer",
    "EpisodeStats",
    "TrainingHistory",
    "train",
]
