"""Replay memory buffer (Figure 2's experience repository).

A fixed-capacity ring buffer of transitions; uniform random sampling
breaks the temporal correlation of consecutive experiences, stabilising
Q-network training exactly as described in Section II-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import DRLError


@dataclass(frozen=True)
class Transition:
    """One agent experience ``(s, a, r, s', done)``."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool


class ReplayBuffer:
    """Fixed-capacity ring buffer with uniform sampling."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise DRLError("replay capacity must be positive")
        self.capacity = capacity
        self._storage: List[Optional[Transition]] = [None] * capacity
        self._next = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        """Whether the buffer has wrapped at least once."""
        return self._size == self.capacity

    def push(self, transition: Transition) -> None:
        """Append a transition, evicting the oldest when full."""
        self._storage[self._next] = transition
        self._next = (self._next + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(
        self, batch_size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Uniformly sample a training batch as stacked arrays.

        Returns ``(states, actions, rewards, next_states, dones)``.
        """
        if batch_size <= 0:
            raise DRLError("batch_size must be positive")
        if self._size < batch_size:
            raise DRLError(
                f"buffer holds {self._size} transitions, need {batch_size}"
            )
        indices = rng.choice(self._size, size=batch_size, replace=False)
        batch = [self._storage[i] for i in indices]
        states = np.stack([t.state for t in batch])
        actions = np.array([t.action for t in batch], dtype=np.int64)
        rewards = np.array([t.reward for t in batch], dtype=np.float64)
        next_states = np.stack([t.next_state for t in batch])
        dones = np.array([t.done for t in batch], dtype=bool)
        return states, actions, rewards, next_states, dones

    def state_dict(self) -> dict:
        """Ring contents plus cursor — enough to resume eviction order."""
        return {
            "capacity": self.capacity,
            "next": self._next,
            "size": self._size,
            "storage": list(self._storage),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this buffer."""
        capacity = int(state["capacity"])
        if capacity != self.capacity:
            raise DRLError(
                f"checkpoint capacity {capacity} != buffer capacity "
                f"{self.capacity}"
            )
        storage = list(state["storage"])
        if len(storage) != capacity:
            raise DRLError("checkpoint storage length mismatch")
        self._storage = storage
        self._next = int(state["next"])
        self._size = int(state["size"])

    def clear(self) -> None:
        """Drop every stored transition."""
        self._storage = [None] * self.capacity
        self._next = 0
        self._size = 0
