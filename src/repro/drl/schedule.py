"""Exploration schedule (paper Eq. 9).

The paper writes the per-episode exploration parameter as

.. math::  \\epsilon_i = \\epsilon_{min} + (\\epsilon_{max} - \\epsilon_{min})^{-(d \\cdot i)}

Taken literally, a base below one raised to a negative exponent *grows*
above one with ``i`` — the opposite of decay — so the printed formula is a
typo for the standard exponential schedule

.. math::  \\epsilon_i = \\epsilon_{min} + (\\epsilon_{max} - \\epsilon_{min}) e^{-d i}

which is what we implement by default (and what reproduces Fig. 8's
behaviour).  The literal form is available as ``mode="literal"`` for
completeness; it clamps into ``[eps_min, eps_max]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import DRLError


@dataclass(frozen=True)
class EpsilonSchedule:
    """Per-episode epsilon with exponential decay."""

    epsilon_max: float
    epsilon_min: float
    decay: float
    mode: str = "exponential"

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon_min <= self.epsilon_max <= 1.0:
            raise DRLError("need 0 <= eps_min <= eps_max <= 1")
        if self.decay <= 0:
            raise DRLError("decay must be positive")
        if self.mode not in ("exponential", "literal"):
            raise DRLError(f"unknown schedule mode {self.mode!r}")

    def value(self, episode: int) -> float:
        """Epsilon for ``episode`` (0-indexed)."""
        if episode < 0:
            raise DRLError("episode index cannot be negative")
        span = self.epsilon_max - self.epsilon_min
        if span == 0.0:
            return self.epsilon_max
        if self.mode == "literal":
            raw = self.epsilon_min + span ** (-(self.decay * episode))
        else:
            raw = self.epsilon_min + span * math.exp(-self.decay * episode)
        return min(self.epsilon_max, max(self.epsilon_min, raw))

    def values(self, episodes: int) -> list:
        """Epsilons for episodes ``0..episodes-1``."""
        return [self.value(i) for i in range(episodes)]
