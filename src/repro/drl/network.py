"""A multi-layer perceptron with manual backpropagation (numpy only).

The Q-network of Figure 4: a flattening input layer of ``8 x N``
processing elements, ReLU hidden layers, and a linear output layer with
one Q-value per swap action.  Training minimises the temporal-difference
error on the selected actions with the Adam optimiser.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import NetworkShapeError


class AdamOptimizer:
    """Adam with per-parameter first/second moment estimates."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        """Apply one Adam update in place to ``params``."""
        if len(params) != len(grads):
            raise NetworkShapeError("params and grads length mismatch")
        self._t += 1
        for index, (param, grad) in enumerate(zip(params, grads)):
            if param.shape != grad.shape:
                raise NetworkShapeError(
                    f"param {index} shape {param.shape} != grad shape {grad.shape}"
                )
            m = self._m.setdefault(index, np.zeros_like(param))
            v = self._v.setdefault(index, np.zeros_like(param))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(grad)
            m_hat = m / (1.0 - self.beta1**self._t)
            v_hat = v / (1.0 - self.beta2**self._t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


class MLP:
    """Fully-connected network: ReLU hidden layers, linear output."""

    def __init__(
        self,
        input_size: int,
        hidden_sizes: Sequence[int],
        output_size: int,
        rng: np.random.Generator,
        learning_rate: float = 1e-3,
    ) -> None:
        if input_size <= 0 or output_size <= 0:
            raise NetworkShapeError("layer sizes must be positive")
        self.input_size = input_size
        self.output_size = output_size
        self.hidden_sizes = tuple(hidden_sizes)
        sizes = [input_size, *hidden_sizes, output_size]
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)  # He initialisation for ReLU
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self.optimizer = AdamOptimizer(learning_rate=learning_rate)
        self._cache: Optional[List[np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #

    def forward(self, inputs: np.ndarray, remember: bool = False) -> np.ndarray:
        """Compute Q-values for a batch (or single) observation.

        ``inputs`` has shape ``(batch, input_size)`` or ``(input_size,)``.
        Set ``remember=True`` when a backward pass will follow.
        """
        single = inputs.ndim == 1
        activations = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if activations.shape[1] != self.input_size:
            raise NetworkShapeError(
                f"expected input width {self.input_size}, got {activations.shape[1]}"
            )
        cache = [activations]
        for layer, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            pre = activations @ weight + bias
            is_output = layer == len(self.weights) - 1
            activations = pre if is_output else np.maximum(pre, 0.0)
            cache.append(activations)
        self._cache = cache if remember else None
        return activations[0] if single else activations

    def backward(self, output_grad: np.ndarray) -> None:
        """Backpropagate ``dLoss/dOutput`` and apply an Adam step."""
        if self._cache is None:
            raise NetworkShapeError("backward() requires forward(remember=True)")
        cache = self._cache
        grad = np.atleast_2d(np.asarray(output_grad, dtype=np.float64))
        if grad.shape != cache[-1].shape:
            raise NetworkShapeError(
                f"output grad shape {grad.shape} != activations {cache[-1].shape}"
            )
        weight_grads: List[np.ndarray] = [np.empty(0)] * len(self.weights)
        bias_grads: List[np.ndarray] = [np.empty(0)] * len(self.biases)
        batch = grad.shape[0]
        for layer in reversed(range(len(self.weights))):
            upstream = cache[layer]
            weight_grads[layer] = upstream.T @ grad / batch
            bias_grads[layer] = grad.mean(axis=0)
            if layer > 0:
                grad = grad @ self.weights[layer].T
                grad[cache[layer] <= 0.0] = 0.0  # ReLU gate
        self.optimizer.step(
            self.weights + self.biases, weight_grads + bias_grads
        )
        self._cache = None

    def train_on_targets(
        self,
        inputs: np.ndarray,
        action_indices: np.ndarray,
        targets: np.ndarray,
    ) -> float:
        """One TD step: MSE between Q(s, a) and ``targets``; returns loss."""
        self.forward(inputs, remember=True)
        return self.train_on_cached_targets(action_indices, targets)

    def train_on_cached_targets(
        self,
        action_indices: np.ndarray,
        targets: np.ndarray,
    ) -> float:
        """TD step reusing the activations of a ``forward(remember=True)``.

        Callers that already need the batch's Q-values (e.g. to blend
        the bootstrap target with the current estimate) can forward once
        with ``remember=True`` and train from the cache, halving the
        forward work per update.  Numerically identical to
        :meth:`train_on_targets` — the weights have not moved between
        the two passes it fuses.
        """
        if self._cache is None:
            raise NetworkShapeError(
                "train_on_cached_targets() requires forward(remember=True)"
            )
        outputs = self._cache[-1]
        rows = np.arange(outputs.shape[0])
        predictions = outputs[rows, action_indices]
        errors = predictions - targets
        loss = float(np.mean(np.square(errors)))
        grad = np.zeros_like(outputs)
        grad[rows, action_indices] = 2.0 * errors
        self.backward(grad)
        return loss

    # ------------------------------------------------------------------ #
    # Weight management
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Complete training state: parameters plus Adam moments.

        Everything needed to resume an interrupted training run
        bit-identically (used by the store's checkpoint layer).
        """
        return {
            "weights": [w.copy() for w in self.weights],
            "biases": [b.copy() for b in self.biases],
            "optimizer": {
                "m": {k: v.copy() for k, v in self.optimizer._m.items()},
                "v": {k: v.copy() for k, v in self.optimizer._v.items()},
                "t": self.optimizer._t,
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (shapes must match)."""
        weights = [np.asarray(w, dtype=np.float64) for w in state["weights"]]
        biases = [np.asarray(b, dtype=np.float64) for b in state["biases"]]
        if [w.shape for w in weights] != [w.shape for w in self.weights]:
            raise NetworkShapeError("checkpoint weight shapes do not match")
        self.weights = weights
        self.biases = biases
        optimizer = state.get("optimizer", {})
        self.optimizer._m = {
            int(k): np.asarray(v, dtype=np.float64)
            for k, v in optimizer.get("m", {}).items()
        }
        self.optimizer._v = {
            int(k): np.asarray(v, dtype=np.float64)
            for k, v in optimizer.get("v", {}).items()
        }
        self.optimizer._t = int(optimizer.get("t", 0))
        self._cache = None

    def copy_weights_from(self, other: "MLP") -> None:
        """Overwrite this network's parameters with ``other``'s."""
        if (
            other.input_size != self.input_size
            or other.output_size != self.output_size
            or other.hidden_sizes != self.hidden_sizes
        ):
            raise NetworkShapeError("cannot copy weights between unlike networks")
        self.weights = [w.copy() for w in other.weights]
        self.biases = [b.copy() for b in other.biases]

    def parameter_count(self) -> int:
        """Total number of trainable scalars."""
        return sum(w.size for w in self.weights) + sum(b.size for b in self.biases)

    def memory_bytes(self) -> int:
        """Bytes held by the parameters (Fig. 11(b) memory accounting)."""
        return sum(w.nbytes for w in self.weights) + sum(b.nbytes for b in self.biases)

    def save(self, path) -> None:
        """Persist the weights to an ``.npz`` archive.

        Only parameters are stored (not optimiser moments): the use case
        is shipping a trained policy for inference, Section VII-F style.
        """
        arrays = {}
        for index, weight in enumerate(self.weights):
            arrays[f"w{index}"] = weight
        for index, bias in enumerate(self.biases):
            arrays[f"b{index}"] = bias
        arrays["shape"] = np.array(
            [self.input_size, *self.hidden_sizes, self.output_size]
        )
        np.savez(path, **arrays)

    @classmethod
    def load(cls, path, rng: np.random.Generator, learning_rate: float = 1e-3) -> "MLP":
        """Restore a network saved with :meth:`save`."""
        with np.load(path) as archive:
            shape = archive["shape"].astype(int)
            network = cls(
                input_size=int(shape[0]),
                hidden_sizes=tuple(int(s) for s in shape[1:-1]),
                output_size=int(shape[-1]),
                rng=rng,
                learning_rate=learning_rate,
            )
            network.weights = [
                archive[f"w{index}"].copy()
                for index in range(len(network.weights))
            ]
            network.biases = [
                archive[f"b{index}"].copy()
                for index in range(len(network.biases))
            ]
        return network

    def clone(self, rng: np.random.Generator) -> "MLP":
        """Structural copy with identical weights (fresh optimiser state)."""
        twin = MLP(
            self.input_size,
            self.hidden_sizes,
            self.output_size,
            rng,
            learning_rate=self.optimizer.learning_rate,
        )
        twin.copy_weights_from(self)
        return twin
