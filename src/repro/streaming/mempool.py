"""Sharded fee-priority mempool for the streaming pipeline.

At traffic scale a single :class:`~repro.rollup.BedrockMempool` becomes
the serialisation point of the whole service: every submission and every
collection contends on one pending index.  :class:`ShardedMempool`
splits the pending set across independent ``BedrockMempool`` shards,
routed by the stamp-independent ``arrival_identity`` digest, while a
single *global* arrival counter stamps every admission before routing.

That last detail is the correctness argument.  Because stamps are issued
globally (and are therefore unique across shards), the fee-priority key
``(-total_fee, submitted_at, nonce)`` is already a total order over all
pending transactions — no cross-shard tiebreak is ever needed, and a
k-way merge over the shard heads drains transactions in *exactly* the
order one unsharded ``BedrockMempool`` would.  The shard count is a pure
throughput knob: it can never change results.

Identity-based routing also means both copies of a duplicate submission
land on the same shard, so the per-shard duplicate maps compose into a
global duplicate check for free.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

from ..errors import MempoolError, MempoolStalledError
from ..rollup.mempool import BedrockMempool
from ..rollup.transaction import NFTTransaction


class ShardedMempool:
    """Drop-in ``BedrockMempool`` replacement with sharded internals.

    Drain order is provably identical to the unsharded pool for any
    shard count (see the module docstring); ``shards=1`` degenerates to
    a thin wrapper around one ``BedrockMempool``.
    """

    def __init__(self, shards: int = 4) -> None:
        if shards < 1:
            raise MempoolError("shard count must be at least 1")
        self._shards: List[BedrockMempool] = [
            BedrockMempool() for _ in range(shards)
        ]
        self._arrival = 0
        self._stalled = False

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, tx_hash: str) -> bool:
        return any(tx_hash in shard for shard in self._shards)

    @property
    def stalled(self) -> bool:
        """Whether collection is currently stalled (fault injection)."""
        return self._stalled

    def stall(self) -> None:
        """Stop serving collections; submissions are still accepted."""
        self._stalled = True

    def resume(self) -> None:
        """Resume serving collections after a stall."""
        self._stalled = False

    # ------------------------------------------------------------------ #

    def _shard_for(self, identity: str) -> BedrockMempool:
        # arrival_identity is a hex digest; its low bits are uniform.
        return self._shards[int(identity[-8:], 16) % len(self._shards)]

    def _stamp(self, tx: NFTTransaction) -> NFTTransaction:
        self._arrival += 1
        return NFTTransaction(
            kind=tx.kind,
            sender=tx.sender,
            recipient=tx.recipient,
            token_id=tx.token_id,
            base_fee=tx.base_fee,
            priority_fee=tx.priority_fee,
            nonce=tx.nonce,
            submitted_at=self._arrival,
            label=tx.label,
        )

    @staticmethod
    def _key(tx: NFTTransaction) -> Tuple[float, int, int]:
        # Global stamps are unique, so this key is already a total
        # order — no admission-sequence tiebreak needed across shards.
        return (-tx.total_fee, tx.submitted_at, tx.nonce)

    # ------------------------------------------------------------------ #

    def submit(self, tx: NFTTransaction) -> str:
        """Stamp with the global arrival counter, route, admit."""
        stamped = self._stamp(tx)
        return self._shard_for(stamped.arrival_identity).admit_stamped(stamped)

    def submit_all(self, txs: Sequence[NFTTransaction]) -> List[str]:
        """Submit several transactions, preserving order."""
        return [self.submit(tx) for tx in txs]

    def admit_stamped(self, tx: NFTTransaction) -> str:
        """Admit a pre-stamped transaction (requeue path)."""
        return self._shard_for(tx.arrival_identity).admit_stamped(tx)

    def requeue(self, txs: Sequence[NFTTransaction]) -> None:
        """Return transactions to the pool, original stamps intact."""
        for tx in txs:
            self._shard_for(tx.arrival_identity).requeue([tx])

    def drop(self, tx_hash: str) -> NFTTransaction:
        """Remove one transaction by hash."""
        for shard in self._shards:
            if tx_hash in shard:
                return shard.drop(tx_hash)
        raise MempoolError(f"unknown transaction {tx_hash[:12]}...")

    # ------------------------------------------------------------------ #

    def collect(self, count: int) -> Tuple[NFTTransaction, ...]:
        """Drain the global top ``count`` via a k-way merge of shard heads.

        Each step peeks every shard's best transaction, pops the global
        winner from its shard, and refills that shard's head — O(count ·
        (S + log N/S)) total, with collection work spread across shard
        heaps.  Raises :class:`~repro.errors.MempoolStalledError` while
        stalled, exactly like the unsharded pool.
        """
        if count <= 0:
            raise MempoolError("collect count must be positive")
        if self._stalled:
            raise MempoolStalledError(
                "mempool is stalled: collection unavailable "
                f"({len(self)} transactions pending)"
            )
        heads: List[Tuple[Tuple[float, int, int], int]] = []
        for index, shard in enumerate(self._shards):
            head = shard.peek(1)
            if head:
                heads.append((self._key(head[0]), index))
        heapq.heapify(heads)
        selected: List[NFTTransaction] = []
        while heads and len(selected) < count:
            _, index = heapq.heappop(heads)
            collected = self._shards[index].collect(1)
            selected.extend(collected)
            refill = self._shards[index].peek(1)
            if refill:
                heapq.heappush(heads, (self._key(refill[0]), index))
        return tuple(selected)

    def peek(self, count: int) -> Tuple[NFTTransaction, ...]:
        """The next ``count`` transactions in global priority order."""
        merged: List[NFTTransaction] = []
        for shard in self._shards:
            merged.extend(shard.peek(count))
        merged.sort(key=self._key)
        return tuple(merged[:count])

    def pending(self) -> Tuple[NFTTransaction, ...]:
        """All pending transactions in global priority order."""
        merged: List[NFTTransaction] = []
        for shard in self._shards:
            merged.extend(shard.pending())
        merged.sort(key=self._key)
        return tuple(merged)
