"""The always-on streaming pipeline: lanes of rollup + scanner + traffic.

One *lane* is a complete, independent rollup deployment — its own
:class:`~repro.streaming.traffic.TrafficGenerator`, a
:class:`~repro.streaming.mempool.ShardedMempool`, one adversarial
aggregator routed through a :class:`~repro.streaming.scanner.BatchScanner`
and an honest verifier — driven for a fixed number of batch intervals
with a full :class:`~repro.faults.InvariantChecker` sweep after every
batch.  Lanes fan out over the parallel fabric (``--jobs``), each from
an independent seed spawned off the stream seed.

Determinism contract: everything in a lane's
:meth:`LaneReport.deterministic_payload` — transaction streams, batch
orderings, scanner decisions, invariant sweeps, final state roots — is a
pure function of ``(config, seed)``.  Wall-clock readings (batch
latencies, sustained tx/s) live in separate report fields that are
excluded from :meth:`StreamReport.deterministic_json`, which is how the
soak test asserts byte-identical results for ``--jobs 1`` vs ``--jobs
2``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import RollupConfig, _require
from ..crypto import hash_value
from ..faults.invariants import InvariantChecker
from ..parallel import Task, TaskRunner, get_runner, spawn_task_seeds
from ..rollup.aggregator import AdversarialAggregator
from ..rollup.node import RollupNode
from ..rollup.state import ExecutionMode
from ..rollup.verifier import Verifier
from ..store import ResultStore
from .mempool import ShardedMempool
from .scanner import BatchScanner, ScannerConfig
from .traffic import StreamTrafficConfig, TrafficGenerator


@dataclass(frozen=True)
class StreamConfig:
    """One bounded soak run of the streaming pipeline."""

    lanes: int = 2
    #: Fixed block intervals to serve per lane.
    duration_batches: int = 50
    #: Transactions one aggregator collects per interval.
    batch_size: int = 16
    #: Transactions the generator submits per interval; above
    #: ``batch_size`` the mempool carries a growing backlog, which is
    #: exactly the regime the sharded pool exists for.
    submit_per_batch: int = 24
    shards: int = 4
    seed: int = 0
    traffic: StreamTrafficConfig = field(default_factory=StreamTrafficConfig)
    scanner: ScannerConfig = field(default_factory=ScannerConfig)
    #: Result-store root for scanner memoization (None = no cache).
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        _require(self.lanes >= 1, "need at least one lane")
        _require(self.duration_batches >= 1,
                 "duration_batches must be positive")
        _require(self.batch_size >= 1, "batch_size must be positive")
        _require(self.submit_per_batch >= 1,
                 "submit_per_batch must be positive")
        _require(self.shards >= 1, "shards must be at least 1")


@dataclass(frozen=True)
class LaneReport:
    """Everything one lane produced.

    ``batch_wall_ms`` is wall clock (non-deterministic); every other
    field is a pure function of ``(config, seed)``.
    """

    lane: int
    seed: int
    batches: int
    submitted: int
    included: int
    pending: int
    violations: Tuple[str, ...]
    actions: Dict[str, int]
    profit_total: float
    hit_rate: float
    state_root: str
    #: Digest of the committed transaction order of every batch — the
    #: strongest single check that two runs served identical streams.
    order_digest: str
    batch_wall_ms: Tuple[float, ...]

    def deterministic_payload(self) -> dict:
        """JSON-able view with wall-clock fields stripped."""
        return {
            "lane": self.lane,
            "seed": self.seed,
            "batches": self.batches,
            "submitted": self.submitted,
            "included": self.included,
            "pending": self.pending,
            "violations": list(self.violations),
            "actions": dict(sorted(self.actions.items())),
            "profit_total": round(self.profit_total, 9),
            "hit_rate": round(self.hit_rate, 9),
            "state_root": self.state_root,
            "order_digest": self.order_digest,
        }


def _run_lane(config: StreamConfig, lane: int,
              seed: Optional[int] = None) -> LaneReport:
    """Serve ``duration_batches`` intervals on one isolated deployment.

    Module-level so the process backend can pickle it.
    """
    lane_seed = config.seed if seed is None else int(seed)
    traffic = TrafficGenerator(config.traffic, seed=lane_seed)
    mempool = ShardedMempool(shards=config.shards)
    # The lane executes STRICT: fee-priority collection breaks generation
    # order across batch boundaries, so a transfer can surface before the
    # mint that funds its sender — BATCH netting would let it execute and
    # leave negative net inventory past batch end.  A strict sequencer
    # records it as skipped instead, the honest-deployment semantic the
    # invariant checker assumes.
    lane_state = traffic.pre_state.copy()
    lane_state.mode = ExecutionMode.STRICT
    node = RollupNode(
        l2_state=lane_state,
        config=RollupConfig(
            aggregator_mempool_size=config.batch_size,
            challenge_period_blocks=2,
        ),
        mempool=mempool,
    )
    store = None
    if config.cache_dir is not None:
        store = ResultStore(config.cache_dir).namespaced("stream")
    scanner = BatchScanner(traffic.ifus, config=config.scanner, store=store)
    node.add_aggregator(
        AdversarialAggregator(
            f"stream-agg-{lane}", strategy=scanner.as_strategy()
        )
    )
    node.add_verifier(Verifier(f"stream-ver-{lane}"))
    checker = InvariantChecker(node)

    violations: List[str] = []
    committed_orders: List[Tuple[str, ...]] = []
    wall_ms: List[float] = []
    for interval in range(config.duration_batches):
        for tx in traffic.next_batch(config.submit_per_batch):
            checker.note_accepted(node.submit(tx))
        started = time.perf_counter()
        report = node.run_round(config.batch_size)
        wall_ms.append((time.perf_counter() - started) * 1000.0)
        checker.on_report(report)
        node.finalize_ready_batches()
        for result in report.results:
            committed_orders.append(
                tuple(tx.tx_hash for tx in result.batch.transactions)
            )
        sweep = checker.check(interval)
        for violation in sweep.violations:
            violations.append(f"batch {interval}: {violation}")

    return LaneReport(
        lane=lane,
        seed=lane_seed,
        batches=config.duration_batches,
        submitted=traffic.generated,
        included=checker.included_surviving_count(),
        pending=len(mempool),
        violations=tuple(violations),
        actions=scanner.action_counts(),
        profit_total=scanner.profit_total,
        hit_rate=scanner.hit_rate,
        state_root=node.current_state_root(),
        order_digest=hash_value([list(order) for order in committed_orders]),
        batch_wall_ms=tuple(wall_ms),
    )


@dataclass(frozen=True)
class StreamReport:
    """Aggregate of every lane of one soak run."""

    config_seed: int
    lanes: Tuple[LaneReport, ...]
    #: Wall-clock aggregates (non-deterministic).
    elapsed_seconds: float
    sustained_tx_per_second: float
    p50_batch_ms: float
    p99_batch_ms: float

    # ------------------------------------------------------------------ #

    @property
    def ok(self) -> bool:
        """Zero invariant violations across every lane."""
        return not self.total_violations

    @property
    def total_violations(self) -> Tuple[str, ...]:
        return tuple(
            f"lane {lane.lane}: {violation}"
            for lane in self.lanes
            for violation in lane.violations
        )

    @property
    def total_submitted(self) -> int:
        return sum(lane.submitted for lane in self.lanes)

    @property
    def total_included(self) -> int:
        return sum(lane.included for lane in self.lanes)

    @property
    def profit_total(self) -> float:
        return sum(lane.profit_total for lane in self.lanes)

    @property
    def hit_rate(self) -> float:
        """Fraction of served batches the attack improved (deterministic)."""
        scanned = sum(
            sum(lane.actions.values()) for lane in self.lanes
        )
        if scanned == 0:
            return 0.0
        reordered = sum(
            lane.actions.get("reordered", 0) for lane in self.lanes
        )
        return reordered / scanned

    def action_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for lane in self.lanes:
            for action, count in lane.actions.items():
                totals[action] = totals.get(action, 0) + count
        return totals

    # ------------------------------------------------------------------ #

    def deterministic_payload(self) -> dict:
        """Everything reproducible for ``(config, seed)`` — no wall clock."""
        return {
            "seed": self.config_seed,
            "lanes": [lane.deterministic_payload() for lane in self.lanes],
            "total_submitted": self.total_submitted,
            "total_included": self.total_included,
            "profit_total": round(self.profit_total, 9),
            "hit_rate": round(self.hit_rate, 9),
            "actions": dict(sorted(self.action_totals().items())),
            "violations": list(self.total_violations),
        }

    def deterministic_json(self) -> str:
        """Canonical JSON of the deterministic payload.

        Byte-identical across ``--jobs`` values, machines and re-runs —
        the soak test's equality check.
        """
        return json.dumps(
            self.deterministic_payload(), sort_keys=True, indent=2
        )

    def render(self) -> str:
        """Human-readable soak summary."""
        actions = self.action_totals()
        lines = [
            f"stream soak: {len(self.lanes)} lane(s) x "
            f"{self.lanes[0].batches if self.lanes else 0} batches "
            f"[{'OK' if self.ok else 'VIOLATIONS'}]",
            f"  submitted {self.total_submitted} tx, "
            f"included {self.total_included}, "
            f"backlog {sum(l.pending for l in self.lanes)}",
            f"  sustained {self.sustained_tx_per_second:,.0f} tx/s, "
            f"batch p50 {self.p50_batch_ms:.2f} ms, "
            f"p99 {self.p99_batch_ms:.2f} ms",
            f"  scanner: {dict(sorted(actions.items()))}, "
            f"hit rate {self.hit_rate:.1%}, "
            f"profit {self.profit_total:+.4f} ETH",
        ]
        for violation in self.total_violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


def run_stream(
    config: Optional[StreamConfig] = None,
    runner: Optional[TaskRunner] = None,
) -> StreamReport:
    """Run a bounded soak: every lane to completion, then aggregate.

    ``runner`` is the parallel fabric backend (``get_runner(jobs)``);
    the default serves lanes serially.  Lane seeds are spawned from
    ``config.seed``, so the deterministic payload is identical for any
    runner.
    """
    config = config or StreamConfig()
    runner = runner or get_runner(None)
    seeds = spawn_task_seeds(config.seed, config.lanes)
    tasks = [
        Task(
            fn=_run_lane,
            args=(config, lane),
            seed=seeds[lane],
            label=f"stream-lane-{lane}",
        )
        for lane in range(config.lanes)
    ]
    started = time.perf_counter()
    lanes = tuple(runner.map(tasks))
    elapsed = time.perf_counter() - started

    all_ms = [ms for lane in lanes for ms in lane.batch_wall_ms]
    served = sum(lane.included for lane in lanes)
    return StreamReport(
        config_seed=config.seed,
        lanes=lanes,
        elapsed_seconds=elapsed,
        sustained_tx_per_second=(served / elapsed) if elapsed > 0 else 0.0,
        p50_batch_ms=float(np.percentile(all_ms, 50)) if all_ms else 0.0,
        p99_batch_ms=float(np.percentile(all_ms, 99)) if all_ms else 0.0,
    )
