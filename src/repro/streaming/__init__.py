"""``repro.streaming`` — the always-on attack pipeline at traffic scale.

Everything else in this repository evaluates one mempool snapshot at a
time; this package runs the PAROLE attack as a *service*:

* :mod:`repro.streaming.traffic` — a continuous workload generator
  streaming transactions from zipf-distributed synthetic users against
  a tiered NFT collection (reusing the Figure 10 chain/tier churn
  parameters);
* :mod:`repro.streaming.mempool` — :class:`ShardedMempool`, a
  shard-per-core fee-priority mempool whose drain order is provably
  identical to a single :class:`~repro.rollup.BedrockMempool` for any
  shard count;
* :mod:`repro.streaming.scanner` — :class:`BatchScanner`, the
  arbitrage-scanner service: opportunity pre-check, DQN-inference
  reordering inside a deterministic per-batch evaluation budget, and
  graceful degradation to the honest order when the budget is blown;
* :mod:`repro.streaming.pipeline` — lanes (one rollup deployment each)
  fanned out over the parallel fabric, invariant-checked every batch,
  with byte-identical deterministic results across ``--jobs`` values.

See ``docs/streaming.md`` for the architecture and latency-budget
policy, and ``benchmarks/bench_streaming.py`` for the sustained-tx/s,
p99-latency and hit-rate gates.
"""

from .mempool import ShardedMempool
from .pipeline import LaneReport, StreamConfig, StreamReport, run_stream
from .scanner import BatchScanner, ScanOutcome, ScannerConfig
from .traffic import StreamTrafficConfig, TrafficGenerator

__all__ = [
    "BatchScanner",
    "LaneReport",
    "ScanOutcome",
    "ScannerConfig",
    "ShardedMempool",
    "StreamConfig",
    "StreamReport",
    "StreamTrafficConfig",
    "TrafficGenerator",
    "run_stream",
]
