"""Continuous zipf-distributed transaction traffic.

The batch workload generator (:mod:`repro.workloads.generator`) builds
one strictly-valid round and stops.  Streaming needs the opposite: an
endless, seeded source of transactions whose *population* statistics
match a production rollup — a few hot accounts (the IFUs and whales)
dominating volume over a long zipf tail of occasional traders, fees
drawn from a tier/chain-dependent churn model (the Figure 10 snapshot
parameters), and every batch feasible against the live collection state.

The generator simulates its own shadow L2 state while emitting, exactly
like the batch generator does, so senders always have the balance or
inventory their transaction needs *in generation order*.  Reordering by
the pipeline may still invalidate individual transactions — that is the
attack surface, and batch-mode execution absorbs it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..config import NFTContractConfig, _require
from ..errors import ReproError
from ..market.nft_collections import CHAIN_CHURN, TIER_VOLATILITY, Chain, FrequencyTier
from ..rollup.state import ExecutionMode, L2State
from ..rollup.transaction import NFTTransaction, TxKind
from ..workloads.generator import _feasible_kinds


@dataclass(frozen=True)
class StreamTrafficConfig:
    """Shape of the synthetic user population and its fee process."""

    num_users: int = 400
    num_ifus: int = 2
    #: Zipf exponent over user ranks; volume concentrates on low ranks
    #: (the IFUs occupy the hottest ranks, as the paper's adversary
    #: model assumes they trade constantly).
    zipf_exponent: float = 1.1
    #: Figure 10 churn parameters: the chain scales fee dispersion and
    #: the tier sets the base volatility of the priority-fee process.
    chain: Chain = Chain.OPTIMISM
    tier: FrequencyTier = FrequencyTier.MFT
    #: Probability mix of (mint, transfer, burn) among feasible kinds.
    tx_type_mix: Tuple[float, float, float] = (0.35, 0.50, 0.15)
    initial_balance_eth: float = 25.0
    max_supply: int = 4096
    #: Fraction of the supply pre-minted before the stream starts; like
    #: the batch generator, every IFU is topped up to at least one token.
    premint_fraction: float = 0.25
    mean_priority_fee: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.num_users >= 2, "need at least two users")
        _require(1 <= self.num_ifus <= self.num_users,
                 "num_ifus must be in [1, num_users]")
        _require(self.zipf_exponent > 0, "zipf_exponent must be positive")
        _require(abs(sum(self.tx_type_mix) - 1.0) < 1e-9,
                 "tx_type_mix must sum to 1")
        _require(self.initial_balance_eth > 0,
                 "initial balance must be positive")
        _require(self.max_supply >= self.num_ifus,
                 "max_supply must cover one premint token per IFU")
        _require(0.0 <= self.premint_fraction <= 1.0,
                 "premint_fraction must be in [0, 1]")
        _require(self.mean_priority_fee > 0,
                 "mean_priority_fee must be positive")


class TrafficGenerator:
    """Endless seeded transaction source over one NFT collection.

    Deterministic: two generators built from the same config + seed
    emit identical transaction streams, batch boundaries included.
    """

    def __init__(
        self, config: Optional[StreamTrafficConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config or StreamTrafficConfig()
        self.seed = self.config.seed if seed is None else int(seed)
        self._rng = np.random.default_rng(self.seed)
        cfg = self.config

        self.ifus: Tuple[str, ...] = tuple(
            f"ifu-{i}" for i in range(cfg.num_ifus)
        )
        regulars = tuple(
            f"user-{i}" for i in range(cfg.num_users - cfg.num_ifus)
        )
        #: IFUs first: they hold the hottest zipf ranks.
        self.users: Tuple[str, ...] = self.ifus + regulars

        ranks = np.arange(1, cfg.num_users + 1, dtype=np.float64)
        weights = ranks ** (-cfg.zipf_exponent)
        self._weights = weights / weights.sum()

        self.pre_state = self._build_pre_state()
        #: Shadow state the generator simulates against (batch mode:
        #: an infeasible apply is recorded, never raised).
        self._sim = self.pre_state.copy()
        self._sim.mode = ExecutionMode.BATCH
        self._nonce = 0

    # ------------------------------------------------------------------ #

    def _build_pre_state(self) -> L2State:
        cfg = self.config
        nft_config = NFTContractConfig(
            symbol="PT", name="ParoleToken", max_supply=cfg.max_supply,
            initial_price_eth=0.2,
        )
        balances = {
            user: float(cfg.initial_balance_eth) for user in self.users
        }
        inventory = {user: 0 for user in self.users}
        premint = max(
            int(cfg.max_supply * cfg.premint_fraction), cfg.num_ifus
        )
        for ifu in self.ifus:
            inventory[ifu] += 1
        extra = premint - cfg.num_ifus
        if extra > 0:
            holders = self._rng.choice(
                cfg.num_users, size=extra, p=self._weights
            )
            for index in holders:
                inventory[self.users[int(index)]] += 1
        return L2State(
            nft_config=nft_config,
            balances=balances,
            inventory=inventory,
            mode=ExecutionMode.BATCH,
        )

    # ------------------------------------------------------------------ #

    @property
    def generated(self) -> int:
        """Transactions emitted so far."""
        return self._nonce

    def _pick_user(self) -> str:
        return self.users[
            int(self._rng.choice(self.config.num_users, p=self._weights))
        ]

    def _pick_buyer(self, seller: str) -> Optional[str]:
        price = self._sim.unit_price
        # A few zipf draws first (hot accounts trade with hot accounts),
        # then a deterministic scan so a funded buyer is never missed.
        for _ in range(4):
            candidate = self._pick_user()
            if candidate != seller and self._sim.balance(candidate) >= price:
                return candidate
        for candidate in self.users:
            if candidate != seller and self._sim.balance(candidate) >= price:
                return candidate
        return None

    def _priority_fee(self) -> float:
        cfg = self.config
        sigma = TIER_VOLATILITY[cfg.tier] * CHAIN_CHURN[cfg.chain]
        draw = float(self._rng.lognormal(mean=0.0, sigma=4.0 * sigma))
        return round(cfg.mean_priority_fee * draw, 6)

    def _next_tx(self) -> NFTTransaction:
        cfg = self.config
        mint_p, transfer_p, burn_p = cfg.tx_type_mix
        for _ in range(16):
            sender = self._pick_user()
            kinds = _feasible_kinds(self._sim, sender)
            if not kinds:
                continue
            weights = np.array(
                [
                    {"mint": mint_p, "transfer": transfer_p, "burn": burn_p}[
                        kind.value
                    ]
                    for kind in kinds
                ]
            )
            if weights.sum() == 0:
                weights = np.ones(len(kinds))
            weights = weights / weights.sum()
            kind = kinds[int(self._rng.choice(len(kinds), p=weights))]
            recipient = None
            if kind is TxKind.TRANSFER:
                recipient = self._pick_buyer(sender)
                if recipient is None:
                    continue
            tx = NFTTransaction(
                kind=kind,
                sender=sender,
                recipient=recipient,
                base_fee=1.0,
                priority_fee=self._priority_fee(),
                nonce=self._nonce,
                label=f"stream-{self._nonce}",
            )
            self._nonce += 1
            self._sim.apply(tx)
            return tx
        raise ReproError(
            "traffic generator found no feasible transaction after 16 "
            "draws; increase balances or supply headroom"
        )

    def next_batch(self, count: int) -> Tuple[NFTTransaction, ...]:
        """The next ``count`` transactions of the stream."""
        if count <= 0:
            raise ReproError("batch size must be positive")
        return tuple(self._next_tx() for _ in range(count))

    def involvement(self, txs) -> dict:
        """Per-IFU participation counts over ``txs`` (telemetry helper)."""
        return {
            ifu: sum(1 for tx in txs if tx.involves(ifu)) for ifu in self.ifus
        }
