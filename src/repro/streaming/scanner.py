"""The arbitrage-scanner service: DQN reordering on a latency budget.

Offline experiments can afford to run the solver on every batch; a
streaming pipeline cannot.  :class:`BatchScanner` is the serving-path
wrapper around :class:`~repro.solvers.DQNInferenceSolver`:

* a cheap :func:`~repro.core.arbitrage.assess_opportunity` pre-check
  skips batches that cannot possibly be profitable;
* every solve is admitted against a *deterministic* per-batch budget —
  an estimated evaluation count, never wall-clock time — so the
  degrade/serve decision is identical on every machine and every run
  (wall-clock timings are recorded for telemetry but never consulted);
* batches whose estimated cost blows the budget degrade gracefully to
  the honest (identity) ordering instead of missing the block slot;
* solved orderings are memoized in a :class:`~repro.store.ResultStore`
  keyed by pre-state root + transaction hashes + scanner config, so a
  replayed stream (or a lane re-run) serves cached orders instantly.

The GENTRANSEQ Q-network's input dimension depends on the sequence
length N, so the scanner keeps one lazily-trained solver per distinct
batch size.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import GenTranSeqConfig, _require
from ..core.arbitrage import assess_opportunity
from ..rollup.fraud_proof import state_root
from ..rollup.state import L2State
from ..rollup.transaction import NFTTransaction
from ..solvers import DQNInferenceSolver
from ..solvers.base import ReorderProblem
from ..store.keys import code_fingerprint, digest
from ..strategies.base import BaseStrategy, MempoolView, StrategyAction


@dataclass(frozen=True)
class ScannerConfig:
    """Serving-path policy of the arbitrage scanner."""

    #: Batches longer than this degrade immediately (Q-network input
    #: dimension grows with N^2; Figure 11's inference curve sets the
    #: practical ceiling).
    max_batch_size: int = 24
    #: Deterministic latency budget: the maximum *estimated* number of
    #: order evaluations one batch may spend before it must degrade.
    eval_budget_per_batch: int = 512
    max_swaps: int = 12
    #: Beam width of the rollout (1 = the paper's greedy rollout).
    population: int = 1
    #: Offline training budget per distinct batch size (first batch of a
    #: given size pays it; excluded from the serving budget, matching
    #: the paper's offline-training / online-inference split).
    train_episodes: int = 2
    train_steps: int = 40
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.max_batch_size >= 2, "max_batch_size must be >= 2")
        _require(self.eval_budget_per_batch >= 1,
                 "eval_budget_per_batch must be positive")
        _require(self.max_swaps >= 1, "max_swaps must be positive")
        _require(self.population >= 1, "population must be >= 1")
        _require(self.train_episodes >= 0,
                 "train_episodes cannot be negative")
        _require(self.train_steps >= 1, "train_steps must be positive")

    def estimated_evaluations(self, size: int) -> int:
        """Deterministic upper estimate of one solve's evaluation count."""
        if self.population == 1:
            return self.max_swaps
        # Beam rollout: up to population^2 successors scored per round.
        return self.max_swaps * self.population * self.population


@dataclass(frozen=True)
class ScanOutcome:
    """What the scanner did with one collected batch.

    Everything except ``elapsed_ms`` is deterministic for a given stream
    seed and scanner config; ``elapsed_ms`` is wall clock and must be
    excluded from any byte-identity comparison.
    """

    batch_index: int
    size: int
    #: ``reordered`` (solver improved the order), ``identity`` (solver
    #: ran, honest order kept), ``skipped`` (pre-check said no
    #: opportunity), ``degraded`` (budget/size ceiling hit).
    action: str
    reason: str
    profit: float
    evaluations: int
    cached: bool
    elapsed_ms: float

    def deterministic_payload(self) -> dict:
        """JSON-able view of the decision itself.

        Wall clock (``elapsed_ms``) and provenance (``reason``,
        ``cached``) are stripped: a cache hit must be indistinguishable
        from the solve it memoized.
        """
        return {
            "batch_index": self.batch_index,
            "size": self.size,
            "action": self.action,
            "profit": round(self.profit, 9),
            "evaluations": self.evaluations,
        }


class ScannerStrategy(BaseStrategy):
    """A :class:`BatchScanner` behind the strategy plug-in contract."""

    name = "batch-scanner"
    description = "budgeted DQN reordering served by a BatchScanner"

    def __init__(self, scanner: "BatchScanner") -> None:
        self.scanner = scanner

    def beneficiaries(self) -> Tuple[str, ...]:
        return self.scanner.ifus

    def observe(self, pre_state: L2State, view: MempoolView) -> StrategyAction:
        ordered, _ = self.scanner.scan(pre_state, view.transactions)
        return StrategyAction.permutation(ordered)


class BatchScanner:
    """Scan collected batches and reorder the profitable ones in budget."""

    def __init__(
        self,
        ifus: Sequence[str],
        config: Optional[ScannerConfig] = None,
        store=None,
    ) -> None:
        self.ifus: Tuple[str, ...] = tuple(ifus)
        self.config = config or ScannerConfig()
        self._store = store
        #: One solver per distinct batch size N: the Q-network's
        #: observation/action dimensions are functions of N, so a solver
        #: trained for one size cannot serve another.
        self._solvers: Dict[int, DQNInferenceSolver] = {}
        self.outcomes: List[ScanOutcome] = []
        self._batch_index = 0

    # ------------------------------------------------------------------ #

    def _solver_for(self, size: int) -> DQNInferenceSolver:
        solver = self._solvers.get(size)
        if solver is None:
            cfg = self.config
            solver = DQNInferenceSolver(
                config=GenTranSeqConfig(
                    episodes=max(cfg.train_episodes, 1),
                    steps_per_episode=cfg.train_steps,
                    seed=cfg.seed,
                ),
                train_episodes=cfg.train_episodes,
                max_swaps=cfg.max_swaps,
                population=cfg.population,
            )
            self._solvers[size] = solver
        return solver

    def _cache_key(self, pre_state: L2State,
                   txs: Sequence[NFTTransaction]) -> str:
        cfg = self.config
        return digest([
            "stream-scan",
            code_fingerprint(),
            state_root(pre_state),
            [tx.tx_hash for tx in txs],
            cfg.max_batch_size,
            cfg.eval_budget_per_batch,
            cfg.max_swaps,
            cfg.population,
            cfg.train_episodes,
            cfg.train_steps,
            cfg.seed,
        ])

    # ------------------------------------------------------------------ #

    def scan(
        self, pre_state: L2State, collected: Sequence[NFTTransaction]
    ) -> Tuple[Tuple[NFTTransaction, ...], ScanOutcome]:
        """Decide an ordering for one collected batch.

        Returns the chosen ordering (a permutation of ``collected`` —
        the aggregator enforces this independently) and the outcome
        record.
        """
        started = time.perf_counter()
        index = self._batch_index
        self._batch_index += 1
        txs = tuple(collected)
        size = len(txs)
        cfg = self.config

        def finish(order, action, reason, profit, evaluations, cached=False):
            outcome = ScanOutcome(
                batch_index=index,
                size=size,
                action=action,
                reason=reason,
                profit=profit,
                evaluations=evaluations,
                cached=cached,
                elapsed_ms=(time.perf_counter() - started) * 1000.0,
            )
            self.outcomes.append(outcome)
            return tuple(txs[i] for i in order), outcome

        identity = tuple(range(size))
        if size < 2:
            return finish(identity, "skipped", "fewer than two transactions",
                          0.0, 0)
        if size > cfg.max_batch_size:
            return finish(identity, "degraded",
                          f"batch of {size} exceeds max_batch_size "
                          f"{cfg.max_batch_size}", 0.0, 0)
        assessment = assess_opportunity(txs, self.ifus)
        if not assessment.has_opportunity:
            return finish(identity, "skipped",
                          "; ".join(assessment.reasons), 0.0, 0)
        estimate = cfg.estimated_evaluations(size)
        if estimate > cfg.eval_budget_per_batch:
            return finish(identity, "degraded",
                          f"estimated {estimate} evaluations exceeds budget "
                          f"{cfg.eval_budget_per_batch}", 0.0, 0)

        key = self._cache_key(pre_state, txs)
        if self._store is not None:
            cached, found = self._store.fetch_object(key)
            if found:
                order = tuple(int(i) for i in cached["order"])
                profit = float(cached["best_objective"]) - float(
                    cached["original_objective"]
                )
                action = "reordered" if profit > 1e-12 else "identity"
                return finish(order, action, "served from result store",
                              profit, int(cached["evaluations"]), cached=True)

        problem = ReorderProblem(
            pre_state=pre_state.copy(), transactions=txs, ifus=self.ifus
        )
        result = self._solver_for(size).solve(problem)
        if self._store is not None:
            self._store.put_object(key, {
                "order": list(result.best_order),
                "best_objective": result.best_objective,
                "original_objective": result.original_objective,
                "evaluations": result.evaluations,
            })
        action = "reordered" if result.improved else "identity"
        reason = (
            "solver improved the honest order"
            if result.improved
            else "solver found no feasible improvement"
        )
        return finish(result.best_order, action, reason, result.profit,
                      result.evaluations)

    # ------------------------------------------------------------------ #

    def as_strategy(self) -> "ScannerStrategy":
        """This scanner as a strategy plug-in (permute-only by contract)."""
        return ScannerStrategy(self)

    def as_reorderer(
        self,
    ) -> Callable[[L2State, Sequence[NFTTransaction]], Sequence[NFTTransaction]]:
        """Deprecated adapter; use :meth:`as_strategy` instead."""
        warnings.warn(
            "BatchScanner.as_reorderer() is deprecated; use "
            "BatchScanner.as_strategy() with "
            "AdversarialAggregator(strategy=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )

        def reorder(state: L2State, txs: Sequence[NFTTransaction]):
            ordered, _ = self.scan(state, txs)
            return ordered

        return reorder

    # ------------------------------------------------------------------ #

    def action_counts(self) -> Dict[str, int]:
        """Outcome histogram over every scanned batch."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.action] = counts.get(outcome.action, 0) + 1
        return counts

    @property
    def profit_total(self) -> float:
        """Total objective gain extracted across all batches."""
        return sum(o.profit for o in self.outcomes)

    @property
    def hit_rate(self) -> float:
        """Fraction of scanned batches the attack actually improved."""
        if not self.outcomes:
            return 0.0
        reordered = sum(1 for o in self.outcomes if o.action == "reordered")
        return reordered / len(self.outcomes)
