"""The Section VIII defense: GENTRANSEQ as a mempool detector.

* :mod:`repro.defense.detector`   — probe the fee-priority order's
  worst-case reordering profit;
* :mod:`repro.defense.mitigation` — demote the minimal transaction set
  needed to push the worst case under the threshold.
"""

from .detector import DetectionReport, MempoolGuard
from .mitigation import MitigationPlan, plan_demotion
from .guarded_node import GuardedRollupNode, GuardedRoundReport
from .order_commitment import (
    CommittedBatch,
    OrderCheckingVerifier,
    OrderVerificationReport,
    commit_with_order,
    order_commitment,
)

__all__ = [
    "DetectionReport",
    "MempoolGuard",
    "MitigationPlan",
    "plan_demotion",
    "GuardedRollupNode",
    "GuardedRoundReport",
    "CommittedBatch",
    "OrderCheckingVerifier",
    "OrderVerificationReport",
    "commit_with_order",
    "order_commitment",
]
