"""Minimal transaction demotion (Section VIII's mitigation).

"If the worst case is above the calculated threshold, then the minimal
number of involved transactions to avoid arbitrage will be sent to the
block behind."

:func:`plan_demotion` greedily removes, one at a time, the transaction
whose exclusion shrinks the worst-case profit the most, re-probing
after each removal, until the worst case falls under the threshold.
Greedy minimality matches the paper's sketch; exact minimal subsets are
exponential and unnecessary in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..rollup.state import L2State
from ..rollup.transaction import NFTTransaction
from .detector import DetectionReport, MempoolGuard


@dataclass
class MitigationPlan:
    """The guard's decision for one pending batch."""

    kept: Tuple[NFTTransaction, ...]
    demoted: Tuple[NFTTransaction, ...]
    initial_report: DetectionReport
    final_report: DetectionReport
    rounds: int

    @property
    def demoted_count(self) -> int:
        """How many transactions were pushed to the next block."""
        return len(self.demoted)

    @property
    def resolved(self) -> bool:
        """Whether the final worst case is under the threshold."""
        return not self.final_report.flagged


def plan_demotion(
    guard: MempoolGuard,
    pre_state: L2State,
    transactions: Sequence[NFTTransaction],
    max_demotions: Optional[int] = None,
) -> MitigationPlan:
    """Greedy minimal demotion until the batch is arbitrage-safe.

    Candidates are restricted to transactions involving the worst-case
    user — removing unrelated transactions cannot reduce that user's
    profit opportunity.
    """
    kept: List[NFTTransaction] = list(transactions)
    demoted: List[NFTTransaction] = []
    initial = guard.inspect(pre_state, kept)
    report = initial
    limit = max_demotions if max_demotions is not None else len(transactions)
    rounds = 0
    while report.flagged and demoted.__len__() < limit and len(kept) > 2:
        rounds += 1
        target_user = report.worst_case_user
        candidates = [
            tx for tx in kept if target_user is not None and tx.involves(target_user)
        ] or list(kept)
        best_tx = None
        best_worst = report.worst_case_profit_eth
        for tx in candidates:
            trial = [t for t in kept if t is not tx]
            trial_report = guard.inspect(pre_state, trial)
            if trial_report.worst_case_profit_eth < best_worst:
                best_worst = trial_report.worst_case_profit_eth
                best_tx = tx
        if best_tx is None:
            # No single removal helps; demote the worst user's highest-fee
            # transaction to guarantee progress.
            best_tx = max(candidates, key=lambda tx: tx.total_fee)
        kept.remove(best_tx)
        demoted.append(best_tx)
        report = guard.inspect(pre_state, kept)
    return MitigationPlan(
        kept=tuple(kept),
        demoted=tuple(demoted),
        initial_report=initial,
        final_report=report,
        rounds=rounds,
    )
