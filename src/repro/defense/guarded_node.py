"""Defense wired into the rollup pipeline (Section VIII, end to end).

:class:`GuardedRollupNode` extends the plain node: before each
aggregator's collection is executed, the mempool guard probes its
worst-case reordering profit; when flagged, the minimal demotion plan
runs and the demoted transactions are *requeued* — "sent to the block
behind" — instead of executed this round.  An adversarial aggregator
therefore receives a sanitised batch whose residual arbitrage is below
the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..config import DefenseConfig, GenTranSeqConfig, RollupConfig
from ..errors import RollupError
from ..rollup.node import RollupNode, RoundReport
from ..rollup.state import L2State
from ..rollup.transaction import NFTTransaction
from .detector import MempoolGuard
from .mitigation import MitigationPlan, plan_demotion


@dataclass
class GuardedRoundReport(RoundReport):
    """Round report extended with defense telemetry."""

    plans: List[MitigationPlan] = field(default_factory=list)

    @property
    def total_demoted(self) -> int:
        """Transactions pushed to the next block this round."""
        return sum(plan.demoted_count for plan in self.plans)

    @property
    def flagged_batches(self) -> int:
        """Batches the guard flagged before sanitising."""
        return sum(1 for plan in self.plans if plan.initial_report.flagged)


class GuardedRollupNode(RollupNode):
    """A rollup node whose mempool runs the Section VIII guard."""

    def __init__(
        self,
        l2_state: L2State,
        config: Optional[RollupConfig] = None,
        defense_config: Optional[DefenseConfig] = None,
        probe_config: Optional[GenTranSeqConfig] = None,
    ) -> None:
        super().__init__(l2_state, config)
        self.guard = MempoolGuard(
            config=defense_config, probe_config=probe_config
        )

    def run_round(
        self, collect_per_aggregator: Optional[int] = None
    ) -> GuardedRoundReport:
        """One round with pre-aggregation sanitisation."""
        if not self.aggregators:
            raise RollupError("no aggregators registered")
        count = collect_per_aggregator or self.config.aggregator_mempool_size
        report = GuardedRoundReport()
        for aggregator in self.aggregators:
            if not aggregator.alive:
                report.skipped_aggregators.append(aggregator.address)
                continue
            if len(self.mempool) == 0:
                break
            if self.mempool.stalled:
                report.stalled = True
                break
            collected = self.mempool.collect(min(count, len(self.mempool)))

            plan = plan_demotion(self.guard, self.l2_state.copy(), collected)
            report.plans.append(plan)
            if plan.demoted:
                self.mempool.requeue(plan.demoted)
            batch_txs: Tuple[NFTTransaction, ...] = plan.kept
            if not batch_txs:
                continue

            # Execution, bounded-retry commitment, inspection and failure
            # recovery (requeue on error) are shared with the plain node.
            self._process_and_commit(aggregator, batch_txs, report)
        self.chain.seal_block()
        return report
