"""Arbitrage detection inside Bedrock's mempool (Section VIII).

"Initially, the order with the base and priority fee will be considered
and sent to the GENTRANSEQ module to observe the worst case (maximum
profit for any of the users involved in the pending transactions)."

:class:`MempoolGuard` runs exactly that probe: for every user involved
in the pending batch it searches for the most profitable reordering
(with a bounded GENTRANSEQ budget) and compares the worst case against
a — optionally fee-scaled — threshold.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

logger = logging.getLogger(__name__)

from ..config import DefenseConfig, GenTranSeqConfig
from ..core.gentranseq import GenTranSeq
from ..rollup.state import L2State
from ..rollup.transaction import NFTTransaction


@dataclass(frozen=True)
class DetectionReport:
    """What the guard found for one pending batch."""

    worst_case_profit_eth: float
    worst_case_user: Optional[str]
    per_user_profit: Dict[str, float]
    threshold_eth: float
    flagged: bool

    @property
    def margin_eth(self) -> float:
        """How far above (+) or below (-) the threshold the worst case is."""
        return self.worst_case_profit_eth - self.threshold_eth


class MempoolGuard:
    """Pre-sequencing arbitrage detector for Bedrock's mempool."""

    def __init__(
        self,
        config: Optional[DefenseConfig] = None,
        probe_config: Optional[GenTranSeqConfig] = None,
    ) -> None:
        self.config = config or DefenseConfig()
        self.probe_config = probe_config or GenTranSeqConfig(
            episodes=self.config.probe_episodes,
            steps_per_episode=50,
        )

    def threshold_for(self, transactions: Sequence[NFTTransaction]) -> float:
        """The profit threshold, optionally scaled by mean priority fee.

        A batch whose users paid high priority fees tolerates more
        re-sequencing slack before demotion is justified ("depending on
        the priority fee", Section VIII)."""
        base = self.config.profit_threshold_eth
        if not self.config.fee_scaled_threshold or not transactions:
            return base
        mean_priority = sum(tx.priority_fee for tx in transactions) / len(
            transactions
        )
        return base * (1.0 + mean_priority)

    def involved_users(
        self, transactions: Sequence[NFTTransaction]
    ) -> Tuple[str, ...]:
        """Users participating in more than one pending transaction —
        the only ones a reordering can favor (Section V-B)."""
        counts: Dict[str, int] = {}
        for tx in transactions:
            for party in tx.parties():
                counts[party] = counts.get(party, 0) + 1
        return tuple(sorted(u for u, c in counts.items() if c >= 2))

    def probe_user(
        self,
        pre_state: L2State,
        transactions: Sequence[NFTTransaction],
        user: str,
    ) -> float:
        """Best reordering profit achievable for one user."""
        module = GenTranSeq(config=self.probe_config)
        result = module.optimize(
            pre_state, transactions, (user,), stop_when_profitable=False
        )
        return max(0.0, result.profit)

    def inspect(
        self,
        pre_state: L2State,
        transactions: Sequence[NFTTransaction],
    ) -> DetectionReport:
        """Run the worst-case probe over every involved user."""
        threshold = self.threshold_for(transactions)
        per_user: Dict[str, float] = {}
        worst_user: Optional[str] = None
        worst = 0.0
        for user in self.involved_users(transactions):
            profit = self.probe_user(pre_state, transactions, user)
            per_user[user] = profit
            if profit > worst:
                worst = profit
                worst_user = user
        flagged = worst > threshold
        if flagged:
            logger.info(
                "mempool guard flagged batch: worst case %.4f ETH for %s "
                "(threshold %.4f)",
                worst, worst_user, threshold,
            )
        return DetectionReport(
            worst_case_profit_eth=worst,
            worst_case_user=worst_user,
            per_user_profit=per_user,
            threshold_eth=threshold,
            flagged=flagged,
        )
