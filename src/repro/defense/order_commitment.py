"""Protocol-level defense: fee-order commitments.

Section VIII's defense is heuristic (probe + demote).  The *protocol*
fix is stronger: extend the batch commitment so the aggregator also
commits to the fee-priority order of its collection, and make verifiers
check that the executed order matches it.  Under this rule a PAROLE
reordering is no longer invisible — the executed transaction list
diverges from the order commitment, the challenge succeeds, and the
aggregator's bond is slashed.

This module implements that extension and quantifies its cost: the
commitment is one extra digest per batch, and verification is one sort
plus one comparison — no re-execution beyond what fraud proofs already
do.  It exists to show *why* the paper's threat model holds today
(deployed rollups commit to no ordering policy) and what closing the
gap takes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..crypto import MerkleTree
from ..rollup.batch import Batch
from ..rollup.state import L2State
from ..rollup.transaction import NFTTransaction, sort_by_fee
from ..rollup.verifier import VerificationReport, Verifier


def order_commitment(collected: Sequence[NFTTransaction]) -> str:
    """Digest of the canonical fee-priority order of a collection.

    The commitment is computed over the *sorted* collection, so any
    honest party holding the same transaction set derives the same
    digest regardless of how the aggregator actually executed.
    """
    canonical = sort_by_fee(collected)
    return MerkleTree([tx.tx_hash for tx in canonical]).root


@dataclass(frozen=True)
class CommittedBatch:
    """A batch plus its mandatory order commitment."""

    batch: Batch
    order_root: str

    @property
    def executed_order_root(self) -> str:
        """Digest of the order the aggregator actually executed."""
        return MerkleTree(
            [tx.tx_hash for tx in self.batch.transactions]
        ).root

    def order_respected(self) -> bool:
        """Whether execution followed the committed fee order."""
        return self.executed_order_root == self.order_root


def commit_with_order(
    aggregator: str,
    pre_state: L2State,
    collected: Sequence[NFTTransaction],
    executed_order: Optional[Sequence[NFTTransaction]] = None,
) -> CommittedBatch:
    """Build a batch under the order-commitment rule.

    ``executed_order`` defaults to the canonical fee order (honest); an
    adversarial aggregator passes its reordered sequence — and thereby
    produces a batch whose violation is publicly checkable.
    """
    from ..rollup.batch import build_batch

    order = tuple(executed_order) if executed_order is not None else sort_by_fee(collected)
    batch, _ = build_batch(aggregator, pre_state, order)
    return CommittedBatch(
        batch=batch, order_root=order_commitment(collected)
    )


@dataclass(frozen=True)
class OrderVerificationReport:
    """Fraud-proof report extended with the ordering check."""

    execution: VerificationReport
    order_respected: bool

    @property
    def should_challenge(self) -> bool:
        """Challenge on state fraud *or* ordering violation."""
        return self.execution.should_challenge or not self.order_respected


class OrderCheckingVerifier(Verifier):
    """A verifier that additionally enforces the order commitment."""

    def inspect_committed(
        self, committed: CommittedBatch, pre_state: L2State
    ) -> OrderVerificationReport:
        """Full check: re-execution plus ordering-policy compliance."""
        execution = self.inspect(committed.batch, pre_state)
        return OrderVerificationReport(
            execution=execution,
            order_respected=committed.order_respected(),
        )
