"""Fraud proofs: canonical state roots and re-execution checks.

The "proof" of Section V-A is the Merkle state root of the L2 chain after
batch execution.  A verifier disputes a batch by re-executing its
transactions from the pre-state and comparing roots.  Crucially for the
paper's thesis: a PAROLE-reordered batch re-executes to exactly the root
the adversarial aggregator claimed, so the fraud proof *cannot* catch the
attack — ordering policy is outside what the proof commits to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..crypto import MerkleTree, MerkleTrie, TrieProof, hash_value
from ..telemetry import get_metrics
from .ovm import OVM
from .state import L2State
from .transaction import NFTTransaction


def state_root(state: L2State) -> str:
    """Canonical Merkle root over the L2 state.

    Leaves are the sorted balance entries, the sorted inventory entries
    and the remaining supply, so two states with identical contents hash
    identically regardless of insertion order.
    """
    balances, inventory, remaining = state.canonical_items()
    leaves = [
        ["balance", user, amount] for user, amount in balances
    ] + [
        ["inventory", user, count] for user, count in inventory
    ] + [["supply", remaining]]
    return MerkleTree(leaves).root


@dataclass(frozen=True)
class FraudProof:
    """What an aggregator publishes alongside a batch commitment."""

    tx_root: str
    pre_state_root: str
    claimed_post_root: str

    @property
    def digest(self) -> str:
        """Single digest committing to the whole proof."""
        return hash_value(
            ["proof", self.tx_root, self.pre_state_root, self.claimed_post_root]
        )


def recompute_post_root(
    pre_state: L2State, transactions: Tuple[NFTTransaction, ...], ovm: OVM = None
) -> str:
    """Re-execute a batch from its pre-state and return the post root."""
    machine = ovm or OVM()
    trace = machine.replay(pre_state, transactions)
    metrics = get_metrics()
    metrics.counter("fraud_proof.recomputes").inc()
    metrics.counter("fraud_proof.recomputed_steps").inc(len(transactions))
    return state_root(trace.final_state)


def account_trie(state: L2State) -> MerkleTrie:
    """Build the per-account state trie.

    Each account keys a ``(balance, inventory)`` record; the supply gets
    its own key.  The trie's root commits to the same contents as
    :func:`state_root` but additionally supports single-account proofs.
    """
    balances, inventory, remaining = state.canonical_items()
    holdings = dict(inventory)
    items = {
        ("account", user): (amount, holdings.get(user, 0))
        for user, amount in balances
    }
    for user, count in holdings.items():
        items.setdefault(("account", user), (0.0, count))
    items[("supply",)] = remaining
    return MerkleTrie.from_items(items)


def account_state_root(state: L2State) -> str:
    """Trie-based state root with per-account provability."""
    return account_trie(state).root


def prove_account(state: L2State, user: str) -> TrieProof:
    """Inclusion proof of one user's (balance, holdings) in the root."""
    return account_trie(state).prove(("account", user))
