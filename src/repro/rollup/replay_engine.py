"""Incremental replay acceleration for candidate-order scoring.

Every GENTRANSEQ step (Eq. 8) scores a candidate ordering by replaying it
through the OVM.  A from-scratch replay costs O(N) state transitions even
though a pairwise swap ``(i, j)`` only perturbs the suffix starting at
``min(i, j)`` — the prefix executes identically.  This module exploits
that:

* :class:`IncrementalOVM` keeps one working state (plain balance and
  inventory dicts plus O(1) supply/consistency counters) and a per-step
  **copy-on-write undo log**: before a step mutates a balance or
  inventory entry, the prior value (or its absence) is recorded.  A new
  order that shares a k-step prefix with the last one is evaluated by
  undoing the suffix back to position k and executing only the new
  suffix.  Undo restores the exact stored floats, so incremental replays
  are bit-identical to :meth:`~.ovm.OVM.replay` — a property test
  (``tests/rollup/test_replay_engine.py``) enforces this for both
  execution modes, with and without fee charging.
* The per-step record is **columnar** (parallel lists of executed flags,
  validities, prices and remaining supplies) rather than per-step trace
  objects: the solver hot path (:meth:`IncrementalOVM.evaluate`) never
  allocates a ``TraceStep``/``StepResult``/``L2State``.  The
  object-shaped :meth:`IncrementalOVM.replay_order` materialises a full
  :class:`~.ovm.ReplayTrace` from the same columns for callers that want
  one.
* :class:`BatchReplayEngine` scores **K candidate orderings per call**
  (:meth:`~BatchReplayEngine.evaluate_many`) on columnar numpy state —
  one ``(users, candidates)`` balance matrix, one inventory matrix, a
  per-candidate supply vector and an executed-bitmask matrix — so
  population-style solvers amortise the Python interpreter over whole
  candidate sets.  Results are bit-identical to K serial
  :class:`IncrementalOVM` evaluations (same IEEE-754 operations in the
  same order; a differential property test enforces it).
* :class:`PermutationCache` memoises full evaluations by order tuple —
  DQN ε-greedy rollouts, hill climbing and annealing revisit permutations
  constantly.  It is the **single authoritative evaluation cache**: the
  environment owns one instance consulted by both the serial and the
  batch path; neither engine keeps a second copy of a scored ordering.
* :class:`ReplayEngineStats` counts scratch/incremental replays, reused
  vs executed steps, batch-kernel calls/candidates and cache hits so
  callers (``solvers/profiling.py``, run manifests) can report how much
  replay work was avoided.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from itertools import chain
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..telemetry import get_metrics, span
from ..tokens import TxValidity
from .ckernel import load_kernel
from .ovm import ReplayTrace, TraceStep
from .state import CountingInventory, ExecutionMode, L2State, StepResult
from .transaction import NFTTransaction, TxKind

#: Sentinel marking "key was absent before this step" in the undo log, so
#: undo deletes the entry instead of leaving a spurious zero behind
#: (state roots hash every entry, absent and zero-valued differ).
_MISSING = object()

#: One undo entry: (is_inventory, key, prior value or ``_MISSING``).
_UndoEntry = Tuple[bool, str, Any]


@dataclass
class ReplayEngineStats:
    """Counters describing how much replay work the engine avoided."""

    scratch_replays: int = 0
    incremental_replays: int = 0
    steps_executed: int = 0
    steps_reused: int = 0
    steps_undone: int = 0
    resume_depth_total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    batch_calls: int = 0
    batch_candidates: int = 0
    batch_steps: int = 0

    @property
    def replays(self) -> int:
        """Total replays served by the engine (cache hits excluded)."""
        return self.scratch_replays + self.incremental_replays + self.batch_candidates

    @property
    def mean_batch_size(self) -> float:
        """Average candidates per batch-kernel call."""
        if not self.batch_calls:
            return 0.0
        return self.batch_candidates / self.batch_calls

    @property
    def mean_resume_depth(self) -> float:
        """Average reused-prefix length of incremental replays."""
        if not self.incremental_replays:
            return 0.0
        return self.resume_depth_total / self.incremental_replays

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of evaluations answered from the permutation cache."""
        lookups = self.cache_hits + self.cache_misses
        if not lookups:
            return 0.0
        return self.cache_hits / lookups

    @property
    def step_reuse_fraction(self) -> float:
        """Fraction of replay steps served from cached prefixes."""
        total = self.steps_executed + self.steps_reused
        if not total:
            return 0.0
        return self.steps_reused / total

    def publish(self, prefix: str = "replay_engine") -> Dict[str, float]:
        """Mirror the counters into the active metrics registry.

        The engine's hot loop keeps these counters as plain ints (a
        registry instrument per step would be measurable); this method
        is the registry view of them — callers publish at natural
        boundaries (``ReorderEnv.replay_stats``, solver profiling, run
        manifests).  Values are cumulative, so they land as gauges.
        Returns the published dict for convenience.
        """
        values = self.as_dict()
        metrics = get_metrics()
        if metrics.enabled:
            for key, value in values.items():
                metrics.gauge(f"{prefix}.{key}").set(value)
        return values

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric view for solver metadata / JSON artifacts."""
        return {
            "scratch_replays": float(self.scratch_replays),
            "incremental_replays": float(self.incremental_replays),
            "steps_executed": float(self.steps_executed),
            "steps_reused": float(self.steps_reused),
            "steps_undone": float(self.steps_undone),
            "mean_resume_depth": self.mean_resume_depth,
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "cache_evictions": float(self.cache_evictions),
            "cache_hit_rate": self.cache_hit_rate,
            "step_reuse_fraction": self.step_reuse_fraction,
            "batch_calls": float(self.batch_calls),
            "batch_candidates": float(self.batch_candidates),
            "batch_steps": float(self.batch_steps),
            "mean_batch_size": self.mean_batch_size,
        }


class EvalSummary:
    """Allocation-light result of scoring one candidate order.

    Everything the environment's Eq. 8 scoring and the Figure 4 encoding
    need, without materialising per-step trace objects: parallel
    ``executed`` / ``prices_before`` / ``remaining_after`` columns (one
    slot per position), the final price, the batch-end consistency flag
    and the final wealth of the engine's ``wealth_users``.  Columns are
    copies — they stay valid after the engine evaluates further orders.
    """

    __slots__ = (
        "order",
        "executed",
        "prices_before",
        "remaining_after",
        "final_price",
        "consistent",
        "executed_count",
        "wealth",
    )

    def __init__(
        self,
        order: Tuple[int, ...],
        executed: List[bool],
        prices_before: List[float],
        remaining_after: List[int],
        final_price: float,
        consistent: bool,
        executed_count: int,
        wealth: Dict[str, float],
    ) -> None:
        self.order = order
        self.executed = executed
        self.prices_before = prices_before
        self.remaining_after = remaining_after
        self.final_price = final_price
        self.consistent = consistent
        self.executed_count = executed_count
        self.wealth = wealth


class IncrementalOVM:
    """OVM replays over permutations of one fixed transaction collection.

    Bound to a pre-state and the N collected transactions;
    :meth:`evaluate` scores any index sequence into that collection,
    reusing the longest prefix shared with the previously evaluated
    order.  Behaviour (per-step results, watched wealth, final state) is
    identical to ``OVM().replay`` on the materialised sequence — see
    :meth:`replay_order` for the trace-shaped view.
    """

    def __init__(
        self,
        pre_state: L2State,
        transactions: Sequence[NFTTransaction],
        watch: Sequence[str] = (),
        mode: Optional[ExecutionMode] = None,
        stats: Optional[ReplayEngineStats] = None,
        wealth_users: Sequence[str] = (),
    ) -> None:
        self.pre_state = pre_state
        self.transactions = tuple(transactions)
        self.watch = tuple(watch)
        self.mode = mode
        self.stats = stats if stats is not None else ReplayEngineStats()
        #: Users whose *final* wealth :meth:`evaluate` reports (the
        #: environment passes its IFUs; per-step sampling uses ``watch``).
        self.wealth_users = tuple(wealth_users)
        self._mode = mode if mode is not None else pre_state.mode
        self._strict = self._mode is ExecutionMode.STRICT
        self._charge = pre_state.charge_fees
        self._max_supply = pre_state.nft_config.max_supply
        self._pricing = pre_state.pricing
        self._price_table = self._pricing.table()
        #: Per-transaction constants, pre-resolved so the hot loop does a
        #: single tuple unpack instead of four attribute reads.
        self._meta = tuple(
            (
                0 if tx.kind is TxKind.MINT else (1 if tx.kind is TxKind.TRANSFER else 2),
                tx.sender,
                tx.recipient,
                tx.total_fee,
            )
            for tx in self.transactions
        )
        self._balances: Optional[Dict[str, float]] = None
        self._inventory: Dict[str, int] = {}
        self._total = 0
        self._neg = 0
        #: Indices actually applied, kept exactly in sync with the
        #: columns below (even when a step raises mid-replay).
        self._order: List[int] = []
        self._c_exec: List[bool] = []
        self._c_validity: List[TxValidity] = []
        self._c_price: List[float] = []
        self._c_remaining: List[int] = []
        self._c_wealth: List[Tuple[Tuple[str, float], ...]] = []
        self._undos: List[Tuple[_UndoEntry, ...]] = []

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def evaluate(self, order: Sequence[int]) -> EvalSummary:
        """Score the permutation ``order`` on the allocation-light path.

        Resumes from the longest prefix shared with the previous
        evaluation and returns an :class:`EvalSummary` — no trace
        objects, no state snapshot.  This is the solver/DQN hot path.
        """
        order = tuple(order)
        self._advance(order)
        total = self._total
        table = self._price_table
        remaining = self._max_supply - total
        final_price = (
            table[remaining] if table is not None else self._pricing.price(remaining)
        )
        bget = self._balances.get
        iget = self._inventory.get
        executed = self._c_exec
        return EvalSummary(
            order=order,
            executed=executed[:],
            prices_before=self._c_price[:],
            remaining_after=self._c_remaining[:],
            final_price=final_price,
            consistent=self._neg == 0,
            executed_count=sum(executed),
            wealth={
                user: bget(user, 0.0) + iget(user, 0) * final_price
                for user in self.wealth_users
            },
        )

    def replay_order(self, order: Sequence[int]) -> ReplayTrace:
        """Replay ``order`` and materialise a full :class:`ReplayTrace`.

        Orders may be any length up to N (prefix evaluation works); each
        index must be within the collection.  The returned trace owns an
        independent snapshot of the final state, so it stays valid after
        further evaluations.  Per-step results are bit-identical to
        ``OVM().replay`` on the materialised sequence.
        """
        order = tuple(order)
        self._advance(order)
        table = self._price_table
        price = self._pricing.price
        transactions = self.transactions
        watch = self.watch
        wealth_col = self._c_wealth
        steps: List[TraceStep] = []
        rows = zip(
            self._order, self._c_exec, self._c_validity, self._c_price, self._c_remaining
        )
        for position, (tx_index, executed, validity, before, remaining) in enumerate(rows):
            # Skipped steps leave the supply unchanged, so the price at
            # ``remaining`` equals ``before`` and this holds for both.
            after = table[remaining] if table is not None else price(remaining)
            steps.append(
                TraceStep(
                    index=position,
                    tx=transactions[tx_index],
                    result=StepResult(
                        executed=executed,
                        validity=validity,
                        price_before=before,
                        price_after=after,
                        remaining_supply=remaining,
                    ),
                    watched_wealth=wealth_col[position] if watch else (),
                )
            )
        return ReplayTrace(
            steps=steps, final_state=self._snapshot(), watched_users=watch
        )

    def replay(
        self,
        transactions: Sequence[NFTTransaction],
        watch: Sequence[str] = (),
    ) -> ReplayTrace:
        """`OVM.replay`-shaped convenience over the bound collection.

        ``transactions`` must be drawn from the engine's collection; they
        are resolved to indices by identity first, equality second.
        """
        if tuple(watch) != self.watch:
            raise ValueError(
                "watch set is fixed at engine construction; "
                f"expected {self.watch!r}"
            )
        return self.replay_order(self._resolve(transactions))

    def reset(self) -> None:
        """Drop the cached working state; next replay starts from scratch."""
        self._balances = None
        self._inventory = {}
        self._total = 0
        self._neg = 0
        self._order = []
        self._c_exec = []
        self._c_validity = []
        self._c_price = []
        self._c_remaining = []
        self._c_wealth = []
        self._undos = []

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _resolve(
        self, transactions: Sequence[NFTTransaction]
    ) -> Tuple[int, ...]:
        by_id = {id(tx): i for i, tx in enumerate(self.transactions)}
        order = []
        for tx in transactions:
            index = by_id.get(id(tx))
            if index is None:
                try:
                    index = self.transactions.index(tx)
                except ValueError:
                    raise ValueError(
                        f"transaction {tx!r} is not in the bound collection"
                    ) from None
            order.append(index)
        return tuple(order)

    def _advance(self, order: Tuple[int, ...]) -> None:
        """Bring the working state to ``order`` (rewind + run suffix)."""
        if self._balances is None:
            pre = self.pre_state
            self._balances = dict(pre.balances)
            self._inventory = dict(pre.inventory)
            self._total = sum(self._inventory.values())
            self._neg = sum(1 for held in self._inventory.values() if held < 0)
            self.stats.scratch_replays += 1
            prefix = 0
        else:
            prefix = self._common_prefix(order)
            self.stats.incremental_replays += 1
            self.stats.resume_depth_total += prefix
        self._rewind_to(prefix)
        self.stats.steps_reused += prefix
        if prefix < len(order):
            self._run_suffix(order, prefix)

    def _common_prefix(self, order: Tuple[int, ...]) -> int:
        current = self._order
        limit = min(len(current), len(order))
        prefix = 0
        while prefix < limit and current[prefix] == order[prefix]:
            prefix += 1
        return prefix

    def _rewind_to(self, prefix: int) -> None:
        applied = self._order
        if len(applied) <= prefix:
            return
        balances = self._balances
        inventory = self._inventory
        total = self._total
        neg = self._neg
        undos = self._undos
        c_exec, c_validity = self._c_exec, self._c_validity
        c_price, c_remaining = self._c_price, self._c_remaining
        c_wealth = self._c_wealth
        watch = self.watch
        undone = 0
        while len(applied) > prefix:
            applied.pop()
            c_exec.pop()
            c_validity.pop()
            c_price.pop()
            c_remaining.pop()
            if watch:
                c_wealth.pop()
            for is_inventory, key, prior in reversed(undos.pop()):
                if is_inventory:
                    current = inventory[key]
                    total -= current
                    if current < 0:
                        neg -= 1
                    if prior is _MISSING:
                        del inventory[key]
                    else:
                        inventory[key] = prior
                        total += prior
                        if prior < 0:
                            neg += 1
                elif prior is _MISSING:
                    del balances[key]
                else:
                    balances[key] = prior
            undone += 1
        self._total = total
        self._neg = neg
        self.stats.steps_undone += undone

    def _run_suffix(self, order: Tuple[int, ...], start: int) -> None:
        """Execute ``order[start:]`` against the working state.

        The OVM transition (``L2State.check`` + ``L2State.apply``) is
        inlined over plain dicts: the per-step cost is what makes or
        breaks solver throughput, and attribute lookups, ``StepResult``
        allocation and the double validity check are all measurable at
        this call rate.  The differential property test keeps this loop
        honest against the readable reference implementation.

        If a step raises (a burn pushing global supply above max poisons
        Eq. 10, exactly as in a scratch replay), the failing step leaves
        no mutation behind and every column stays consistent, so the
        engine remains usable.
        """
        meta = self._meta
        balances = self._balances
        inventory = self._inventory
        total = self._total
        neg = self._neg
        max_supply = self._max_supply
        table = self._price_table
        price_of = self._pricing.price
        strict = self._strict
        charge = self._charge
        watch = self.watch
        fee_pool = L2State.FEE_POOL
        missing = _MISSING
        bget = balances.get
        iget = inventory.get
        order_append = self._order.append
        exec_append = self._c_exec.append
        validity_append = self._c_validity.append
        price_append = self._c_price.append
        remaining_append = self._c_remaining.append
        wealth_append = self._c_wealth.append
        undo_append = self._undos.append
        valid = TxValidity.VALID
        supply_exhausted = TxValidity.SUPPLY_EXHAUSTED
        insufficient = TxValidity.INSUFFICIENT_BALANCE
        not_owner = TxValidity.NOT_OWNER
        try:
            for position in range(start, len(order)):
                tx_index = order[position]
                kind, sender, recipient, fee = meta[tx_index]
                remaining = max_supply - total
                price = table[remaining] if table is not None else price_of(remaining)
                if kind == 0:  # MINT — Eq. 2
                    prior_bal = bget(sender, missing)
                    balance = 0.0 if prior_bal is missing else prior_bal
                    if remaining < 1:
                        validity = supply_exhausted
                    elif balance < price:
                        validity = insufficient
                    else:
                        validity = valid
                        balances[sender] = balance - price
                        prior_held = iget(sender, missing)
                        held = (0 if prior_held is missing else prior_held) + 1
                        inventory[sender] = held
                        total += 1
                        if prior_held is not missing and prior_held < 0:
                            neg -= 1
                        if held < 0:
                            neg += 1
                        undo = ((False, sender, prior_bal), (True, sender, prior_held))
                elif kind == 1:  # TRANSFER — Eq. 4
                    if strict and iget(sender, 0) < 1:
                        validity = not_owner
                    else:
                        prior_buyer = bget(recipient, missing)
                        buyer = 0.0 if prior_buyer is missing else prior_buyer
                        if buyer < price:
                            validity = insufficient
                        else:
                            validity = valid
                            balances[recipient] = buyer - price
                            prior_seller = bget(sender, missing)
                            balances[sender] = (
                                0.0 if prior_seller is missing else prior_seller
                            ) + price
                            prior_sold = iget(sender, missing)
                            sold = (0 if prior_sold is missing else prior_sold) - 1
                            inventory[sender] = sold
                            if prior_sold is not missing and prior_sold < 0:
                                neg -= 1
                            if sold < 0:
                                neg += 1
                            prior_bought = iget(recipient, missing)
                            bought = (0 if prior_bought is missing else prior_bought) + 1
                            inventory[recipient] = bought
                            if prior_bought is not missing and prior_bought < 0:
                                neg -= 1
                            if bought < 0:
                                neg += 1
                            undo = (
                                (False, recipient, prior_buyer),
                                (False, sender, prior_seller),
                                (True, sender, prior_sold),
                                (True, recipient, prior_bought),
                            )
                else:  # BURN — Eq. 6
                    if strict and iget(sender, 0) < 1:
                        validity = not_owner
                    else:
                        if total < 1:
                            # Burning past the global supply poisons the
                            # Eq. 10 price; raise the same TokenError a
                            # scratch replay's price read would, without
                            # committing the step.
                            price_of(max_supply - total + 1)
                        validity = valid
                        prior_burned = iget(sender, missing)
                        burned = (0 if prior_burned is missing else prior_burned) - 1
                        inventory[sender] = burned
                        total -= 1
                        if prior_burned is not missing and prior_burned < 0:
                            neg -= 1
                        if burned < 0:
                            neg += 1
                        undo = ((True, sender, prior_burned),)
                if validity is valid:
                    if charge:
                        prior_payer = bget(sender, missing)
                        balances[sender] = (
                            0.0 if prior_payer is missing else prior_payer
                        ) - fee
                        prior_pool = bget(fee_pool, missing)
                        balances[fee_pool] = (
                            0.0 if prior_pool is missing else prior_pool
                        ) + fee
                        undo += ((False, sender, prior_payer), (False, fee_pool, prior_pool))
                    remaining = max_supply - total
                    exec_append(True)
                    undo_append(undo)
                else:
                    exec_append(False)
                    undo_append(())
                validity_append(validity)
                price_append(price)
                remaining_append(remaining)
                order_append(tx_index)
                if watch:
                    current_price = (
                        table[remaining] if table is not None else price_of(remaining)
                    )
                    wealth_append(
                        tuple(
                            (user, bget(user, 0.0) + iget(user, 0) * current_price)
                            for user in watch
                        )
                    )
        finally:
            self._total = total
            self._neg = neg
            self.stats.steps_executed += len(self._order) - start

    def _snapshot(self) -> L2State:
        """Independent :class:`L2State` view of the working state."""
        state = L2State.__new__(L2State)
        state.nft_config = self.pre_state.nft_config
        state.pricing = self._pricing
        state.balances = dict(self._balances)
        state.inventory = CountingInventory(self._inventory)
        state._price_memo = (None, 0.0)
        state.mode = self._mode
        state.charge_fees = self._charge
        return state


class BatchReplayEngine:
    """Columnar replay of K candidate orderings per call.

    Bound, like :class:`IncrementalOVM`, to one pre-state and one fixed
    transaction collection.  :meth:`evaluate_many` replays every
    candidate simultaneously on column-major numpy state (cell
    ``candidate * rows + row`` — each candidate owns one contiguous
    state block):

    * ``balances``  — ``(K * rows,)`` float64;
    * ``inventory`` — ``(K * rows,)`` int64 with the same layout;
    * ``remaining`` — ``(K,)`` live supply counters (Eq. 10);
    * executed / price / remaining matrices — ``(L, K)``, one row per
      position, exactly the serial engine's per-step columns.

    The step loop is kind-agnostic: each transaction is pre-compiled to
    *payer / payee / inventory-increment / inventory-decrement* row
    indices (dummy rows absorb the roles a kind doesn't have — the payer
    dummy holds ``+inf`` so "no payment required" never fails the balance
    check, the sink row absorbs dead writes and is excluded from the
    consistency scan).  Two interchangeable backends execute the steps
    (``kernel_backend`` reports which): the primary path is a lazily
    compiled C step loop (``_batch_replay.c``, built with
    ``-ffp-contract=off`` so every FLOP stays a plain IEEE-754 double
    op) that runs each candidate's steps in the serial engine's exact
    operation order; when no compiler is available — or
    ``REPRO_BATCH_CKERNEL=0`` is set — a vectorised numpy fallback
    advances all K candidates through position ``t`` with ~20 array
    operations regardless of K.

    Bit-identity with the serial engine is a hard contract: the kernel
    performs the same IEEE-754 additions/subtractions in the same order
    (including the buyer-write-before-seller-read sequencing that makes
    self-transfers exact), indexes the same Eq. 10 price table, and a
    burn past the global supply raises the same ``TokenError`` a serial
    replay's price read would.  ``tests/rollup/test_batch_replay.py``
    enforces equivalence property-wise, reverting candidates included.

    The engine is stateless between calls and keeps **no cache**: the
    environment's :class:`PermutationCache` is the single authority for
    memoised evaluations (see ``ReorderEnv.evaluate_orders``).
    """

    #: Inventory level granted to the owner-check dummy row so strict
    #: ownership checks always pass for kinds that have none (mints).
    _OWNER_OK = 1 << 30

    def __init__(
        self,
        pre_state: L2State,
        transactions: Sequence[NFTTransaction],
        mode: Optional[ExecutionMode] = None,
        stats: Optional[ReplayEngineStats] = None,
        wealth_users: Sequence[str] = (),
    ) -> None:
        self.pre_state = pre_state
        self.transactions = tuple(transactions)
        self.stats = stats if stats is not None else ReplayEngineStats()
        self.wealth_users = tuple(wealth_users)
        self._mode = mode if mode is not None else pre_state.mode
        self._strict = self._mode is ExecutionMode.STRICT
        self._charge = pre_state.charge_fees
        self._max_supply = pre_state.nft_config.max_supply
        self._pricing = pre_state.pricing
        table = self._pricing.table()
        self._table = (
            np.asarray(table, dtype=np.float64) if table is not None else None
        )
        self._initial_price = pre_state.nft_config.initial_price_eth

        # ---- user-row layout ------------------------------------------- #
        # Real users first (balances, inventory, tx participants, watched
        # wealth users), then the three dummy rows the kind-agnostic step
        # loop scatters through.
        rows: Dict[str, int] = {}
        for user in pre_state.balances:
            rows.setdefault(user, len(rows))
        for user in pre_state.inventory:
            rows.setdefault(user, len(rows))
        for tx in self.transactions:
            rows.setdefault(tx.sender, len(rows))
            if tx.recipient is not None:
                rows.setdefault(tx.recipient, len(rows))
        rows.setdefault(L2State.FEE_POOL, len(rows))
        for user in self.wealth_users:
            rows.setdefault(user, len(rows))
        self._rows = rows
        self._n_real = len(rows)
        self._pay_dummy = self._n_real        # +inf balance: payment always ok
        self._own_dummy = self._n_real + 1    # huge inventory: ownership always ok
        self._sink = self._n_real + 2         # absorbs dead writes, never read
        self._n_rows = self._n_real + 3
        self._pool_row = rows[L2State.FEE_POOL]
        self._wealth_rows = np.asarray(
            [rows[user] for user in self.wealth_users], dtype=np.intp
        )

        # ---- pre-state columns ----------------------------------------- #
        self._base_balances = np.zeros(self._n_rows, dtype=np.float64)
        for user, value in pre_state.balances.items():
            self._base_balances[rows[user]] = value
        self._base_balances[self._pay_dummy] = np.inf
        self._base_inventory = np.zeros(self._n_rows, dtype=np.int64)
        for user, held in pre_state.inventory.items():
            self._base_inventory[rows[user]] = held
        self._base_inventory[self._own_dummy] = self._OWNER_OK
        self._initial_total = int(sum(pre_state.inventory.values()))

        # ---- per-transaction role compilation -------------------------- #
        n = len(self.transactions)
        self._pay_row = np.empty(n, dtype=np.intp)   # debited by `price`
        self._recv_row = np.empty(n, dtype=np.intp)  # credited by `price`
        self._inc_row = np.empty(n, dtype=np.intp)   # inventory + 1
        self._dec_row = np.empty(n, dtype=np.intp)   # inventory - 1
        self._own_row = np.empty(n, dtype=np.intp)   # strict ownership check
        self._fee_row = np.empty(n, dtype=np.intp)   # debited by `total_fee`
        self._is_mint = np.zeros(n, dtype=bool)
        self._is_burn = np.zeros(n, dtype=bool)
        self._dsupply = np.zeros(n, dtype=np.int64)
        self._fees = np.empty(n, dtype=np.float64)
        for i, tx in enumerate(self.transactions):
            sender = rows[tx.sender]
            self._fee_row[i] = sender
            self._fees[i] = tx.total_fee
            if tx.kind is TxKind.MINT:
                self._is_mint[i] = True
                self._pay_row[i] = sender
                self._recv_row[i] = self._sink
                self._inc_row[i] = sender
                # Decrement the owner dummy rather than the sink: the
                # strict ownership check then always reads the dec row
                # (one shared gather), and the dummy's huge stock keeps
                # mints owner-valid for any batch horizon.
                self._dec_row[i] = self._own_dummy
                self._own_row[i] = self._own_dummy
                self._dsupply[i] = 1
            elif tx.kind is TxKind.TRANSFER:
                recipient = rows[tx.recipient]
                self._pay_row[i] = recipient
                self._recv_row[i] = sender
                self._inc_row[i] = recipient
                self._dec_row[i] = sender
                self._own_row[i] = sender
            else:  # BURN
                self._is_burn[i] = True
                self._pay_row[i] = self._pay_dummy
                self._recv_row[i] = self._sink
                self._inc_row[i] = self._sink
                self._dec_row[i] = sender
                self._own_row[i] = sender
                self._dsupply[i] = -1
        self._collection_mints = int(self._is_mint.sum())
        self._collection_burns = int(self._is_burn.sum())
        # Stacked role pairs: one setup gather yields both halves.
        self._payrecv_row = np.stack([self._pay_row, self._recv_row])
        self._decinc_row = np.stack([self._dec_row, self._inc_row])
        #: A transfer whose buyer is its seller must sequence the debit
        #: before the credit (and the inventory out before in) within one
        #: step; the fused gather/scatter pairs below would let the last
        #: write win instead.  Compile-time flag selects the exact path.
        self._has_self_transfer = any(
            tx.kind is TxKind.TRANSFER and tx.recipient == tx.sender
            for tx in self.transactions
        )
        # Compiled scalar step loop (optional; bit-identical).  The C ABI
        # assumes 64-bit index arrays, so skip it on narrow platforms.
        self._ckernel = (
            load_kernel() if np.dtype(np.intp).itemsize == 8 else None
        )

    @property
    def kernel_backend(self) -> str:
        """``"c"`` when the compiled step loop is active, else ``"numpy"``."""
        return "c" if self._ckernel is not None else "numpy"

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def evaluate_many(self, orders: Sequence[Sequence[int]]) -> List[EvalSummary]:
        """Score K candidate orderings in one columnar replay.

        Returns one :class:`EvalSummary` per input order, positionally,
        each bit-identical to ``IncrementalOVM.evaluate`` on the same
        order.  Orders of different lengths are grouped and replayed per
        length.  A candidate whose replay would raise (a burn past the
        global supply) raises the identical ``TokenError`` here — the
        whole call fails, exactly as a serial scoring loop would fail at
        that candidate.
        """
        keys = [tuple(order) for order in orders]
        if not keys:
            return []
        self.stats.batch_calls += 1
        self.stats.batch_candidates += len(keys)
        with span(
            "replay.batch_kernel", k=len(keys), backend=self.kernel_backend
        ):
            by_length: Dict[int, List[int]] = {}
            for index, key in enumerate(keys):
                by_length.setdefault(len(key), []).append(index)
            results: List[Optional[EvalSummary]] = [None] * len(keys)
            for length, indices in by_length.items():
                for slot, summary in zip(
                    indices, self._run([keys[i] for i in indices], length)
                ):
                    results[slot] = summary
            return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _prices(self, remaining: np.ndarray) -> np.ndarray:
        """Eq. 10 prices for a vector of remaining supplies.

        Table indexing when the supply is table-sized, else the closed
        form with the serial engine's exact operation order
        (``max_supply / max(S, 1) * P0``).
        """
        if self._table is not None:
            return self._table[remaining]
        return self._max_supply / np.maximum(remaining, 1) * self._initial_price

    def _run(self, keys: List[Tuple[int, ...]], length: int) -> List[EvalSummary]:
        k = len(keys)
        self.stats.batch_steps += length * k
        flat = np.fromiter(
            chain.from_iterable(keys), dtype=np.intp, count=k * length
        )
        if flat.size and (
            flat.min() < 0 or flat.max() >= len(self.transactions)
        ):
            raise IndexError("order index outside the bound collection")
        if self._ckernel is not None:
            state = self._steps_compiled(flat, k, length)
        else:
            state = self._steps_numpy(flat, k, length)
        return self._summarise(keys, k, state)

    def _steps_compiled(
        self, flat: np.ndarray, k: int, length: int
    ) -> Tuple[np.ndarray, ...]:
        """Step loop via the compiled scalar kernel (see :mod:`ckernel`).

        The C loop walks each candidate's steps as sequential scalar
        IEEE-754 operations in the serial engine's exact order, so it is
        bit-identical by construction — no fused-scatter, deferred
        inventory or guard-precheck reasoning required.
        """
        max_supply = self._max_supply
        bal = np.tile(self._base_balances, k)
        inv = np.tile(self._base_inventory, k)
        rem = np.full(k, max_supply - self._initial_total, dtype=np.int64)
        exec_mat = np.empty((length, k), dtype=np.uint8)
        price_mat = np.empty((length, k), dtype=np.float64)
        rem_mat = np.empty((length, k), dtype=np.int64)
        table = self._table
        bad = self._ckernel.parole_batch_replay(
            length,
            k,
            self._n_rows,
            flat.ctypes.data,
            self._pay_row.ctypes.data,
            self._recv_row.ctypes.data,
            self._dec_row.ctypes.data,
            self._inc_row.ctypes.data,
            self._fee_row.ctypes.data,
            self._dsupply.ctypes.data,
            self._fees.ctypes.data,
            self._is_mint.ctypes.data,
            self._is_burn.ctypes.data,
            table.ctypes.data if table is not None else None,
            float(max_supply),
            self._initial_price,
            max_supply,
            int(self._strict),
            int(self._charge),
            self._pool_row,
            bal.ctypes.data,
            inv.ctypes.data,
            rem.ctypes.data,
            exec_mat.ctypes.data,
            price_mat.ctypes.data,
            rem_mat.ctypes.data,
        )
        if bad >= 0:
            # Identical failure to the serial engine: the Eq. 10 read one
            # past max supply raises TokenError (`rem[bad]` still holds
            # the poisoned candidate's pre-step remaining supply).
            dead = max_supply - int(rem[bad])
            self._pricing.price(max_supply - dead + 1)
        return exec_mat.view(bool), price_mat, rem_mat, bal, inv, rem

    def _steps_numpy(
        self, flat: np.ndarray, k: int, length: int
    ) -> Tuple[np.ndarray, ...]:
        """Pure-numpy step loop: vectorised across candidates per step."""
        orders = flat.reshape(k, length).T  # (L, K)
        strict = self._strict
        charge = self._charge
        max_supply = self._max_supply
        initial_total = self._initial_total
        n_rows = self._n_rows
        # State lives in flat column-major vectors (cell = col * n_rows +
        # row): each candidate owns one contiguous copy of the base state,
        # so the whole-batch role gathers below need only a per-candidate
        # offset add (no multiply), and every step is 1-D gather/scatter —
        # measurably cheaper than 2-D (rows, cols) fancy indexing at
        # small K.
        colbase = np.arange(k) * n_rows
        pr2 = self._payrecv_row[:, orders] + colbase  # (2, L, K)
        di2 = self._decinc_row[:, orders] + colbase
        pay_f, recv_f = pr2[0], pr2[1]
        dec_f, inc_f = di2[0], di2[1]
        ds = self._dsupply[orders]
        ds_live = (ds != 0).any(axis=1).tolist()
        bal = np.tile(self._base_balances, k)
        inv = np.tile(self._base_inventory, k)
        rem = np.full(k, max_supply - initial_total, dtype=np.int64)
        exec_rows: List[np.ndarray] = []
        price_rows: List[np.ndarray] = []
        rem_rows: List[np.ndarray] = []

        # Non-strict replay never *reads* inventory mid-loop (no ownership
        # checks; consistency and wealth only need the final counts), so
        # the per-step inventory updates are deferred to two bincounts
        # over the executed matrix after the loop.
        defer_inv = not strict
        # The payer/payee (and inventory out/in) cell pairs of one step
        # never collide unless the collection holds a self-transfer, so
        # each pair can share one fused gather + scatter; a self-transfer
        # must sequence the debit before the credit instead.
        fused = not self._has_self_transfer
        if fused:
            payrecv_rows = pr2.transpose(1, 0, 2).reshape(length, 2 * k)
            if not defer_inv:
                decinc_rows = di2.transpose(1, 0, 2).reshape(length, 2 * k)
        elif strict:
            own_rows = self._own_row[orders] + colbase
        if charge:
            fee_rows = self._fee_row[orders] + colbase
            fee_amt_rows = self._fees[orders]
            pool = bal.reshape(k, n_rows)[:, self._pool_row]
        # Eq. 1 headroom: exhausting the supply needs more than
        # `max_supply - initial_total` *executed mints* before some step,
        # so the check is provably dead — and skipped wholesale — unless a
        # candidate carries that many mint entries.
        headroom = max_supply - initial_total
        can_exhaust = length > headroom and self._collection_mints > headroom
        if can_exhaust:
            mint = self._is_mint[orders]
            if int(mint.sum(axis=0).max(initial=0)) <= headroom:
                can_exhaust = False
            else:
                mint_rows = list(mint)
                mint_live = mint.any(axis=1).tolist()
        # Burn poisoning (Eq. 10 undefined past max supply) needs
        # `initial_total` executed burns before some step; same wholesale
        # skip when no candidate carries that many burn entries.
        burn_possible = length > initial_total and self._collection_burns > 0
        if burn_possible:
            burn = self._is_burn[orders]
            if int(burn.sum(axis=0).max(initial=0)) < initial_total:
                burn_possible = False
            else:
                burn_rows = list(burn)
        table = self._table
        init_price = self._initial_price
        own_ok = None

        exec_append = exec_rows.append
        price_append = price_rows.append
        rem_append = rem_rows.append
        general_steps = length
        if (
            fused
            and defer_inv
            and not charge
            and not can_exhaust
            and not burn_possible
            and table is not None
        ):
            # Branch-free specialisation of the loop below for the common
            # configuration (non-strict, fee-less, guards provably dead):
            # seven numpy ops per step regardless of K.
            for prt, dst, live in zip(payrecv_rows, ds, ds_live):
                price = table[rem]
                b2k = bal[prt]
                pb, rb = b2k[:k], b2k[k:]
                executed = pb >= price
                delta = price * executed
                pb -= delta
                rb += delta
                bal[prt] = b2k
                if live:
                    rem = rem - dst * executed
                exec_append(executed)
                price_append(price)
                rem_append(rem)
            general_steps = 0  # the general loop below has nothing to do

        for t in range(general_steps):
            # Eq. 10 price before the step (`rem` is the previous step's
            # remaining supply).
            if table is not None:
                price = table[rem]
            else:
                price = max_supply / np.maximum(rem, 1) * init_price
            if fused:
                prt = payrecv_rows[t]
                b2k = bal[prt]
                pb, rb = b2k[:k], b2k[k:]
                executed = pb >= price
                if strict:
                    # The dec row doubles as the ownership row (mints
                    # point theirs at the owner dummy), so the strict
                    # check rides the inventory gather.
                    dit = decinc_rows[t]
                    i2k = inv[dit]
                    di, ii = i2k[:k], i2k[k:]
                    own_ok = di >= 1
                    executed &= own_ok
            else:
                prt = pay_f[t]
                pb = bal[prt]
                executed = pb >= price
                if strict:
                    own_ok = inv[own_rows[t]] >= 1
                    executed &= own_ok
            if can_exhaust and mint_live[t]:
                # Eq. 1: a mint additionally needs supply headroom.
                executed &= ~mint_rows[t] | (rem >= 1)
            if burn_possible and t >= initial_total:
                # `rem >= max_supply` ⇔ no live token left to burn.
                poisoned = burn_rows[t] & (rem >= max_supply)
                if strict:
                    poisoned &= own_ok
                if poisoned.any():
                    # Identical failure to the serial engine: the Eq. 10
                    # read one past max supply raises TokenError.
                    dead = max_supply - int(rem[int(np.argmax(poisoned))])
                    self._pricing.price(max_supply - dead + 1)
            # Apply, sequenced exactly like the serial transition: debit
            # the payer, then credit the payee (a self-transfer must read
            # the debited balance), then inventory out, then inventory in.
            delta = price * executed
            if fused:
                pb -= delta
                rb += delta
                bal[prt] = b2k
                if not defer_inv:
                    di -= executed
                    ii += executed
                    inv[dit] = i2k
            else:
                bal[prt] = pb - delta
                rrt = recv_f[t]
                bal[rrt] = bal[rrt] + delta
                if not defer_inv:
                    drt, irt = dec_f[t], inc_f[t]
                    inv[drt] = inv[drt] - executed
                    inv[irt] = inv[irt] + executed
            if charge:
                fdelta = fee_amt_rows[t] * executed
                frt = fee_rows[t]
                bal[frt] = bal[frt] - fdelta
                pool += fdelta
            if ds_live[t]:
                rem = rem - ds[t] * executed
            exec_rows.append(executed)
            price_rows.append(price)
            rem_rows.append(rem)

        exec_mat = (
            np.asarray(exec_rows) if length else np.empty((0, k), dtype=bool)
        )
        price_mat = (
            np.asarray(price_rows)
            if length
            else np.empty((0, k), dtype=np.float64)
        )
        rem_mat = (
            np.asarray(rem_rows) if length else np.empty((0, k), dtype=np.int64)
        )
        if defer_inv and length:
            hits = exec_mat.ravel()
            inv += np.bincount(inc_f.ravel()[hits], minlength=inv.size)
            inv -= np.bincount(dec_f.ravel()[hits], minlength=inv.size)
        return exec_mat, price_mat, rem_mat, bal, inv, rem

    def _summarise(
        self, keys: List[Tuple[int, ...]], k: int, state: Tuple[np.ndarray, ...]
    ) -> List[EvalSummary]:
        """Shared :class:`EvalSummary` assembly from the step outputs."""
        exec_mat, price_mat, rem_mat, bal, inv, rem = state
        final_price = self._prices(rem)
        bal_mat = bal.reshape(k, self._n_rows)
        inv_mat = inv.reshape(k, self._n_rows)
        consistent = (~(inv_mat[:, : self._n_real] < 0).any(axis=1)).tolist()
        executed_counts = exec_mat.sum(axis=0).tolist()
        wealth_cols = (
            bal_mat[:, self._wealth_rows]
            + inv_mat[:, self._wealth_rows] * final_price[:, None]
        ).tolist()
        exec_cols = exec_mat.T.tolist()
        price_cols = price_mat.T.tolist()
        rem_cols = rem_mat.T.tolist()
        final_prices = final_price.tolist()
        users = self.wealth_users
        summaries = []
        for col, key in enumerate(keys):
            summaries.append(
                EvalSummary(
                    order=key,
                    executed=exec_cols[col],
                    prices_before=price_cols[col],
                    remaining_after=rem_cols[col],
                    final_price=final_prices[col],
                    consistent=consistent[col],
                    executed_count=executed_counts[col],
                    wealth=dict(zip(users, wealth_cols[col])),
                )
            )
        return summaries


class PermutationCache:
    """LRU cache of order-tuple evaluations (hit/miss/eviction counted)."""

    def __init__(
        self,
        maxsize: int = 4096,
        stats: Optional[ReplayEngineStats] = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self.stats = stats if stats is not None else ReplayEngineStats()
        self._entries: "OrderedDict[Tuple[int, ...], Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Sequence[int]) -> bool:
        return tuple(key) in self._entries

    def get(self, key: Sequence[int]) -> Optional[Any]:
        """Cached value for ``key`` (marks it most-recently used)."""
        key = tuple(key)
        value = self._entries.get(key)
        if value is None:
            self.stats.cache_misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.cache_hits += 1
        return value

    def put(self, key: Sequence[int], value: Any) -> None:
        """Insert without counting a hit or miss (seeding included)."""
        key = tuple(key)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.cache_evictions += 1

    def clear(self) -> None:
        self._entries.clear()
