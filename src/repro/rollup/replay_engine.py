"""Incremental replay acceleration for candidate-order scoring.

Every GENTRANSEQ step (Eq. 8) scores a candidate ordering by replaying it
through the OVM.  A from-scratch replay costs O(N) state transitions even
though a pairwise swap ``(i, j)`` only perturbs the suffix starting at
``min(i, j)`` — the prefix executes identically.  This module exploits
that:

* :class:`IncrementalOVM` keeps one working state (plain balance and
  inventory dicts plus O(1) supply/consistency counters) and a per-step
  **copy-on-write undo log**: before a step mutates a balance or
  inventory entry, the prior value (or its absence) is recorded.  A new
  order that shares a k-step prefix with the last one is evaluated by
  undoing the suffix back to position k and executing only the new
  suffix.  Undo restores the exact stored floats, so incremental replays
  are bit-identical to :meth:`~.ovm.OVM.replay` — a property test
  (``tests/rollup/test_replay_engine.py``) enforces this for both
  execution modes, with and without fee charging.
* The per-step record is **columnar** (parallel lists of executed flags,
  validities, prices and remaining supplies) rather than per-step trace
  objects: the solver hot path (:meth:`IncrementalOVM.evaluate`) never
  allocates a ``TraceStep``/``StepResult``/``L2State``.  The
  object-shaped :meth:`IncrementalOVM.replay_order` materialises a full
  :class:`~.ovm.ReplayTrace` from the same columns for callers that want
  one.
* :class:`PermutationCache` memoises full evaluations by order tuple —
  DQN ε-greedy rollouts, hill climbing and annealing revisit permutations
  constantly.
* :class:`ReplayEngineStats` counts scratch/incremental replays, reused
  vs executed steps and cache hits so callers (``solvers/profiling.py``)
  can report how much replay work was avoided.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..telemetry import get_metrics
from ..tokens import TxValidity
from .ovm import ReplayTrace, TraceStep
from .state import CountingInventory, ExecutionMode, L2State, StepResult
from .transaction import NFTTransaction, TxKind

#: Sentinel marking "key was absent before this step" in the undo log, so
#: undo deletes the entry instead of leaving a spurious zero behind
#: (state roots hash every entry, absent and zero-valued differ).
_MISSING = object()

#: One undo entry: (is_inventory, key, prior value or ``_MISSING``).
_UndoEntry = Tuple[bool, str, Any]


@dataclass
class ReplayEngineStats:
    """Counters describing how much replay work the engine avoided."""

    scratch_replays: int = 0
    incremental_replays: int = 0
    steps_executed: int = 0
    steps_reused: int = 0
    steps_undone: int = 0
    resume_depth_total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0

    @property
    def replays(self) -> int:
        """Total replays served by the engine (cache hits excluded)."""
        return self.scratch_replays + self.incremental_replays

    @property
    def mean_resume_depth(self) -> float:
        """Average reused-prefix length of incremental replays."""
        if not self.incremental_replays:
            return 0.0
        return self.resume_depth_total / self.incremental_replays

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of evaluations answered from the permutation cache."""
        lookups = self.cache_hits + self.cache_misses
        if not lookups:
            return 0.0
        return self.cache_hits / lookups

    @property
    def step_reuse_fraction(self) -> float:
        """Fraction of replay steps served from cached prefixes."""
        total = self.steps_executed + self.steps_reused
        if not total:
            return 0.0
        return self.steps_reused / total

    def publish(self, prefix: str = "replay_engine") -> Dict[str, float]:
        """Mirror the counters into the active metrics registry.

        The engine's hot loop keeps these counters as plain ints (a
        registry instrument per step would be measurable); this method
        is the registry view of them — callers publish at natural
        boundaries (``ReorderEnv.replay_stats``, solver profiling, run
        manifests).  Values are cumulative, so they land as gauges.
        Returns the published dict for convenience.
        """
        values = self.as_dict()
        metrics = get_metrics()
        if metrics.enabled:
            for key, value in values.items():
                metrics.gauge(f"{prefix}.{key}").set(value)
        return values

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric view for solver metadata / JSON artifacts."""
        return {
            "scratch_replays": float(self.scratch_replays),
            "incremental_replays": float(self.incremental_replays),
            "steps_executed": float(self.steps_executed),
            "steps_reused": float(self.steps_reused),
            "steps_undone": float(self.steps_undone),
            "mean_resume_depth": self.mean_resume_depth,
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "cache_evictions": float(self.cache_evictions),
            "cache_hit_rate": self.cache_hit_rate,
            "step_reuse_fraction": self.step_reuse_fraction,
        }


class EvalSummary:
    """Allocation-light result of scoring one candidate order.

    Everything the environment's Eq. 8 scoring and the Figure 4 encoding
    need, without materialising per-step trace objects: parallel
    ``executed`` / ``prices_before`` / ``remaining_after`` columns (one
    slot per position), the final price, the batch-end consistency flag
    and the final wealth of the engine's ``wealth_users``.  Columns are
    copies — they stay valid after the engine evaluates further orders.
    """

    __slots__ = (
        "order",
        "executed",
        "prices_before",
        "remaining_after",
        "final_price",
        "consistent",
        "executed_count",
        "wealth",
    )

    def __init__(
        self,
        order: Tuple[int, ...],
        executed: List[bool],
        prices_before: List[float],
        remaining_after: List[int],
        final_price: float,
        consistent: bool,
        executed_count: int,
        wealth: Dict[str, float],
    ) -> None:
        self.order = order
        self.executed = executed
        self.prices_before = prices_before
        self.remaining_after = remaining_after
        self.final_price = final_price
        self.consistent = consistent
        self.executed_count = executed_count
        self.wealth = wealth


class IncrementalOVM:
    """OVM replays over permutations of one fixed transaction collection.

    Bound to a pre-state and the N collected transactions;
    :meth:`evaluate` scores any index sequence into that collection,
    reusing the longest prefix shared with the previously evaluated
    order.  Behaviour (per-step results, watched wealth, final state) is
    identical to ``OVM().replay`` on the materialised sequence — see
    :meth:`replay_order` for the trace-shaped view.
    """

    def __init__(
        self,
        pre_state: L2State,
        transactions: Sequence[NFTTransaction],
        watch: Sequence[str] = (),
        mode: Optional[ExecutionMode] = None,
        stats: Optional[ReplayEngineStats] = None,
        wealth_users: Sequence[str] = (),
    ) -> None:
        self.pre_state = pre_state
        self.transactions = tuple(transactions)
        self.watch = tuple(watch)
        self.mode = mode
        self.stats = stats if stats is not None else ReplayEngineStats()
        #: Users whose *final* wealth :meth:`evaluate` reports (the
        #: environment passes its IFUs; per-step sampling uses ``watch``).
        self.wealth_users = tuple(wealth_users)
        self._mode = mode if mode is not None else pre_state.mode
        self._strict = self._mode is ExecutionMode.STRICT
        self._charge = pre_state.charge_fees
        self._max_supply = pre_state.nft_config.max_supply
        self._pricing = pre_state.pricing
        self._price_table = self._pricing.table()
        #: Per-transaction constants, pre-resolved so the hot loop does a
        #: single tuple unpack instead of four attribute reads.
        self._meta = tuple(
            (
                0 if tx.kind is TxKind.MINT else (1 if tx.kind is TxKind.TRANSFER else 2),
                tx.sender,
                tx.recipient,
                tx.total_fee,
            )
            for tx in self.transactions
        )
        self._balances: Optional[Dict[str, float]] = None
        self._inventory: Dict[str, int] = {}
        self._total = 0
        self._neg = 0
        #: Indices actually applied, kept exactly in sync with the
        #: columns below (even when a step raises mid-replay).
        self._order: List[int] = []
        self._c_exec: List[bool] = []
        self._c_validity: List[TxValidity] = []
        self._c_price: List[float] = []
        self._c_remaining: List[int] = []
        self._c_wealth: List[Tuple[Tuple[str, float], ...]] = []
        self._undos: List[Tuple[_UndoEntry, ...]] = []

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def evaluate(self, order: Sequence[int]) -> EvalSummary:
        """Score the permutation ``order`` on the allocation-light path.

        Resumes from the longest prefix shared with the previous
        evaluation and returns an :class:`EvalSummary` — no trace
        objects, no state snapshot.  This is the solver/DQN hot path.
        """
        order = tuple(order)
        self._advance(order)
        total = self._total
        table = self._price_table
        remaining = self._max_supply - total
        final_price = (
            table[remaining] if table is not None else self._pricing.price(remaining)
        )
        bget = self._balances.get
        iget = self._inventory.get
        executed = self._c_exec
        return EvalSummary(
            order=order,
            executed=executed[:],
            prices_before=self._c_price[:],
            remaining_after=self._c_remaining[:],
            final_price=final_price,
            consistent=self._neg == 0,
            executed_count=sum(executed),
            wealth={
                user: bget(user, 0.0) + iget(user, 0) * final_price
                for user in self.wealth_users
            },
        )

    def replay_order(self, order: Sequence[int]) -> ReplayTrace:
        """Replay ``order`` and materialise a full :class:`ReplayTrace`.

        Orders may be any length up to N (prefix evaluation works); each
        index must be within the collection.  The returned trace owns an
        independent snapshot of the final state, so it stays valid after
        further evaluations.  Per-step results are bit-identical to
        ``OVM().replay`` on the materialised sequence.
        """
        order = tuple(order)
        self._advance(order)
        table = self._price_table
        price = self._pricing.price
        transactions = self.transactions
        watch = self.watch
        wealth_col = self._c_wealth
        steps: List[TraceStep] = []
        rows = zip(
            self._order, self._c_exec, self._c_validity, self._c_price, self._c_remaining
        )
        for position, (tx_index, executed, validity, before, remaining) in enumerate(rows):
            # Skipped steps leave the supply unchanged, so the price at
            # ``remaining`` equals ``before`` and this holds for both.
            after = table[remaining] if table is not None else price(remaining)
            steps.append(
                TraceStep(
                    index=position,
                    tx=transactions[tx_index],
                    result=StepResult(
                        executed=executed,
                        validity=validity,
                        price_before=before,
                        price_after=after,
                        remaining_supply=remaining,
                    ),
                    watched_wealth=wealth_col[position] if watch else (),
                )
            )
        return ReplayTrace(
            steps=steps, final_state=self._snapshot(), watched_users=watch
        )

    def replay(
        self,
        transactions: Sequence[NFTTransaction],
        watch: Sequence[str] = (),
    ) -> ReplayTrace:
        """`OVM.replay`-shaped convenience over the bound collection.

        ``transactions`` must be drawn from the engine's collection; they
        are resolved to indices by identity first, equality second.
        """
        if tuple(watch) != self.watch:
            raise ValueError(
                "watch set is fixed at engine construction; "
                f"expected {self.watch!r}"
            )
        return self.replay_order(self._resolve(transactions))

    def reset(self) -> None:
        """Drop the cached working state; next replay starts from scratch."""
        self._balances = None
        self._inventory = {}
        self._total = 0
        self._neg = 0
        self._order = []
        self._c_exec = []
        self._c_validity = []
        self._c_price = []
        self._c_remaining = []
        self._c_wealth = []
        self._undos = []

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _resolve(
        self, transactions: Sequence[NFTTransaction]
    ) -> Tuple[int, ...]:
        by_id = {id(tx): i for i, tx in enumerate(self.transactions)}
        order = []
        for tx in transactions:
            index = by_id.get(id(tx))
            if index is None:
                try:
                    index = self.transactions.index(tx)
                except ValueError:
                    raise ValueError(
                        f"transaction {tx!r} is not in the bound collection"
                    ) from None
            order.append(index)
        return tuple(order)

    def _advance(self, order: Tuple[int, ...]) -> None:
        """Bring the working state to ``order`` (rewind + run suffix)."""
        if self._balances is None:
            pre = self.pre_state
            self._balances = dict(pre.balances)
            self._inventory = dict(pre.inventory)
            self._total = sum(self._inventory.values())
            self._neg = sum(1 for held in self._inventory.values() if held < 0)
            self.stats.scratch_replays += 1
            prefix = 0
        else:
            prefix = self._common_prefix(order)
            self.stats.incremental_replays += 1
            self.stats.resume_depth_total += prefix
        self._rewind_to(prefix)
        self.stats.steps_reused += prefix
        if prefix < len(order):
            self._run_suffix(order, prefix)

    def _common_prefix(self, order: Tuple[int, ...]) -> int:
        current = self._order
        limit = min(len(current), len(order))
        prefix = 0
        while prefix < limit and current[prefix] == order[prefix]:
            prefix += 1
        return prefix

    def _rewind_to(self, prefix: int) -> None:
        applied = self._order
        if len(applied) <= prefix:
            return
        balances = self._balances
        inventory = self._inventory
        total = self._total
        neg = self._neg
        undos = self._undos
        c_exec, c_validity = self._c_exec, self._c_validity
        c_price, c_remaining = self._c_price, self._c_remaining
        c_wealth = self._c_wealth
        watch = self.watch
        undone = 0
        while len(applied) > prefix:
            applied.pop()
            c_exec.pop()
            c_validity.pop()
            c_price.pop()
            c_remaining.pop()
            if watch:
                c_wealth.pop()
            for is_inventory, key, prior in reversed(undos.pop()):
                if is_inventory:
                    current = inventory[key]
                    total -= current
                    if current < 0:
                        neg -= 1
                    if prior is _MISSING:
                        del inventory[key]
                    else:
                        inventory[key] = prior
                        total += prior
                        if prior < 0:
                            neg += 1
                elif prior is _MISSING:
                    del balances[key]
                else:
                    balances[key] = prior
            undone += 1
        self._total = total
        self._neg = neg
        self.stats.steps_undone += undone

    def _run_suffix(self, order: Tuple[int, ...], start: int) -> None:
        """Execute ``order[start:]`` against the working state.

        The OVM transition (``L2State.check`` + ``L2State.apply``) is
        inlined over plain dicts: the per-step cost is what makes or
        breaks solver throughput, and attribute lookups, ``StepResult``
        allocation and the double validity check are all measurable at
        this call rate.  The differential property test keeps this loop
        honest against the readable reference implementation.

        If a step raises (a burn pushing global supply above max poisons
        Eq. 10, exactly as in a scratch replay), the failing step leaves
        no mutation behind and every column stays consistent, so the
        engine remains usable.
        """
        meta = self._meta
        balances = self._balances
        inventory = self._inventory
        total = self._total
        neg = self._neg
        max_supply = self._max_supply
        table = self._price_table
        price_of = self._pricing.price
        strict = self._strict
        charge = self._charge
        watch = self.watch
        fee_pool = L2State.FEE_POOL
        missing = _MISSING
        bget = balances.get
        iget = inventory.get
        order_append = self._order.append
        exec_append = self._c_exec.append
        validity_append = self._c_validity.append
        price_append = self._c_price.append
        remaining_append = self._c_remaining.append
        wealth_append = self._c_wealth.append
        undo_append = self._undos.append
        valid = TxValidity.VALID
        supply_exhausted = TxValidity.SUPPLY_EXHAUSTED
        insufficient = TxValidity.INSUFFICIENT_BALANCE
        not_owner = TxValidity.NOT_OWNER
        try:
            for position in range(start, len(order)):
                tx_index = order[position]
                kind, sender, recipient, fee = meta[tx_index]
                remaining = max_supply - total
                price = table[remaining] if table is not None else price_of(remaining)
                if kind == 0:  # MINT — Eq. 2
                    prior_bal = bget(sender, missing)
                    balance = 0.0 if prior_bal is missing else prior_bal
                    if remaining < 1:
                        validity = supply_exhausted
                    elif balance < price:
                        validity = insufficient
                    else:
                        validity = valid
                        balances[sender] = balance - price
                        prior_held = iget(sender, missing)
                        held = (0 if prior_held is missing else prior_held) + 1
                        inventory[sender] = held
                        total += 1
                        if prior_held is not missing and prior_held < 0:
                            neg -= 1
                        if held < 0:
                            neg += 1
                        undo = ((False, sender, prior_bal), (True, sender, prior_held))
                elif kind == 1:  # TRANSFER — Eq. 4
                    if strict and iget(sender, 0) < 1:
                        validity = not_owner
                    else:
                        prior_buyer = bget(recipient, missing)
                        buyer = 0.0 if prior_buyer is missing else prior_buyer
                        if buyer < price:
                            validity = insufficient
                        else:
                            validity = valid
                            balances[recipient] = buyer - price
                            prior_seller = bget(sender, missing)
                            balances[sender] = (
                                0.0 if prior_seller is missing else prior_seller
                            ) + price
                            prior_sold = iget(sender, missing)
                            sold = (0 if prior_sold is missing else prior_sold) - 1
                            inventory[sender] = sold
                            if prior_sold is not missing and prior_sold < 0:
                                neg -= 1
                            if sold < 0:
                                neg += 1
                            prior_bought = iget(recipient, missing)
                            bought = (0 if prior_bought is missing else prior_bought) + 1
                            inventory[recipient] = bought
                            if prior_bought is not missing and prior_bought < 0:
                                neg -= 1
                            if bought < 0:
                                neg += 1
                            undo = (
                                (False, recipient, prior_buyer),
                                (False, sender, prior_seller),
                                (True, sender, prior_sold),
                                (True, recipient, prior_bought),
                            )
                else:  # BURN — Eq. 6
                    if strict and iget(sender, 0) < 1:
                        validity = not_owner
                    else:
                        if total < 1:
                            # Burning past the global supply poisons the
                            # Eq. 10 price; raise the same TokenError a
                            # scratch replay's price read would, without
                            # committing the step.
                            price_of(max_supply - total + 1)
                        validity = valid
                        prior_burned = iget(sender, missing)
                        burned = (0 if prior_burned is missing else prior_burned) - 1
                        inventory[sender] = burned
                        total -= 1
                        if prior_burned is not missing and prior_burned < 0:
                            neg -= 1
                        if burned < 0:
                            neg += 1
                        undo = ((True, sender, prior_burned),)
                if validity is valid:
                    if charge:
                        prior_payer = bget(sender, missing)
                        balances[sender] = (
                            0.0 if prior_payer is missing else prior_payer
                        ) - fee
                        prior_pool = bget(fee_pool, missing)
                        balances[fee_pool] = (
                            0.0 if prior_pool is missing else prior_pool
                        ) + fee
                        undo += ((False, sender, prior_payer), (False, fee_pool, prior_pool))
                    remaining = max_supply - total
                    exec_append(True)
                    undo_append(undo)
                else:
                    exec_append(False)
                    undo_append(())
                validity_append(validity)
                price_append(price)
                remaining_append(remaining)
                order_append(tx_index)
                if watch:
                    current_price = (
                        table[remaining] if table is not None else price_of(remaining)
                    )
                    wealth_append(
                        tuple(
                            (user, bget(user, 0.0) + iget(user, 0) * current_price)
                            for user in watch
                        )
                    )
        finally:
            self._total = total
            self._neg = neg
            self.stats.steps_executed += len(self._order) - start

    def _snapshot(self) -> L2State:
        """Independent :class:`L2State` view of the working state."""
        state = L2State.__new__(L2State)
        state.nft_config = self.pre_state.nft_config
        state.pricing = self._pricing
        state.balances = dict(self._balances)
        state.inventory = CountingInventory(self._inventory)
        state._price_memo = (None, 0.0)
        state.mode = self._mode
        state.charge_fees = self._charge
        return state


class PermutationCache:
    """LRU cache of order-tuple evaluations (hit/miss/eviction counted)."""

    def __init__(
        self,
        maxsize: int = 4096,
        stats: Optional[ReplayEngineStats] = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self.stats = stats if stats is not None else ReplayEngineStats()
        self._entries: "OrderedDict[Tuple[int, ...], Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Sequence[int]) -> bool:
        return tuple(key) in self._entries

    def get(self, key: Sequence[int]) -> Optional[Any]:
        """Cached value for ``key`` (marks it most-recently used)."""
        key = tuple(key)
        value = self._entries.get(key)
        if value is None:
            self.stats.cache_misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.cache_hits += 1
        return value

    def put(self, key: Sequence[int], value: Any) -> None:
        """Insert without counting a hit or miss (seeding included)."""
        key = tuple(key)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.cache_evictions += 1

    def clear(self) -> None:
        self._entries.clear()
