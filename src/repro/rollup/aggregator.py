"""Rollup aggregators: honest and adversarial.

Honest aggregators execute their collected transactions in the fee-
priority order the mempool handed them (Section IV-B: "the aggregators
collect the transactions and are supposed to execute them in order of
their base and priority fees").  The adversarial aggregator hosts a
*strategy* plug-in (see :mod:`repro.strategies`): it builds a
:class:`~repro.strategies.base.MempoolView` of its collection, asks the
strategy for a :class:`~repro.strategies.base.StrategyAction`, and
verifies the action against its declared capabilities before executing.
An invalid action degrades the round to the honest order.

The pre-PR-10 interface — a bare permute-only *reorderer* callable —
keeps working through a deprecation shim that wraps the callable in
:class:`~repro.strategies.base.ReordererStrategy`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import ReproError
from ..strategies.base import (
    BaseStrategy,
    MempoolView,
    Reorderer,
    ReordererStrategy,
    StrategyAction,
    validate_action,
)
from ..telemetry import get_metrics, span
from .batch import Batch, build_batch
from .ovm import OVM, ReplayTrace
from .state import L2State
from .transaction import NFTTransaction

__all__ = [
    "AggregationResult",
    "Aggregator",
    "AdversarialAggregator",
    "Reorderer",
]


@dataclass
class AggregationResult:
    """What one aggregator produced in a round."""

    batch: Batch
    trace: ReplayTrace
    original_order: Tuple[NFTTransaction, ...]
    executed_order: Tuple[NFTTransaction, ...]

    @property
    def reordered(self) -> bool:
        """Whether the executed order differs from the collected order."""
        return self.original_order != self.executed_order


class Aggregator:
    """An honest rollup operator."""

    def __init__(self, address: str, ovm: Optional[OVM] = None) -> None:
        self.address = address
        self.ovm = ovm or OVM()
        #: Liveness flag the fault-injection layer toggles; a crashed
        #: aggregator is skipped by the node/sequencer until restarted.
        self.alive = True
        self.crash_count = 0

    def crash(self) -> None:
        """Mark the aggregator as down (crash fault)."""
        if self.alive:
            self.alive = False
            self.crash_count += 1
            get_metrics().counter(
                "aggregator.crashes", aggregator=self.address
            ).inc()

    def restart(self) -> None:
        """Bring a crashed aggregator back into rotation."""
        self.alive = True

    def process(
        self, pre_state: L2State, collected: Sequence[NFTTransaction]
    ) -> AggregationResult:
        """Execute the collected transactions and seal a batch."""
        with span(
            "aggregator.process", aggregator=self.address, n_txs=len(collected)
        ) as current:
            order = self.order_transactions(pre_state, collected)
            batch, trace = build_batch(self.address, pre_state, order, self.ovm)
            result = AggregationResult(
                batch=batch,
                trace=trace,
                original_order=tuple(collected),
                executed_order=tuple(order),
            )
            current.add(reordered=result.reordered)
        metrics = get_metrics()
        metrics.counter("aggregator.batches").inc()
        if result.reordered:
            metrics.counter("aggregator.reordered_batches").inc()
        return result

    def order_transactions(
        self, pre_state: L2State, collected: Sequence[NFTTransaction]
    ) -> Sequence[NFTTransaction]:
        """Honest policy: keep the mempool's fee-priority order."""
        return tuple(collected)


class AdversarialAggregator(Aggregator):
    """``A_P`` — an aggregator hosting an adversary strategy plug-in.

    Parameters
    ----------
    address:
        The aggregator's account.
    strategy:
        A :class:`~repro.strategies.base.BaseStrategy` (or anything
        structurally compatible).  The shipped plug-ins live in
        :mod:`repro.strategies`; the PAROLE reference is
        :meth:`repro.core.parole.ParoleAttack.as_strategy`.
    reorderer:
        *Deprecated.*  A bare permute-only callable; wrapped in
        :class:`~repro.strategies.base.ReordererStrategy` with a
        :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        address: str,
        reorderer: Optional[Reorderer] = None,
        ovm: Optional[OVM] = None,
        *,
        strategy: Optional[BaseStrategy] = None,
    ) -> None:
        super().__init__(address, ovm)
        if strategy is not None and reorderer is not None:
            raise ReproError(
                "pass either strategy= or the legacy reorderer, not both"
            )
        if strategy is None:
            if reorderer is None:
                raise ReproError(
                    "AdversarialAggregator requires a strategy "
                    "(or, deprecated, a reorderer callable)"
                )
            warnings.warn(
                "AdversarialAggregator(reorderer=...) is deprecated; pass "
                "strategy=repro.strategies.ReordererStrategy(reorderer) or "
                "a strategy plug-in instead",
                DeprecationWarning,
                stacklevel=2,
            )
            strategy = ReordererStrategy(reorderer)
        self.strategy = strategy
        #: Rounds whose executed order differed from the collected order.
        self.rounds_attacked = 0
        #: Rounds whose action was rejected by the safety check.
        self.actions_rejected = 0
        #: Rounds where the strategy proposed *any* change (pre-defense).
        self.rounds_proposed = 0
        #: Adversary-authored transactions proposed across all rounds.
        self.inserted_total = 0
        #: The validated action of the most recent round (None if the
        #: round was rejected) — the matrix runner's accounting hook.
        self.last_action: Optional[StrategyAction] = None
        self._round_index = 0

    # -- strategy/defense hooks (overridden by DefendedAggregator) ----- #

    def build_view(
        self, pre_state: L2State, collected: Tuple[NFTTransaction, ...]
    ) -> MempoolView:
        """The mempool view handed to the strategy this round."""
        return MempoolView(
            transactions=collected, round_index=self._round_index
        )

    def reveal_action(
        self, action: StrategyAction, view: MempoolView
    ) -> StrategyAction:
        """Map an action on a blinded view back to real transactions."""
        return action

    def apply_policy(
        self,
        pre_state: L2State,
        collected: Tuple[NFTTransaction, ...],
        action: StrategyAction,
    ) -> Tuple[NFTTransaction, ...]:
        """Sequencing-policy hook: defenses may re-order a valid action."""
        return action.sequence

    # ------------------------------------------------------------------ #

    def order_transactions(
        self, pre_state: L2State, collected: Sequence[NFTTransaction]
    ) -> Sequence[NFTTransaction]:
        """Route the collection through the hosted strategy."""
        collected = tuple(collected)
        with span(
            "aggregator.reorder", aggregator=self.address, n_txs=len(collected)
        ) as current:
            view = self.build_view(pre_state, collected)
            self._round_index += 1
            action = self.reveal_action(
                self.strategy.observe(pre_state, view), view
            )
            allowed = frozenset(
                account.address for account in self.strategy.accounts()
            )
            verdict = validate_action(collected, action, allowed)
            if not verdict.ok:
                # The strategy used a capability it did not declare (or
                # dropped victims).  Fall back to the honest order —
                # the generalization of the old permute-only rejection.
                get_metrics().counter("aggregator.reorderer_rejected").inc()
                current.add(rejected=True, reason=verdict.reason)
                self.actions_rejected += 1
                self.last_action = None
                return collected
            if action.inserted or action.sequence != collected:
                self.rounds_proposed += 1
            sequence = self.apply_policy(pre_state, collected, action)
            collected_hashes = {tx.tx_hash for tx in collected}
            victims = tuple(
                tx for tx in sequence if tx.tx_hash in collected_hashes
            )
            moved = sum(
                1 for before, after in zip(collected, victims)
                if before is not after and before != after
            )
            current.add(
                positions_moved=moved, inserted=len(action.inserted)
            )
            get_metrics().histogram(
                "aggregator.positions_moved", bounds=(0, 1, 2, 5, 10, 25, 50, 100)
            ).observe(moved)
            if sequence != collected:
                self.rounds_attacked += 1
            self.inserted_total += len(action.inserted)
            self.last_action = action
            return sequence
