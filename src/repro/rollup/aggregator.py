"""Rollup aggregators: honest and adversarial.

Honest aggregators execute their collected transactions in the fee-
priority order the mempool handed them (Section IV-B: "the aggregators
collect the transactions and are supposed to execute them in order of
their base and priority fees").  The adversarial aggregator routes its
collection through a *reorderer* — the PAROLE module — before executing;
the reorderer is injected as a callable so this package stays independent
of :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from ..telemetry import get_metrics, span
from .batch import Batch, build_batch
from .ovm import OVM, ReplayTrace
from .state import L2State
from .transaction import NFTTransaction

#: Signature of a reordering strategy: (pre-state, collected txs) -> new order.
Reorderer = Callable[[L2State, Sequence[NFTTransaction]], Sequence[NFTTransaction]]


@dataclass
class AggregationResult:
    """What one aggregator produced in a round."""

    batch: Batch
    trace: ReplayTrace
    original_order: Tuple[NFTTransaction, ...]
    executed_order: Tuple[NFTTransaction, ...]

    @property
    def reordered(self) -> bool:
        """Whether the executed order differs from the collected order."""
        return self.original_order != self.executed_order


class Aggregator:
    """An honest rollup operator."""

    def __init__(self, address: str, ovm: Optional[OVM] = None) -> None:
        self.address = address
        self.ovm = ovm or OVM()
        #: Liveness flag the fault-injection layer toggles; a crashed
        #: aggregator is skipped by the node/sequencer until restarted.
        self.alive = True
        self.crash_count = 0

    def crash(self) -> None:
        """Mark the aggregator as down (crash fault)."""
        if self.alive:
            self.alive = False
            self.crash_count += 1
            get_metrics().counter(
                "aggregator.crashes", aggregator=self.address
            ).inc()

    def restart(self) -> None:
        """Bring a crashed aggregator back into rotation."""
        self.alive = True

    def process(
        self, pre_state: L2State, collected: Sequence[NFTTransaction]
    ) -> AggregationResult:
        """Execute the collected transactions and seal a batch."""
        with span(
            "aggregator.process", aggregator=self.address, n_txs=len(collected)
        ) as current:
            order = self.order_transactions(pre_state, collected)
            batch, trace = build_batch(self.address, pre_state, order, self.ovm)
            result = AggregationResult(
                batch=batch,
                trace=trace,
                original_order=tuple(collected),
                executed_order=tuple(order),
            )
            current.add(reordered=result.reordered)
        metrics = get_metrics()
        metrics.counter("aggregator.batches").inc()
        if result.reordered:
            metrics.counter("aggregator.reordered_batches").inc()
        return result

    def order_transactions(
        self, pre_state: L2State, collected: Sequence[NFTTransaction]
    ) -> Sequence[NFTTransaction]:
        """Honest policy: keep the mempool's fee-priority order."""
        return tuple(collected)


class AdversarialAggregator(Aggregator):
    """``A_P`` — the aggregator committing the PAROLE attack.

    Parameters
    ----------
    address:
        The aggregator's account.
    reorderer:
        The PAROLE module entry point (see
        :meth:`repro.core.parole.ParoleAttack.as_reorderer`).
    """

    def __init__(
        self,
        address: str,
        reorderer: Reorderer,
        ovm: Optional[OVM] = None,
    ) -> None:
        super().__init__(address, ovm)
        self.reorderer = reorderer
        self.rounds_attacked = 0

    def order_transactions(
        self, pre_state: L2State, collected: Sequence[NFTTransaction]
    ) -> Sequence[NFTTransaction]:
        """Route the collection through the PAROLE module."""
        with span(
            "aggregator.reorder", aggregator=self.address, n_txs=len(collected)
        ) as current:
            reordered = tuple(self.reorderer(pre_state, collected))
            if sorted(tx.tx_hash for tx in reordered) != sorted(
                tx.tx_hash for tx in collected
            ):
                # The PAROLE module may only permute — never drop or inject.
                # Fall back to the honest order if the reorderer misbehaved.
                get_metrics().counter("aggregator.reorderer_rejected").inc()
                current.add(rejected=True)
                return tuple(collected)
            moved = sum(
                1 for before, after in zip(collected, reordered)
                if before is not after and before != after
            )
            current.add(positions_moved=moved)
            get_metrics().histogram(
                "aggregator.positions_moved", bounds=(0, 1, 2, 5, 10, 25, 50, 100)
            ).observe(moved)
            if reordered != tuple(collected):
                self.rounds_attacked += 1
            return reordered
