"""Rollup verifiers and the challenge decision (Section V-A).

A verifier watches batch commitments, re-executes each batch from its
pre-state, and challenges when the recomputed root differs from the
claimed root.  Honest re-execution uses STRICT mode — but note the batch
the adversarial aggregator publishes was *also* executed by the same
deterministic OVM, so reordering alone never diverges the roots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..telemetry import get_metrics, span
from .batch import Batch
from .fraud_proof import recompute_post_root
from .ovm import OVM
from .state import L2State


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of a verifier's inspection of one batch."""

    batch_tx_root: str
    recomputed_post_root: str
    claimed_post_root: str
    tx_root_ok: bool

    @property
    def should_challenge(self) -> bool:
        """Challenge iff the commitment is provably wrong."""
        return not self.tx_root_ok or (
            self.recomputed_post_root != self.claimed_post_root
        )


class Verifier:
    """An L1 watcher that re-executes batches and challenges fraud."""

    def __init__(self, address: str, ovm: Optional[OVM] = None) -> None:
        self.address = address
        self.ovm = ovm or OVM()
        #: Liveness flag toggled by fault injection; a crashed verifier is
        #: skipped during inspection until restarted.
        self.alive = True
        self.crash_count = 0

    def crash(self) -> None:
        """Mark the verifier as down (crash fault)."""
        if self.alive:
            self.alive = False
            self.crash_count += 1
            get_metrics().counter(
                "verifier.crashes", verifier=self.address
            ).inc()

    def restart(self) -> None:
        """Bring a crashed verifier back online."""
        self.alive = True

    def inspect(self, batch: Batch, pre_state: L2State) -> VerificationReport:
        """Re-execute ``batch`` from ``pre_state`` and compare roots."""
        with span(
            "verifier.inspect",
            verifier=self.address,
            n_txs=len(batch.transactions),
        ) as current:
            recomputed = recompute_post_root(
                pre_state, batch.transactions, self.ovm
            )
            report = VerificationReport(
                batch_tx_root=batch.tx_root,
                recomputed_post_root=recomputed,
                claimed_post_root=batch.post_state_root,
                tx_root_ok=batch.verify_tx_root(),
            )
            current.add(challenged=report.should_challenge)
        metrics = get_metrics()
        metrics.counter("verifier.inspections").inc()
        outcome = "challenged" if report.should_challenge else "accepted"
        metrics.counter("verifier.outcomes", outcome=outcome).inc()
        return report
