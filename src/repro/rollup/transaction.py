"""NFT transactions submitted to the rollup (paper Table I).

The three transaction kinds map to the paper's notation:

* ``MINT``     — :math:`M_k^{i,t}`: ``sender`` mints a fresh token;
* ``TRANSFER`` — :math:`T_{k,j}^{i,t}`: ``sender`` sells to ``recipient``;
* ``BURN``     — :math:`D_k^{i,t}`: ``sender`` destroys a token he owns.

Transactions carry EIP-1559-style ``base_fee`` and ``priority_fee``
because Bedrock's mempool orders by their sum (Section IV-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..crypto import hash_value
from ..errors import RollupError


class TxKind(enum.Enum):
    """The three ERC-721 transaction types of Section V-B."""

    MINT = "mint"
    TRANSFER = "transfer"
    BURN = "burn"


@dataclass(frozen=True)
class NFTTransaction:
    """One submitted NFT transaction.

    ``token_id`` may be ``None`` for mints (assigned at execution).  For
    transfers and burns it is optional: the limited-edition model treats
    units as economically fungible (Eq. 10 prices the *collection*), so a
    missing id means "one of the sender's tokens".
    """

    kind: TxKind
    sender: str
    recipient: Optional[str] = None
    token_id: Optional[int] = None
    base_fee: float = 1.0
    priority_fee: float = 0.0
    nonce: int = 0
    submitted_at: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind is TxKind.TRANSFER and self.recipient is None:
            raise RollupError("transfer transactions require a recipient")
        if self.kind is not TxKind.TRANSFER and self.recipient is not None:
            raise RollupError(f"{self.kind.value} transactions have no recipient")
        if self.base_fee < 0 or self.priority_fee < 0:
            raise RollupError("fees cannot be negative")

    @property
    def total_fee(self) -> float:
        """Base plus priority fee — Bedrock's ordering key."""
        return self.base_fee + self.priority_fee

    @property
    def tx_hash(self) -> str:
        """Stable digest identifying this transaction."""
        return hash_value(
            [
                "tx",
                self.kind.value,
                self.sender,
                self.recipient,
                self.token_id,
                self.base_fee,
                self.priority_fee,
                self.nonce,
                self.submitted_at,
                self.label,
            ]
        )

    @property
    def arrival_identity(self) -> str:
        """Digest of everything *but* the arrival stamp.

        Two submissions of the same logical transaction share this
        identity regardless of when (or whether) a mempool stamped them,
        so admission-time duplicate detection survives re-stamping.
        """
        return hash_value(
            [
                "tx-identity",
                self.kind.value,
                self.sender,
                self.recipient,
                self.token_id,
                self.base_fee,
                self.priority_fee,
                self.nonce,
                self.label,
            ]
        )

    def involves(self, user: str) -> bool:
        """Whether ``user`` is the sender or the recipient."""
        return self.sender == user or self.recipient == user

    def parties(self) -> Tuple[str, ...]:
        """All user addresses this transaction touches."""
        if self.recipient is None:
            return (self.sender,)
        return (self.sender, self.recipient)

    def describe(self) -> str:
        """Human-readable one-liner (matches the case-study tables)."""
        if self.kind is TxKind.MINT:
            return f"Mint PT: {self.sender}"
        if self.kind is TxKind.BURN:
            return f"Burn PT: {self.sender}"
        return f"Transfer PT: {self.sender} -> {self.recipient}"


def sort_by_fee(transactions: Sequence[NFTTransaction]) -> Tuple[NFTTransaction, ...]:
    """Order transactions the way Bedrock's mempool hands them out:
    descending total fee, ties broken by submission time then nonce."""
    return tuple(
        sorted(
            transactions,
            key=lambda tx: (-tx.total_fee, tx.submitted_at, tx.nonce),
        )
    )


def involvement_counts(
    transactions: Sequence[NFTTransaction], users: Sequence[str]
) -> dict:
    """Per-user counts of transactions each user participates in."""
    counts = {user: 0 for user in users}
    for tx in transactions:
        for user in users:
            if tx.involves(user):
                counts[user] += 1
    return counts
