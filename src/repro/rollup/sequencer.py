"""Bedrock-style L2 block production (Section IV-A).

"The legacy network generates a block for each transaction ... while
Bedrock creates blocks at fixed intervals, necessitating a Mempool to
hold pending transactions until they're incorporated into a block."

:class:`Sequencer` drives that clock: every ``block_interval`` ticks it
drains the private mempool through the registered aggregators and seals
an :class:`L2Block` per produced batch, maintaining the canonical L2
chain of blocks whose state roots chain together.  The centralisation
concern the paper opens with (Section I) is visible here: whoever owns
the sequencer owns the ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..config import RollupConfig
from ..crypto import hash_value
from ..errors import RollupError
from ..telemetry import get_metrics, span
from .aggregator import AggregationResult, Aggregator
from .fee_market import FeeMarket
from .fraud_proof import state_root
from .mempool import BedrockMempool
from .state import L2State
from .transaction import NFTTransaction


@dataclass(frozen=True)
class L2Block:
    """One sealed Layer-2 block."""

    number: int
    parent_hash: str
    tx_root: str
    state_root: str
    timestamp: int
    aggregator: str
    tx_count: int

    @property
    def block_hash(self) -> str:
        """Digest identifying this L2 block."""
        return hash_value(
            [
                "l2-block",
                self.number,
                self.parent_hash,
                self.tx_root,
                self.state_root,
                self.timestamp,
            ]
        )


GENESIS_L2_PARENT = hash_value("repro.rollup.l2genesis")


class Sequencer:
    """Fixed-interval L2 block production over the private mempool."""

    def __init__(
        self,
        state: L2State,
        config: Optional[RollupConfig] = None,
        fee_market: Optional[FeeMarket] = None,
    ) -> None:
        self.config = config or RollupConfig()
        self.state = state
        self.mempool = BedrockMempool()
        self.aggregators: List[Aggregator] = []
        self.blocks: List[L2Block] = []
        #: Optional EIP-1559 controller updated on every produced block.
        self.fee_market = fee_market
        self._clock = 0
        self._next_aggregator = 0
        #: Production attempts that failed and requeued their collection.
        self.failed_blocks = 0

    # ------------------------------------------------------------------ #

    @property
    def height(self) -> int:
        """Number of sealed L2 blocks."""
        return len(self.blocks)

    @property
    def head(self) -> Optional[L2Block]:
        """Latest sealed L2 block."""
        return self.blocks[-1] if self.blocks else None

    @property
    def clock(self) -> int:
        """Current tick count."""
        return self._clock

    def register(self, aggregator: Aggregator) -> None:
        """Add an aggregator to the round-robin rotation."""
        self.aggregators.append(aggregator)

    def submit(self, tx: NFTTransaction) -> str:
        """User-facing submission into the private mempool."""
        return self.mempool.submit(tx)

    # ------------------------------------------------------------------ #

    def tick(self) -> Optional[Tuple[L2Block, AggregationResult]]:
        """Advance the Bedrock clock by one tick.

        A block is produced only on interval boundaries and only when
        transactions are pending — empty intervals seal nothing (Bedrock
        skips empty blocks in this simulation to keep the chain dense).
        """
        if not self.aggregators:
            raise RollupError("sequencer has no registered aggregators")
        self._clock += 1
        if self._clock % self.config.block_interval != 0:
            return None
        if len(self.mempool) == 0:
            return None
        return self._produce_block()

    def run_until_empty(self, max_ticks: int = 10_000) -> List[L2Block]:
        """Tick until the mempool drains; returns the sealed blocks."""
        produced: List[L2Block] = []
        for _ in range(max_ticks):
            if len(self.mempool) == 0:
                break
            outcome = self.tick()
            if outcome is not None:
                produced.append(outcome[0])
        else:
            raise RollupError("sequencer failed to drain the mempool")
        return produced

    def _next_live_aggregator(self) -> Optional[Aggregator]:
        """Round-robin selection skipping crashed aggregators."""
        for _ in range(len(self.aggregators)):
            aggregator = self.aggregators[self._next_aggregator]
            self._next_aggregator = (
                self._next_aggregator + 1
            ) % len(self.aggregators)
            if aggregator.alive:
                return aggregator
        return None

    def _produce_block(self) -> Optional[Tuple[L2Block, AggregationResult]]:
        aggregator = self._next_live_aggregator()
        if aggregator is None:
            # Every aggregator is down: skip the slot rather than crash;
            # pending transactions simply wait for a restart.
            get_metrics().counter("sequencer.skipped_slots").inc()
            return None
        count = min(self.config.aggregator_mempool_size, len(self.mempool))
        with span(
            "sequencer.block", number=len(self.blocks), aggregator=aggregator.address
        ) as current:
            if self.mempool.stalled:
                # Explicit stall check: pending transactions wait out the
                # outage rather than being mistaken for a drained pool.
                current.add(stalled=True)
                get_metrics().counter("sequencer.stalled_slots").inc()
                return None
            collected = self.mempool.collect(count)
            if not collected:
                return None
            try:
                result = aggregator.process(self.state.copy(), collected)
            except Exception:
                # Recovery: the collection goes back to the pool intact.
                self.mempool.requeue(collected)
                self.failed_blocks += 1
                get_metrics().counter("sequencer.failed_blocks").inc()
                current.add(failed=True)
                return None
            self.state = result.trace.final_state
            parent = self.head.block_hash if self.head else GENESIS_L2_PARENT
            block = L2Block(
                number=len(self.blocks),
                parent_hash=parent,
                tx_root=result.batch.tx_root,
                state_root=result.batch.post_state_root,
                timestamp=self._clock,
                aggregator=aggregator.address,
                tx_count=len(collected),
            )
            self.blocks.append(block)
            if self.fee_market is not None:
                fullness = len(collected) / self.config.aggregator_mempool_size
                self.fee_market.on_block(min(1.0, fullness))
            current.add(tx_count=len(collected), reordered=result.reordered)
        metrics = get_metrics()
        metrics.counter("sequencer.blocks").inc()
        metrics.gauge("sequencer.height").set(len(self.blocks))
        metrics.histogram(
            "sequencer.batch_fill",
            bounds=(0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
        ).observe(len(collected) / self.config.aggregator_mempool_size)
        return block, result

    def verify_chain(self) -> bool:
        """Check parent-hash links and the head state root."""
        parent = GENESIS_L2_PARENT
        for block in self.blocks:
            if block.parent_hash != parent:
                return False
            parent = block.block_hash
        if self.blocks and self.blocks[-1].state_root != state_root(self.state):
            return False
        return True
