/* Columnar batch replay step loop — compiled fast path.
 *
 * Replays K candidate orderings over the compiled per-transaction role
 * tables of `BatchReplayEngine` (see replay_engine.py).  Each candidate
 * owns one contiguous column-major copy of the state (cell = candidate *
 * n_rows + row), and its steps execute as true sequential scalar
 * IEEE-754 double operations in exactly the serial engine's order:
 * price lookup, feasibility (balance, strict ownership, supply
 * headroom, burn poisoning), then payer debit, payee credit, inventory
 * out, inventory in, fee debit, fee-pool credit, supply delta.  That
 * sequencing makes the kernel bit-identical to `IncrementalOVM` by
 * construction — including self-transfers, duplicate indices and the
 * +inf payer dummy — with no fused-scatter caveats.
 *
 * Compile with -O2 -ffp-contract=off and WITHOUT -ffast-math: floating
 * point contraction or reassociation would break the bit-identity
 * contract the differential tests enforce.
 *
 * Returns -1 on success.  A burn past the global supply (Eq. 10
 * poisoned) returns the offending candidate index >= 0 with `rem[c]`
 * still holding that candidate's pre-step remaining supply; the Python
 * caller re-raises the serial engine's identical TokenError from it.
 */

#include <stdint.h>

int64_t parole_batch_replay(
    int64_t length,            /* steps per candidate (L)              */
    int64_t k,                 /* candidates (K)                       */
    int64_t n_rows,            /* state rows per candidate             */
    const int64_t *orders,     /* (K, L) candidate-major tx indices    */
    const int64_t *pay_row,    /* (n_tx,) role tables                  */
    const int64_t *recv_row,
    const int64_t *dec_row,    /* doubles as the strict ownership row  */
    const int64_t *inc_row,
    const int64_t *fee_row,
    const int64_t *dsupply,    /* (n_tx,) +1 mint / -1 burn / 0        */
    const double *fees,        /* (n_tx,) total fee per tx             */
    const uint8_t *is_mint,    /* (n_tx,)                              */
    const uint8_t *is_burn,    /* (n_tx,)                              */
    const double *table,       /* (max_supply + 1,) price table or 0   */
    double max_supply_f,       /* closed-form pricing operands         */
    double initial_price,
    int64_t max_supply,
    int64_t strict,            /* ExecutionMode.STRICT ownership check */
    int64_t charge,            /* charge_fees                          */
    int64_t pool_row,          /* fee-pool row                         */
    double *bal,               /* (K * n_rows,) in/out                 */
    int64_t *inv,              /* (K * n_rows,) in/out                 */
    int64_t *rem,              /* (K,) remaining supply in/out         */
    uint8_t *exec_mat,         /* (L, K) out                           */
    double *price_mat,         /* (L, K) out                           */
    int64_t *rem_mat)          /* (L, K) out                           */
{
    for (int64_t t = 0; t < length; t++) {
        uint8_t *ex = exec_mat + t * k;
        double *pr = price_mat + t * k;
        int64_t *rm = rem_mat + t * k;
        for (int64_t c = 0; c < k; c++) {
            int64_t tx = orders[c * length + t];
            int64_t base = c * n_rows;
            int64_t r = rem[c];
            double price;
            if (table) {
                price = table[r];
            } else {
                double s = r < 1 ? 1.0 : (double)r;
                price = max_supply_f / s * initial_price;
            }
            int64_t pcell = base + pay_row[tx];
            int64_t dcell = base + dec_row[tx];
            double pb = bal[pcell];
            int executed = pb >= price;
            int own_ok = 1;
            if (strict) {
                own_ok = inv[dcell] >= 1;
                executed = executed && own_ok;
            }
            /* Eq. 1: a mint additionally needs supply headroom. */
            if (executed && is_mint[tx] && r < 1)
                executed = 0;
            /* `rem >= max_supply` <=> no live token left to burn: the
             * Eq. 10 read one past max supply poisons the price curve
             * and the serial engine raises.  Mirror its precedence: the
             * strict ownership check fails first, balance does not. */
            if (is_burn[tx] && r >= max_supply && own_ok)
                return c;
            double delta = executed ? price : 0.0;
            bal[pcell] = pb - delta;
            bal[base + recv_row[tx]] += delta;
            if (executed) {
                inv[dcell] -= 1;
                inv[base + inc_row[tx]] += 1;
            }
            if (charge) {
                double fee = executed ? fees[tx] : 0.0;
                bal[base + fee_row[tx]] -= fee;
                bal[base + pool_row] += fee;
            }
            if (executed) {
                int64_t d = dsupply[tx];
                if (d) {
                    r -= d;
                    rem[c] = r;
                }
            }
            ex[c] = (uint8_t)executed;
            pr[c] = price;
            rm[c] = r;
        }
    }
    return -1;
}
