"""Rollup batches: ordered transactions plus state-root commitments.

``A.AggregateTX(BedRockMemPool) -> RollupTX, Proof`` (Section V-A): an
aggregator executes its collected transactions and bundles them with the
Merkle root over the transaction list and the claimed post-state root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..crypto import MerkleTree
from ..errors import BatchError
from .ovm import OVM, ReplayTrace
from .state import L2State
from .transaction import NFTTransaction
from .fraud_proof import state_root


@dataclass(frozen=True)
class Batch:
    """An executed, committed bundle of L2 transactions."""

    aggregator: str
    transactions: Tuple[NFTTransaction, ...]
    tx_root: str
    pre_state_root: str
    post_state_root: str
    executed_count: int

    def __len__(self) -> int:
        return len(self.transactions)

    @property
    def fee_revenue(self) -> float:
        """Total fees the aggregator earns from this batch.

        A permutation invariant: the PAROLE attack re-orders but neither
        drops nor injects, so the adversarial aggregator's fee revenue is
        identical to honest aggregation — the attack's gain is entirely
        the IFU's arbitrage, not fee capture.
        """
        return sum(tx.total_fee for tx in self.transactions)

    def posting_cost_wei(self, gas_schedule=None) -> int:
        """L1 data-availability cost of publishing this batch.

        Optimistic rollups pay L1 calldata for every included
        transaction; the per-type fees come from the Table III-calibrated
        gas schedule.  Like :attr:`fee_revenue`, this is permutation
        invariant — the attack shifts neither cost nor revenue, only the
        IFU's balance.
        """
        from ..chain.gas import GasSchedule

        schedule = gas_schedule or GasSchedule()
        return sum(
            schedule.usage_for(tx.kind.value).fee_wei
            for tx in self.transactions
        )

    def merkle_tree(self) -> MerkleTree:
        """Rebuild the Merkle tree over the transaction hashes."""
        return MerkleTree([tx.tx_hash for tx in self.transactions])

    def verify_tx_root(self) -> bool:
        """Recompute and compare the transaction Merkle root."""
        return self.merkle_tree().root == self.tx_root


def build_batch(
    aggregator: str,
    pre_state: L2State,
    transactions: Sequence[NFTTransaction],
    ovm: OVM = None,
) -> Tuple[Batch, ReplayTrace]:
    """Execute ``transactions`` against ``pre_state`` and seal a batch.

    Returns the sealed batch and the execution trace.  The input state is
    not mutated; the trace's ``final_state`` is the post-state.
    """
    if not transactions:
        raise BatchError("cannot build an empty batch")
    machine = ovm or OVM()
    trace = machine.replay(pre_state, transactions)
    tree = MerkleTree([tx.tx_hash for tx in transactions])
    batch = Batch(
        aggregator=aggregator,
        transactions=tuple(transactions),
        tx_root=tree.root,
        pre_state_root=state_root(pre_state),
        post_state_root=state_root(trace.final_state),
        executed_count=trace.executed_count,
    )
    return batch, trace
