"""The Optimistic Virtual Machine (OVM).

Section IV-B: the GENTRANSEQ module "executes each candidate solution
using an optimistic virtual machine and observes the balance update of
the IFU".  :class:`OVM` replays a transaction sequence against a copy of
the L2 state and returns a full trace — per-step prices, validity, and
the balance trajectory of any watched users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..telemetry import get_metrics
from .state import ExecutionMode, L2State, StepResult
from .transaction import NFTTransaction


@dataclass(frozen=True, slots=True)
class TraceStep:
    """One row of a replay trace (mirrors a case-study table row)."""

    index: int
    tx: NFTTransaction
    result: StepResult
    watched_wealth: Tuple[Tuple[str, float], ...]

    @property
    def executed(self) -> bool:
        """Whether the transaction executed at this position."""
        return self.result.executed


@dataclass
class ReplayTrace:
    """Complete result of replaying a sequence through the OVM."""

    steps: List[TraceStep]
    final_state: L2State
    watched_users: Tuple[str, ...]

    @property
    def executed_count(self) -> int:
        """Number of transactions that executed."""
        return sum(1 for step in self.steps if step.executed)

    @property
    def skipped_indices(self) -> Tuple[int, ...]:
        """Positions whose transaction failed its constraint."""
        return tuple(step.index for step in self.steps if not step.executed)

    @property
    def all_executed(self) -> bool:
        """Whether every transaction in the sequence executed."""
        return self.executed_count == len(self.steps)

    @property
    def final_price(self) -> float:
        """Unit price after the last transaction."""
        return self.final_state.unit_price

    def final_wealth(self, user: str) -> float:
        """Total balance of ``user`` after the full replay."""
        return self.final_state.wealth(user)

    def wealth_trajectory(self, user: str) -> List[float]:
        """Per-step total balance of a watched user.

        Watched-wealth tuples are built in ``watched_users`` order, so one
        index lookup replaces a per-step scan over every watched user.
        """
        try:
            position = self.watched_users.index(user)
        except ValueError:
            return []
        return [step.watched_wealth[position][1] for step in self.steps]

    def price_trajectory(self) -> List[float]:
        """Unit price after each step (the case-study "PT Price" column)."""
        return [step.result.price_after for step in self.steps]

    def consistent(self) -> bool:
        """Batch-end inventory consistency (no user net-negative)."""
        return self.final_state.inventory_is_consistent()


class OVM:
    """Replays transaction sequences against copies of the L2 state."""

    def __init__(self, mode: Optional[ExecutionMode] = None) -> None:
        self.mode = mode

    def replay(
        self,
        state: L2State,
        transactions: Sequence[NFTTransaction],
        watch: Sequence[str] = (),
    ) -> ReplayTrace:
        """Execute ``transactions`` in order against a copy of ``state``.

        ``watch`` lists users whose wealth is sampled after every step.
        The input ``state`` is never mutated.
        """
        working = state.copy()
        if self.mode is not None:
            working.mode = self.mode
        watched = tuple(watch)
        steps: List[TraceStep] = []
        for index, tx in enumerate(transactions):
            result = working.apply(tx)
            wealth = tuple((user, working.wealth(user)) for user in watched)
            steps.append(
                TraceStep(index=index, tx=tx, result=result, watched_wealth=wealth)
            )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("ovm.replays").inc()
            metrics.counter("ovm.steps_executed").inc(len(steps))
        return ReplayTrace(steps=steps, final_state=working, watched_users=watched)

    def final_wealth(
        self,
        state: L2State,
        transactions: Sequence[NFTTransaction],
        user: str,
    ) -> float:
        """Shortcut: the user's total balance after a full replay."""
        return self.replay(state, transactions, watch=(user,)).final_wealth(user)

    def executed_mask(
        self, state: L2State, transactions: Sequence[NFTTransaction]
    ) -> Tuple[bool, ...]:
        """Which positions execute under the current mode."""
        trace = self.replay(state, transactions)
        return tuple(step.executed for step in trace.steps)
