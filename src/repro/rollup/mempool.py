"""Bedrock's private mempool (Sections II-A, IV-A and VIII).

Bedrock creates blocks at fixed intervals, so pending transactions wait
in a *private* mempool; aggregators must collect them in priority order
(base + priority fee) rather than hand-picking.  ``collect`` therefore
always returns the top-fee prefix — the adversarial aggregator's only
freedom is what it does *after* collection, which is precisely the PAROLE
attack surface.

Ordering guarantees
-------------------

* Every transaction is re-stamped with the pool's own arrival counter on
  first admission, so fee-tie ordering is first-come-first-served *as
  observed by this mempool* — a submitter cannot jump the FCFS queue by
  pre-stamping a low ``submitted_at`` (nor accidentally collide with the
  internal counter).  Duplicate detection uses the stamp-independent
  :attr:`~repro.rollup.transaction.NFTTransaction.arrival_identity`, so
  resubmitting the same logical transaction is rejected regardless of
  how either copy was stamped.
* ``requeue`` (the recovery/demotion path) preserves the original
  stamps: a requeued transaction re-enters fee-priority order at its
  original arrival position, ahead of newer submissions at the same fee.
* The pending set is indexed by a lazy-deletion binary heap, so
  ``collect(k)`` costs O(k log N) instead of the full O(N log N) sort —
  the difference between a batch experiment and a streaming pipeline
  draining millions of submissions.

A stalled pool (fault injection) raises
:class:`~repro.errors.MempoolStalledError` from ``collect`` rather than
returning an empty tuple: callers must distinguish "nothing pending"
from "collection unavailable", or they silently advance rounds during an
outage.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Tuple

from ..errors import MempoolError, MempoolStalledError
from ..telemetry import get_metrics
from .transaction import NFTTransaction


class BedrockMempool:
    """Private fee-priority mempool with fixed-interval draining."""

    def __init__(self) -> None:
        self._pending: Dict[str, NFTTransaction] = {}
        #: Stamp-independent identity -> pending tx hash (duplicate check).
        self._identity: Dict[str, str] = {}
        #: Admission sequence per pending hash: the final ordering
        #: tiebreak, so collect order is a total order even when two
        #: pending transactions share fee, stamp and nonce.
        self._order: Dict[str, int] = {}
        #: Lazy-deletion priority index.  Entries are
        #: ``(-total_fee, submitted_at, nonce, admission_seq, tx_hash)``;
        #: dropped/collected hashes leave stale entries behind that are
        #: skipped (and discarded) when they surface at the top.
        self._heap: List[Tuple[float, int, int, int, str]] = []
        self._seq: int = 0
        self._arrival: int = 0
        self._stalled = False
        # Telemetry is bound at construction: instruments resolve to
        # shared no-ops unless a registry was enabled beforehand.
        metrics = get_metrics()
        self._m_submitted = metrics.counter("mempool.submitted")
        self._m_collected = metrics.counter("mempool.collected")
        self._m_requeued = metrics.counter("mempool.requeued")
        self._m_dropped = metrics.counter("mempool.dropped")
        self._m_pending = metrics.gauge("mempool.pending")
        self._m_collect_fee = metrics.histogram("mempool.collect_priority_fee")

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def stalled(self) -> bool:
        """Whether collection is currently stalled (fault injection)."""
        return self._stalled

    def stall(self) -> None:
        """Stop serving collections; submissions are still accepted."""
        self._stalled = True

    def resume(self) -> None:
        """Resume serving collections after a stall."""
        self._stalled = False

    def __contains__(self, tx_hash: str) -> bool:
        return tx_hash in self._pending

    def submit(self, tx: NFTTransaction) -> str:
        """Accept a transaction into the pool; returns its (stamped) hash.

        The transaction is *always* re-stamped with the pool's arrival
        counter — fee ties are broken first-come-first-served in the
        order this mempool admitted them, never by a caller-supplied
        ``submitted_at``.  Resubmitting a logically-identical pending
        transaction raises :class:`~repro.errors.MempoolError` no matter
        how either copy was stamped.
        """
        identity = tx.arrival_identity
        if identity in self._identity:
            raise MempoolError(
                f"duplicate transaction {self._identity[identity][:12]}..."
            )
        stamped = self._stamp(tx)
        self._admit(stamped, identity)
        self._m_submitted.inc()
        self._m_pending.set(len(self._pending))
        return stamped.tx_hash

    def _stamp(self, tx: NFTTransaction) -> NFTTransaction:
        self._arrival += 1
        return NFTTransaction(
            kind=tx.kind,
            sender=tx.sender,
            recipient=tx.recipient,
            token_id=tx.token_id,
            base_fee=tx.base_fee,
            priority_fee=tx.priority_fee,
            nonce=tx.nonce,
            submitted_at=self._arrival,
            label=tx.label,
        )

    def _admit(self, tx: NFTTransaction, identity: str) -> None:
        tx_hash = tx.tx_hash
        self._seq += 1
        self._pending[tx_hash] = tx
        self._identity[identity] = tx_hash
        self._order[tx_hash] = self._seq
        heapq.heappush(
            self._heap,
            (-tx.total_fee, tx.submitted_at, tx.nonce, self._seq, tx_hash),
        )

    def _priority(self, tx: NFTTransaction) -> Tuple[float, int, int, int]:
        return (-tx.total_fee, tx.submitted_at, tx.nonce, self._order[tx.tx_hash])

    def submit_all(self, txs: Sequence[NFTTransaction]) -> List[str]:
        """Submit several transactions, preserving order."""
        return [self.submit(tx) for tx in txs]

    def peek(self, count: int) -> Tuple[NFTTransaction, ...]:
        """The next ``count`` transactions in priority order (no removal).

        Exactly the prefix ``collect(count)`` would return.
        """
        return tuple(
            heapq.nsmallest(count, self._pending.values(), key=self._priority)
        )

    def collect(self, count: int) -> Tuple[NFTTransaction, ...]:
        """Remove and return the top ``count`` transactions by fee priority.

        This is the aggregator's "Mempool" of the evaluation section: the
        set of transactions one aggregator processes per round.  Raises
        :class:`~repro.errors.MempoolStalledError` while the pool is
        stalled — an empty result always means the pool was drained.
        """
        if count <= 0:
            raise MempoolError("collect count must be positive")
        if self._stalled:
            raise MempoolStalledError(
                "mempool is stalled: collection unavailable "
                f"({len(self._pending)} transactions pending)"
            )
        selected: List[NFTTransaction] = []
        while self._heap and len(selected) < count:
            _, _, _, seq, tx_hash = heapq.heappop(self._heap)
            if self._order.get(tx_hash) != seq:
                continue  # stale entry: already collected or dropped
            tx = self._pending.pop(tx_hash)
            del self._identity[tx.arrival_identity]
            del self._order[tx_hash]
            self._m_collect_fee.observe(tx.priority_fee)
            selected.append(tx)
        self._m_collected.inc(len(selected))
        self._m_pending.set(len(self._pending))
        return tuple(selected)

    def admit_stamped(self, tx: NFTTransaction) -> str:
        """Admit a transaction that already carries its arrival stamp.

        The requeue/demotion recovery paths and the sharded streaming
        mempool (which stamps globally before routing) come through
        here; ordinary submission must use :meth:`submit`, which always
        re-stamps.  Returns the transaction hash.
        """
        identity = tx.arrival_identity
        if identity in self._identity:
            raise MempoolError(
                f"transaction {tx.tx_hash[:12]}... is already pending"
            )
        self._admit(tx, identity)
        self._m_pending.set(len(self._pending))
        return tx.tx_hash

    def requeue(self, txs: Sequence[NFTTransaction]) -> None:
        """Return transactions to the pool (the defense's demotion path).

        Stamps are preserved, so requeued transactions re-enter
        fee-priority order at their original arrival position — ahead of
        any newer submission at the same fee level.
        """
        for tx in txs:
            self.admit_stamped(tx)
            self._m_requeued.inc()

    def drop(self, tx_hash: str) -> NFTTransaction:
        """Remove one transaction by hash."""
        try:
            dropped = self._pending.pop(tx_hash)
        except KeyError:
            raise MempoolError(f"unknown transaction {tx_hash[:12]}...") from None
        del self._identity[dropped.arrival_identity]
        del self._order[tx_hash]
        self._m_dropped.inc()
        self._m_pending.set(len(self._pending))
        return dropped

    def pending(self) -> Tuple[NFTTransaction, ...]:
        """All pending transactions in priority order."""
        return tuple(sorted(self._pending.values(), key=self._priority))
