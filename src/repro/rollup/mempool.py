"""Bedrock's private mempool (Sections II-A, IV-A and VIII).

Bedrock creates blocks at fixed intervals, so pending transactions wait
in a *private* mempool; aggregators must collect them in priority order
(base + priority fee) rather than hand-picking.  ``collect`` therefore
always returns the top-fee prefix — the adversarial aggregator's only
freedom is what it does *after* collection, which is precisely the PAROLE
attack surface.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import MempoolError
from ..telemetry import get_metrics
from .transaction import NFTTransaction, sort_by_fee


class BedrockMempool:
    """Private fee-priority mempool with fixed-interval draining."""

    def __init__(self) -> None:
        self._pending: Dict[str, NFTTransaction] = {}
        self._arrival: int = 0
        self._stalled = False
        # Telemetry is bound at construction: instruments resolve to
        # shared no-ops unless a registry was enabled beforehand.
        metrics = get_metrics()
        self._m_submitted = metrics.counter("mempool.submitted")
        self._m_collected = metrics.counter("mempool.collected")
        self._m_requeued = metrics.counter("mempool.requeued")
        self._m_dropped = metrics.counter("mempool.dropped")
        self._m_pending = metrics.gauge("mempool.pending")
        self._m_collect_fee = metrics.histogram("mempool.collect_priority_fee")

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def stalled(self) -> bool:
        """Whether collection is currently stalled (fault injection)."""
        return self._stalled

    def stall(self) -> None:
        """Stop serving collections; submissions are still accepted."""
        self._stalled = True

    def resume(self) -> None:
        """Resume serving collections after a stall."""
        self._stalled = False

    def __contains__(self, tx_hash: str) -> bool:
        return tx_hash in self._pending

    def submit(self, tx: NFTTransaction) -> str:
        """Accept a transaction into the pool; returns its hash.

        Transactions are stamped with an arrival sequence number used for
        fee-tie ordering, mirroring first-come-first-served within a fee
        level.
        """
        stamped = tx if tx.submitted_at else self._stamp(tx)
        tx_hash = stamped.tx_hash
        if tx_hash in self._pending:
            raise MempoolError(f"duplicate transaction {tx_hash[:12]}...")
        self._pending[tx_hash] = stamped
        self._m_submitted.inc()
        self._m_pending.set(len(self._pending))
        return tx_hash

    def _stamp(self, tx: NFTTransaction) -> NFTTransaction:
        self._arrival += 1
        return NFTTransaction(
            kind=tx.kind,
            sender=tx.sender,
            recipient=tx.recipient,
            token_id=tx.token_id,
            base_fee=tx.base_fee,
            priority_fee=tx.priority_fee,
            nonce=tx.nonce,
            submitted_at=self._arrival,
            label=tx.label,
        )

    def submit_all(self, txs: Sequence[NFTTransaction]) -> List[str]:
        """Submit several transactions, preserving order."""
        return [self.submit(tx) for tx in txs]

    def peek(self, count: int) -> Tuple[NFTTransaction, ...]:
        """The next ``count`` transactions in priority order (no removal)."""
        ordered = sort_by_fee(self._pending.values())
        return ordered[:count]

    def collect(self, count: int) -> Tuple[NFTTransaction, ...]:
        """Remove and return the top ``count`` transactions by fee priority.

        This is the aggregator's "Mempool" of the evaluation section: the
        set of transactions one aggregator processes per round.
        """
        if count <= 0:
            raise MempoolError("collect count must be positive")
        if self._stalled:
            return ()
        selected = self.peek(count)
        for tx in selected:
            del self._pending[tx.tx_hash]
            self._m_collect_fee.observe(tx.priority_fee)
        self._m_collected.inc(len(selected))
        self._m_pending.set(len(self._pending))
        return selected

    def requeue(self, txs: Sequence[NFTTransaction]) -> None:
        """Return transactions to the pool (the defense's demotion path)."""
        for tx in txs:
            if tx.tx_hash in self._pending:
                raise MempoolError(
                    f"transaction {tx.tx_hash[:12]}... is already pending"
                )
            self._pending[tx.tx_hash] = tx
            self._m_requeued.inc()
        self._m_pending.set(len(self._pending))

    def drop(self, tx_hash: str) -> NFTTransaction:
        """Remove one transaction by hash."""
        try:
            dropped = self._pending.pop(tx_hash)
        except KeyError:
            raise MempoolError(f"unknown transaction {tx_hash[:12]}...") from None
        self._m_dropped.inc()
        self._m_pending.set(len(self._pending))
        return dropped

    def pending(self) -> Tuple[NFTTransaction, ...]:
        """All pending transactions in priority order."""
        return sort_by_fee(self._pending.values())
