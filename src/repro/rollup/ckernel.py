"""Lazy compiler/loader for the batch replay C kernel.

The columnar batch replay engine's step loop is numpy-vectorised across
candidates, but at small K the per-step ufunc dispatch overhead
dominates.  ``_batch_replay.c`` implements the identical step loop as
sequential scalar IEEE-754 operations; this module compiles it with the
system C compiler on first use (once per process, into a temporary
directory) and binds it through :mod:`ctypes`.

The kernel is strictly optional: any failure — no compiler, sandboxed
filesystem, unsupported platform — degrades silently to the pure-numpy
loops, which are differentially verified against the serial engine in
their own right.  Set ``REPRO_BATCH_CKERNEL=0`` to force the numpy path
(the differential test-suite exercises both).
"""

from __future__ import annotations

import atexit
import ctypes
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Optional

_SOURCE = Path(__file__).with_name("_batch_replay.c")
_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off"]
_loaded = False
_kernel: Optional[ctypes.CDLL] = None


def _compile() -> Optional[ctypes.CDLL]:
    compiler = (
        os.environ.get("CC")
        or shutil.which("cc")
        or shutil.which("gcc")
        or shutil.which("clang")
    )
    if compiler is None or not _SOURCE.exists():
        return None
    build_dir = tempfile.mkdtemp(prefix="repro-batch-kernel-")
    atexit.register(shutil.rmtree, build_dir, ignore_errors=True)
    lib_path = os.path.join(build_dir, "_batch_replay.so")
    try:
        subprocess.run(
            [compiler, *_CFLAGS, "-o", lib_path, str(_SOURCE)],
            check=True,
            capture_output=True,
            timeout=120,
        )
        lib = ctypes.CDLL(lib_path)
    except (OSError, subprocess.SubprocessError):
        return None
    fn = lib.parole_batch_replay
    fn.restype = ctypes.c_int64
    fn.argtypes = (
        [ctypes.c_int64] * 3          # length, k, n_rows
        + [ctypes.c_void_p] * 11      # orders .. table
        + [ctypes.c_double] * 2       # max_supply_f, initial_price
        + [ctypes.c_int64] * 4        # max_supply, strict, charge, pool_row
        + [ctypes.c_void_p] * 6       # bal, inv, rem, exec, price, rem_mat
    )
    return lib


def load_kernel() -> Optional[ctypes.CDLL]:
    """The compiled kernel library, or ``None`` when unavailable.

    Compilation is attempted at most once per process; the result
    (including failure) is cached.
    """
    global _loaded, _kernel
    if not _loaded:
        _loaded = True
        if os.environ.get("REPRO_BATCH_CKERNEL", "1") != "0":
            _kernel = _compile()
    return _kernel


def kernel_backend() -> str:
    """``"c"`` when the compiled step loop is active, else ``"numpy"``."""
    return "c" if load_kernel() is not None else "numpy"


def _reset_for_tests() -> None:
    """Forget the cached load decision (test hook)."""
    global _loaded, _kernel
    _loaded = False
    _kernel = None
