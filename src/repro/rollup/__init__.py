"""Layer-2 optimistic rollup substrate.

Everything between the user's submitted NFT transaction and the finalized
L1 batch: the Bedrock-style private mempool, aggregators (honest and
adversarial), the optimistic virtual machine that replays transaction
sequences, batch construction with Merkle roots, fraud proofs, and the
verifier challenge game (paper Sections II-A, IV, V-A).
"""

from .transaction import NFTTransaction, TxKind
from .state import L2State, StepResult, ExecutionMode
from .ovm import OVM, ReplayTrace
from .replay_engine import (
    BatchReplayEngine,
    EvalSummary,
    IncrementalOVM,
    PermutationCache,
    ReplayEngineStats,
)
from .mempool import BedrockMempool
from .aggregator import Aggregator, AdversarialAggregator
from .batch import Batch, build_batch
from .fraud_proof import FraudProof, state_root
from .verifier import Verifier, VerificationReport
from .node import RollupNode, RoundReport
from .sequencer import L2Block, Sequencer
from .fee_market import FeeMarket
from .bisection import (
    BisectionGame,
    BisectionResult,
    CorruptExecutor,
    ExecutionCommitment,
    honest_commitment,
)

__all__ = [
    "NFTTransaction",
    "TxKind",
    "L2State",
    "StepResult",
    "ExecutionMode",
    "OVM",
    "ReplayTrace",
    "EvalSummary",
    "IncrementalOVM",
    "BatchReplayEngine",
    "PermutationCache",
    "ReplayEngineStats",
    "BedrockMempool",
    "Aggregator",
    "AdversarialAggregator",
    "Batch",
    "build_batch",
    "FraudProof",
    "state_root",
    "Verifier",
    "VerificationReport",
    "RollupNode",
    "RoundReport",
    "L2Block",
    "Sequencer",
    "FeeMarket",
    "BisectionGame",
    "BisectionResult",
    "CorruptExecutor",
    "ExecutionCommitment",
    "honest_commitment",
]
