"""Interactive fraud-proof bisection (the dispute game, refined).

The basic challenge of :mod:`repro.rollup.fraud_proof` re-executes a
whole batch.  Production optimistic rollups (Arbitrum, Optimism's
cannon) instead play an *interactive bisection game*: the claimant
commits to intermediate state roots, the challenger repeatedly picks the
half whose endpoint roots disagree, and after ``log2(N)`` rounds the
dispute narrows to a single transaction that the L1 contract re-executes
cheaply.  This module implements that game over the OVM:

* :class:`ExecutionCommitment` — the claimant's (possibly fraudulent)
  per-step state roots;
* :class:`BisectionGame` — drives the narrowing and the final
  single-step adjudication;
* :func:`honest_commitment` / :class:`CorruptExecutor` — honest and
  fault-injected claimants for testing and demonstration.

The game proves the same property the paper relies on: a PAROLE-reordered
batch yields an honest commitment for its (reordered) transaction list,
so bisection finds no divergent step — ordering policy remains outside
what any fraud proof can see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ChallengeError
from .fraud_proof import state_root
from .ovm import OVM
from .state import L2State
from .transaction import NFTTransaction


@dataclass(frozen=True)
class ExecutionCommitment:
    """A claimant's step-by-step commitment for one batch.

    ``roots[k]`` is the claimed state root *after* executing the first
    ``k`` transactions; ``roots[0]`` is the pre-state root and
    ``roots[N]`` the claimed post-state root.
    """

    transactions: Tuple[NFTTransaction, ...]
    roots: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.roots) != len(self.transactions) + 1:
            raise ChallengeError(
                f"commitment needs {len(self.transactions) + 1} roots, "
                f"got {len(self.roots)}"
            )

    @property
    def pre_root(self) -> str:
        """Root before any transaction."""
        return self.roots[0]

    @property
    def post_root(self) -> str:
        """Claimed root after the full batch."""
        return self.roots[-1]


def honest_commitment(
    pre_state: L2State,
    transactions: Sequence[NFTTransaction],
    ovm: Optional[OVM] = None,
) -> ExecutionCommitment:
    """Execute honestly and commit to every intermediate root."""
    machine = ovm or OVM()
    working = pre_state.copy()
    if machine.mode is not None:
        working.mode = machine.mode
    roots: List[str] = [state_root(working)]
    for tx in transactions:
        working.apply(tx)
        roots.append(state_root(working))
    return ExecutionCommitment(
        transactions=tuple(transactions), roots=tuple(roots)
    )


class CorruptExecutor:
    """A claimant that lies about the state from ``fault_step`` onward.

    Models an aggregator that mis-executes one transaction (e.g. skips a
    payment) and then carries the corrupted state forward — the scenario
    bisection exists to catch.
    """

    def __init__(self, fault_step: int, bonus_eth: float = 1.0) -> None:
        self.fault_step = fault_step
        self.bonus_eth = bonus_eth

    def commitment(
        self,
        pre_state: L2State,
        transactions: Sequence[NFTTransaction],
    ) -> ExecutionCommitment:
        """Produce a commitment with a hidden mis-execution."""
        if not 0 <= self.fault_step < len(transactions):
            raise ChallengeError(
                f"fault step {self.fault_step} outside the batch"
            )
        working = pre_state.copy()
        roots: List[str] = [state_root(working)]
        for index, tx in enumerate(transactions):
            working.apply(tx)
            if index == self.fault_step:
                # The lie: quietly credit the sender a bonus.
                working.balances[tx.sender] = (
                    working.balance(tx.sender) + self.bonus_eth
                )
            roots.append(state_root(working))
        return ExecutionCommitment(
            transactions=tuple(transactions), roots=tuple(roots)
        )


@dataclass
class BisectionResult:
    """Outcome of one dispute game."""

    fraud_found: bool
    divergent_step: Optional[int]
    rounds_played: int
    claimed_root_at_step: Optional[str] = None
    recomputed_root_at_step: Optional[str] = None


class BisectionGame:
    """The challenger's side of the interactive dispute.

    The challenger holds the true pre-state and re-executes locally; the
    claimant's commitment supplies the claimed roots.  Each round halves
    the disputed range; the final round adjudicates one transaction.
    """

    def __init__(self, pre_state: L2State, ovm: Optional[OVM] = None) -> None:
        self.pre_state = pre_state
        self.ovm = ovm or OVM()

    def _recomputed_roots(
        self, transactions: Sequence[NFTTransaction]
    ) -> List[str]:
        honest = honest_commitment(self.pre_state, transactions, self.ovm)
        return list(honest.roots)

    def play(self, commitment: ExecutionCommitment) -> BisectionResult:
        """Run the full game against a commitment.

        Returns immediately (no fraud) when the claimed post-root matches
        honest re-execution; otherwise narrows to the first step whose
        claimed post-step root diverges and reports it.
        """
        truth = self._recomputed_roots(commitment.transactions)
        if commitment.pre_root != truth[0]:
            # The claimant cannot even agree on the pre-state.
            return BisectionResult(
                fraud_found=True,
                divergent_step=0,
                rounds_played=0,
                claimed_root_at_step=commitment.pre_root,
                recomputed_root_at_step=truth[0],
            )
        if commitment.post_root == truth[-1]:
            return BisectionResult(
                fraud_found=False, divergent_step=None, rounds_played=0
            )

        low, high = 0, len(commitment.transactions)
        rounds = 0
        # Invariant: roots agree at `low`, disagree at `high`.
        while high - low > 1:
            rounds += 1
            mid = (low + high) // 2
            if commitment.roots[mid] == truth[mid]:
                low = mid
            else:
                high = mid
        return BisectionResult(
            fraud_found=True,
            divergent_step=high - 1,
            rounds_played=rounds,
            claimed_root_at_step=commitment.roots[high],
            recomputed_root_at_step=truth[high],
        )

    def adjudicate_step(
        self,
        commitment: ExecutionCommitment,
        step: int,
    ) -> bool:
        """One-step re-execution: is the claimed transition at ``step``
        correct given the *agreed* state before it?

        Mirrors the L1 contract's final cheap check: replay only
        ``transactions[step]`` from the last agreed root.  Returns True
        when the claimant's root is honest.
        """
        if not 0 <= step < len(commitment.transactions):
            raise ChallengeError(f"step {step} outside the batch")
        truth = self._recomputed_roots(commitment.transactions[: step + 1])
        return commitment.roots[step + 1] == truth[step + 1]
