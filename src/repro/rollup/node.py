"""The end-to-end rollup node: L1 + mempool + aggregators + verifiers.

:class:`RollupNode` wires every substrate together and drives the full
workflow of Figure 1 / Figure 3: users submit through the ORSC into
Bedrock's private mempool; aggregators (some adversarial) collect and
execute; batches are committed on L1 with fraud proofs; verifiers
re-execute and challenge; unchallenged batches finalize after the
challenge window.

The node also carries the recovery semantics a production deployment
needs (see ``docs/faults.md``):

* a round never silently loses transactions — when execution or
  commitment fails mid-round, the collected transactions are re-injected
  into the mempool and the failure is recorded in the round report;
* batch commitment gets bounded retry with exponential backoff expressed
  in simulation time units;
* a batch whose fraud-proof challenge is upheld is rolled back: the L2
  state reverts to the batch's pre-state and its transactions return to
  the mempool;
* crashed aggregators/verifiers are skipped, so rounds degrade
  gracefully while part of the operator set is down.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

logger = logging.getLogger(__name__)

from ..chain import L1Chain, OptimisticRollupContract
from ..chain.orsc import ChallengeOutcome
from ..config import RollupConfig, eth_to_wei
from ..errors import RollupError
from ..telemetry import get_metrics
from .aggregator import AggregationResult, Aggregator
from .batch import Batch
from .fraud_proof import state_root
from .mempool import BedrockMempool
from .state import L2State
from .transaction import NFTTransaction
from .verifier import Verifier


class CommitFailure(RollupError):
    """A batch commitment attempt failed (injected or real)."""


@dataclass(frozen=True)
class RoundFailure:
    """One recovered mid-round failure: what broke and what was requeued."""

    aggregator: str
    stage: str  # "execute" or "commit"
    error: str
    attempts: int
    requeued: int
    backoff: float = 0.0


@dataclass(frozen=True)
class CommitRetry:
    """A commitment that succeeded only after retrying."""

    aggregator: str
    batch_id: int
    attempts: int
    backoff: float


@dataclass
class RoundReport:
    """Everything that happened in one rollup round."""

    results: List[AggregationResult] = field(default_factory=list)
    challenges: List[Tuple[str, int, str]] = field(default_factory=list)
    finalized_batch_ids: List[int] = field(default_factory=list)
    failures: List[RoundFailure] = field(default_factory=list)
    commit_retries: List[CommitRetry] = field(default_factory=list)
    reverted_batch_ids: List[int] = field(default_factory=list)
    skipped_aggregators: List[str] = field(default_factory=list)
    #: The round ended early because the mempool was stalled — pending
    #: transactions were *not* drained, as opposed to an empty pool.
    stalled: bool = False

    @property
    def batches(self) -> List[Batch]:
        """Batches committed this round, in aggregator order."""
        return [result.batch for result in self.results]

    @property
    def attacked(self) -> bool:
        """Whether any aggregator reordered its collection."""
        return any(result.reordered for result in self.results)

    @property
    def requeued_count(self) -> int:
        """Transactions returned to the mempool by failure recovery."""
        return sum(failure.requeued for failure in self.failures)


class RollupNode:
    """A complete in-process optimistic rollup deployment."""

    def __init__(
        self,
        l2_state: L2State,
        config: Optional[RollupConfig] = None,
        mempool: Optional[BedrockMempool] = None,
    ) -> None:
        self.config = config or RollupConfig()
        self.chain = L1Chain()
        self.contract = OptimisticRollupContract(self.chain, self.config)
        #: Any object honouring the BedrockMempool interface works here —
        #: the streaming pipeline injects a ShardedMempool.
        self.mempool = mempool if mempool is not None else BedrockMempool()
        self.l2_state = l2_state
        self.aggregators: List[Aggregator] = []
        self.verifiers: List[Verifier] = []
        self._batch_prestates: Dict[int, L2State] = {}
        #: Injected commit-failure budget: key is an aggregator address or
        #: None for "any aggregator"; value is how many upcoming commit
        #: attempts should fail.
        self._commit_faults: Dict[Optional[str], int] = {}

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #

    def fund_and_deposit(self, user: str, amount_eth: float) -> None:
        """Give a user L1 ETH and bridge it to L2 (Figure 1's first step)."""
        wei = eth_to_wei(amount_eth)
        self.chain.accounts.get_or_create(user)
        self.chain.accounts.credit(user, wei)
        self.contract.deposit(user, wei)
        self.l2_state.balances[user] = self.l2_state.balance(user) + amount_eth

    def add_aggregator(self, aggregator: Aggregator) -> None:
        """Register an aggregator, funding and posting its bond."""
        self.chain.accounts.get_or_create(aggregator.address)
        self.chain.accounts.credit(
            aggregator.address, self.config.aggregator_bond_wei
        )
        self.contract.register_aggregator(aggregator.address)
        self.aggregators.append(aggregator)

    def add_verifier(self, verifier: Verifier) -> None:
        """Register a verifier, funding and posting its bond."""
        self.chain.accounts.get_or_create(verifier.address)
        self.chain.accounts.credit(verifier.address, self.config.verifier_bond_wei)
        self.contract.register_verifier(verifier.address)
        self.verifiers.append(verifier)

    def submit(self, tx: NFTTransaction) -> str:
        """User-facing transaction submission into Bedrock's mempool."""
        return self.mempool.submit(tx)

    def aggregator_by_address(self, address: str) -> Aggregator:
        """Look up a registered aggregator by account."""
        for aggregator in self.aggregators:
            if aggregator.address == address:
                return aggregator
        raise RollupError(f"unknown aggregator {address!r}")

    def verifier_by_address(self, address: str) -> Verifier:
        """Look up a registered verifier by account."""
        for verifier in self.verifiers:
            if verifier.address == address:
                return verifier
        raise RollupError(f"unknown verifier {address!r}")

    # ------------------------------------------------------------------ #
    # Fault injection hooks
    # ------------------------------------------------------------------ #

    def inject_commit_failures(
        self, count: int = 1, aggregator: Optional[str] = None
    ) -> None:
        """Make the next ``count`` commit attempts fail.

        With ``aggregator`` set only that operator's attempts fail;
        otherwise any aggregator's next attempts are hit.  Consumed one
        attempt at a time, so an injected count below the retry budget is
        recovered transparently by the commit retry loop.
        """
        if count <= 0:
            raise RollupError("injected failure count must be positive")
        self._commit_faults[aggregator] = (
            self._commit_faults.get(aggregator, 0) + count
        )

    def _consume_commit_fault(self, aggregator: str) -> bool:
        for key in (aggregator, None):
            remaining = self._commit_faults.get(key, 0)
            if remaining > 0:
                self._commit_faults[key] = remaining - 1
                return True
        return False

    # ------------------------------------------------------------------ #
    # Round execution
    # ------------------------------------------------------------------ #

    def run_round(self, collect_per_aggregator: Optional[int] = None) -> RoundReport:
        """One full rollup round across every registered aggregator.

        Each live aggregator collects its fee-priority share from the
        mempool, executes (adversarial ones reorder first), commits the
        batch on L1, and the verifiers inspect it.  The L2 state advances
        batch by batch in commitment order.  Crashed aggregators are
        skipped; mid-round failures requeue their transactions (see the
        module docstring).
        """
        if not self.aggregators:
            raise RollupError("no aggregators registered")
        count = collect_per_aggregator or self.config.aggregator_mempool_size
        report = RoundReport()
        for aggregator in self.aggregators:
            if not aggregator.alive:
                report.skipped_aggregators.append(aggregator.address)
                continue
            if len(self.mempool) == 0:
                break
            if self.mempool.stalled:
                report.stalled = True
                break
            collected = self.mempool.collect(min(count, len(self.mempool)))
            self._process_and_commit(aggregator, collected, report)
        self.chain.seal_block()
        return report

    def _process_and_commit(
        self,
        aggregator: Aggregator,
        collected: Tuple[NFTTransaction, ...],
        report: RoundReport,
    ) -> bool:
        """Execute + commit one collection with full failure recovery.

        Returns True when a batch landed on L1.  On failure the collected
        transactions go back to the mempool and the L2 state is left
        exactly where it was — no half-advanced rounds.
        """
        pre_state = self.l2_state.copy()
        try:
            result = aggregator.process(pre_state, collected)
        except Exception as exc:  # recovery path: nothing may be lost
            self.mempool.requeue(collected)
            failure = RoundFailure(
                aggregator=aggregator.address,
                stage="execute",
                error=f"{type(exc).__name__}: {exc}",
                attempts=1,
                requeued=len(collected),
            )
            report.failures.append(failure)
            get_metrics().counter("node.round_failures", stage="execute").inc()
            logger.warning(
                "aggregator %s failed during execution (%s); %d txs requeued",
                aggregator.address, exc, len(collected),
            )
            return False

        commitment = None
        attempts = 0
        backoff_total = 0.0
        next_backoff = self.config.commit_backoff_base
        last_error = ""
        while commitment is None and attempts < self.config.commit_max_retries:
            attempts += 1
            try:
                if self._consume_commit_fault(aggregator.address):
                    raise CommitFailure(
                        f"injected commit failure for {aggregator.address}"
                    )
                commitment = self.contract.commit_batch(
                    aggregator.address,
                    result.batch.tx_root,
                    result.batch.post_state_root,
                )
            except Exception as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                backoff_total += next_backoff
                next_backoff *= 2
        if commitment is None:
            self.mempool.requeue(collected)
            failure = RoundFailure(
                aggregator=aggregator.address,
                stage="commit",
                error=last_error,
                attempts=attempts,
                requeued=len(collected),
                backoff=backoff_total,
            )
            report.failures.append(failure)
            get_metrics().counter("node.round_failures", stage="commit").inc()
            logger.warning(
                "aggregator %s exhausted %d commit attempts (%s); "
                "%d txs requeued",
                aggregator.address, attempts, last_error, len(collected),
            )
            return False
        if attempts > 1:
            report.commit_retries.append(
                CommitRetry(
                    aggregator=aggregator.address,
                    batch_id=commitment.batch_id,
                    attempts=attempts,
                    backoff=backoff_total,
                )
            )
            get_metrics().counter("node.commit_retries").inc(attempts - 1)

        self._batch_prestates[commitment.batch_id] = pre_state
        self.l2_state = result.trace.final_state
        report.results.append(result)
        logger.debug(
            "batch %d committed by %s: %d txs%s",
            commitment.batch_id, aggregator.address, len(result.batch),
            " (reordered)" if result.reordered else "",
        )
        self._inspect(commitment.batch_id, result.batch, pre_state, report)
        return True

    def _inspect(
        self,
        batch_id: int,
        batch: Batch,
        pre_state: L2State,
        report: RoundReport,
    ) -> None:
        for verifier in self.verifiers:
            if not verifier.alive:
                continue
            inspection = verifier.inspect(batch, pre_state)
            if inspection.should_challenge:
                outcome = self.contract.challenge(
                    verifier.address, batch_id, inspection.recomputed_post_root
                )
                logger.warning(
                    "verifier %s challenged batch %d: %s",
                    verifier.address, batch_id, outcome.value,
                )
                report.challenges.append(
                    (verifier.address, batch_id, outcome.value)
                )
                if outcome is ChallengeOutcome.UPHELD:
                    self._revert_batch(batch_id, batch, pre_state, report)
                    break

    def _revert_batch(
        self,
        batch_id: int,
        batch: Batch,
        pre_state: L2State,
        report: RoundReport,
    ) -> None:
        """Roll back a successfully-challenged batch.

        The L2 state returns to the batch's pre-state and its transactions
        re-enter the mempool, so a fraudulent commitment costs the
        aggregator its bond but never loses user transactions.
        """
        self.l2_state = pre_state.copy()
        self.mempool.requeue(batch.transactions)
        report.reverted_batch_ids.append(batch_id)
        get_metrics().counter("node.batches_reverted").inc()
        logger.warning(
            "batch %d reverted; state rolled back and %d txs requeued",
            batch_id, len(batch.transactions),
        )

    def finalize_ready_batches(self) -> List[int]:
        """Finalize every pending batch whose challenge window has closed."""
        finalized = []
        for commitment in self.contract.batches:
            if (
                commitment.status.value == "pending"
                and not self.contract.in_challenge_window(commitment.batch_id)
            ):
                self.contract.finalize(commitment.batch_id)
                finalized.append(commitment.batch_id)
        return finalized

    def advance_challenge_window(self) -> None:
        """Seal enough empty L1 blocks to close all open windows."""
        self.chain.seal_blocks(self.config.challenge_period_blocks)

    def current_state_root(self) -> str:
        """Canonical root of the current L2 state."""
        return state_root(self.l2_state)
