"""The end-to-end rollup node: L1 + mempool + aggregators + verifiers.

:class:`RollupNode` wires every substrate together and drives the full
workflow of Figure 1 / Figure 3: users submit through the ORSC into
Bedrock's private mempool; aggregators (some adversarial) collect and
execute; batches are committed on L1 with fraud proofs; verifiers
re-execute and challenge; unchallenged batches finalize after the
challenge window.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

logger = logging.getLogger(__name__)

from ..chain import L1Chain, OptimisticRollupContract
from ..config import RollupConfig, eth_to_wei
from ..errors import RollupError
from .aggregator import AggregationResult, Aggregator
from .batch import Batch
from .fraud_proof import state_root
from .mempool import BedrockMempool
from .state import L2State
from .transaction import NFTTransaction
from .verifier import Verifier


@dataclass
class RoundReport:
    """Everything that happened in one rollup round."""

    results: List[AggregationResult] = field(default_factory=list)
    challenges: List[Tuple[str, int, str]] = field(default_factory=list)
    finalized_batch_ids: List[int] = field(default_factory=list)

    @property
    def batches(self) -> List[Batch]:
        """Batches committed this round, in aggregator order."""
        return [result.batch for result in self.results]

    @property
    def attacked(self) -> bool:
        """Whether any aggregator reordered its collection."""
        return any(result.reordered for result in self.results)


class RollupNode:
    """A complete in-process optimistic rollup deployment."""

    def __init__(
        self,
        l2_state: L2State,
        config: Optional[RollupConfig] = None,
    ) -> None:
        self.config = config or RollupConfig()
        self.chain = L1Chain()
        self.contract = OptimisticRollupContract(self.chain, self.config)
        self.mempool = BedrockMempool()
        self.l2_state = l2_state
        self.aggregators: List[Aggregator] = []
        self.verifiers: List[Verifier] = []
        self._batch_prestates: Dict[int, L2State] = {}

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #

    def fund_and_deposit(self, user: str, amount_eth: float) -> None:
        """Give a user L1 ETH and bridge it to L2 (Figure 1's first step)."""
        wei = eth_to_wei(amount_eth)
        self.chain.accounts.get_or_create(user)
        self.chain.accounts.credit(user, wei)
        self.contract.deposit(user, wei)
        self.l2_state.balances[user] = self.l2_state.balance(user) + amount_eth

    def add_aggregator(self, aggregator: Aggregator) -> None:
        """Register an aggregator, funding and posting its bond."""
        self.chain.accounts.get_or_create(aggregator.address)
        self.chain.accounts.credit(
            aggregator.address, self.config.aggregator_bond_wei
        )
        self.contract.register_aggregator(aggregator.address)
        self.aggregators.append(aggregator)

    def add_verifier(self, verifier: Verifier) -> None:
        """Register a verifier, funding and posting its bond."""
        self.chain.accounts.get_or_create(verifier.address)
        self.chain.accounts.credit(verifier.address, self.config.verifier_bond_wei)
        self.contract.register_verifier(verifier.address)
        self.verifiers.append(verifier)

    def submit(self, tx: NFTTransaction) -> str:
        """User-facing transaction submission into Bedrock's mempool."""
        return self.mempool.submit(tx)

    # ------------------------------------------------------------------ #
    # Round execution
    # ------------------------------------------------------------------ #

    def run_round(self, collect_per_aggregator: Optional[int] = None) -> RoundReport:
        """One full rollup round across every registered aggregator.

        Each aggregator collects its fee-priority share from the mempool,
        executes (adversarial ones reorder first), commits the batch on
        L1, and the verifiers inspect it.  The L2 state advances batch by
        batch in commitment order.
        """
        if not self.aggregators:
            raise RollupError("no aggregators registered")
        count = collect_per_aggregator or self.config.aggregator_mempool_size
        report = RoundReport()
        for aggregator in self.aggregators:
            if len(self.mempool) == 0:
                break
            collected = self.mempool.collect(min(count, len(self.mempool)))
            pre_state = self.l2_state.copy()
            result = aggregator.process(pre_state, collected)
            commitment = self.contract.commit_batch(
                aggregator.address,
                result.batch.tx_root,
                result.batch.post_state_root,
            )
            self._batch_prestates[commitment.batch_id] = pre_state
            self.l2_state = result.trace.final_state
            report.results.append(result)
            logger.debug(
                "batch %d committed by %s: %d txs%s",
                commitment.batch_id, aggregator.address, len(result.batch),
                " (reordered)" if result.reordered else "",
            )
            self._inspect(commitment.batch_id, result.batch, pre_state, report)
        self.chain.seal_block()
        return report

    def _inspect(
        self,
        batch_id: int,
        batch: Batch,
        pre_state: L2State,
        report: RoundReport,
    ) -> None:
        for verifier in self.verifiers:
            inspection = verifier.inspect(batch, pre_state)
            if inspection.should_challenge:
                outcome = self.contract.challenge(
                    verifier.address, batch_id, inspection.recomputed_post_root
                )
                logger.warning(
                    "verifier %s challenged batch %d: %s",
                    verifier.address, batch_id, outcome.value,
                )
                report.challenges.append(
                    (verifier.address, batch_id, outcome.value)
                )

    def finalize_ready_batches(self) -> List[int]:
        """Finalize every pending batch whose challenge window has closed."""
        finalized = []
        for commitment in self.contract.batches:
            if (
                commitment.status.value == "pending"
                and not self.contract.in_challenge_window(commitment.batch_id)
            ):
                self.contract.finalize(commitment.batch_id)
                finalized.append(commitment.batch_id)
        return finalized

    def advance_challenge_window(self) -> None:
        """Seal enough empty L1 blocks to close all open windows."""
        self.chain.seal_blocks(self.config.challenge_period_blocks)

    def current_state_root(self) -> str:
        """Canonical root of the current L2 state."""
        return state_root(self.l2_state)
