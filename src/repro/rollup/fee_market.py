"""EIP-1559-style fee market for the L2 (Bedrock's fee dynamics).

The paper's transactions carry base and priority fees (Section IV-B);
Bedrock inherits Ethereum's EIP-1559 dynamics: the protocol base fee
rises when blocks run above their gas target and falls when below, by at
most 1/8 per block.  :class:`FeeMarket` implements that controller and a
simple bidder model users can consult to pick a priority fee for a
desired inclusion urgency.

Connected to the sequencer: every produced block's fullness updates the
base fee, so sustained congestion prices out low-urgency traffic — which
also shrinks the adversarial aggregator's reorderable surface (fewer
transactions per slot).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import RollupError

#: EIP-1559's maximum per-block base-fee change.
BASE_FEE_MAX_CHANGE = 1.0 / 8.0


@dataclass
class FeeMarket:
    """Per-block base-fee controller plus a priority-fee suggester."""

    base_fee: float = 1.0
    target_fullness: float = 0.5
    min_base_fee: float = 0.01
    history: List[Tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.base_fee <= 0:
            raise RollupError("base fee must be positive")
        if not 0.0 < self.target_fullness <= 1.0:
            raise RollupError("target fullness must be in (0, 1]")

    def on_block(self, fullness: float) -> float:
        """Update the base fee from one block's fullness in [0, 1].

        Implements EIP-1559: ``delta = base * (fullness - target) /
        target / 8`` clamped to ±1/8 of the current base fee.
        """
        if not 0.0 <= fullness <= 1.0:
            raise RollupError(f"fullness {fullness} outside [0, 1]")
        pressure = (fullness - self.target_fullness) / self.target_fullness
        delta = self.base_fee * max(
            -BASE_FEE_MAX_CHANGE, min(BASE_FEE_MAX_CHANGE, pressure / 8.0)
        )
        self.base_fee = max(self.min_base_fee, self.base_fee + delta)
        self.history.append((fullness, self.base_fee))
        return self.base_fee

    def suggest_priority_fee(self, urgency: float = 0.5) -> float:
        """Priority fee for an inclusion urgency in [0, 1].

        Scales with the current base fee: urgent users outbid the
        congestion premium, patient users tip a token amount.
        """
        if not 0.0 <= urgency <= 1.0:
            raise RollupError(f"urgency {urgency} outside [0, 1]")
        return self.base_fee * (0.05 + 0.95 * urgency)

    def total_fee(self, urgency: float = 0.5) -> float:
        """Base plus suggested priority fee."""
        return self.base_fee + self.suggest_priority_fee(urgency)

    def simulate(self, fullness_series: List[float]) -> List[float]:
        """Run the controller over a fullness series; returns base fees."""
        return [self.on_block(fullness) for fullness in fullness_series]
