"""The L2 chain state the OVM executes against.

:class:`L2State` tracks, per Table I: user balances ``B_k`` (float ETH,
matching the paper's arithmetic), per-user NFT inventory ``O_k``, the
remaining mintable supply ``S`` and the scarcity price ``P`` (Eq. 10).

Two execution modes reflect the paper's semantics:

* ``STRICT`` — the constraints of Eq. 1, 3 and 5 are enforced at every
  position, including token ownership.  This is how honest aggregators
  and verifiers execute.
* ``BATCH``  — the within-batch netting the case studies use: balance and
  supply constraints still bind position-by-position (they move prices),
  but a seller's inventory may go transiently negative inside the batch
  provided it nets out non-negative by batch end.  This models the
  adversarial aggregator's knowledge that the inventory-providing
  transactions are in the same batch (see Fig. 5(b), where
  ``T_{U19,U6}`` precedes ``M_{U19}``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..config import NFTContractConfig
from ..errors import InvalidTransactionError
from ..tokens import ScarcityPricing, TxValidity
from .transaction import NFTTransaction, TxKind


class ExecutionMode(enum.Enum):
    """Constraint regime the OVM applies (see module docstring)."""

    STRICT = "strict"
    BATCH = "batch"


@dataclass(frozen=True, slots=True)
class StepResult:
    """Outcome of attempting one transaction against the state."""

    executed: bool
    validity: TxValidity
    price_before: float
    price_after: float
    remaining_supply: int


class CountingInventory(Dict[str, int]):
    """Per-user NFT inventory with O(1) aggregate counters.

    Replay scoring reads :attr:`total` (for Eq. 10 pricing) and
    :attr:`negative_count` (for the batch-end consistency check) on every
    step; a plain dict would force an O(users) scan for each.  All
    mutation paths of the dict interface keep both counters exact, so
    external code that pokes ``state.inventory`` directly stays correct.
    """

    __slots__ = ("total", "negative_count")

    def __init__(self, *args, **kwargs) -> None:
        super().__init__()
        self.total = 0
        self.negative_count = 0
        if args or kwargs:
            self.update(*args, **kwargs)

    def _retire(self, value: int) -> None:
        self.total -= value
        if value < 0:
            self.negative_count -= 1

    def __setitem__(self, key: str, value: int) -> None:
        if key in self:
            self._retire(super().__getitem__(key))
        self.total += value
        if value < 0:
            self.negative_count += 1
        super().__setitem__(key, value)

    def __delitem__(self, key: str) -> None:
        value = super().__getitem__(key)
        super().__delitem__(key)
        self._retire(value)

    def update(self, *args, **kwargs) -> None:
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    def pop(self, key, *default):
        if key in self:
            value = super().__getitem__(key)
            del self[key]
            return value
        if default:
            return default[0]
        raise KeyError(key)

    def popitem(self):
        key, value = super().popitem()
        self._retire(value)
        return key, value

    def clear(self) -> None:
        super().clear()
        self.total = 0
        self.negative_count = 0

    def setdefault(self, key, default=0):
        if key not in self:
            self[key] = default
        return super().__getitem__(key)

    def copy(self) -> "CountingInventory":
        return CountingInventory(dict.copy(self))


class L2State:
    """Mutable L2 chain state: balances, inventories, supply and price."""

    #: Account that accrues execution fees when fee charging is enabled.
    FEE_POOL = "__fee_pool__"

    def __init__(
        self,
        nft_config: Optional[NFTContractConfig] = None,
        balances: Optional[Mapping[str, float]] = None,
        inventory: Optional[Mapping[str, int]] = None,
        mode: ExecutionMode = ExecutionMode.BATCH,
        charge_fees: bool = False,
    ) -> None:
        self.nft_config = nft_config or NFTContractConfig()
        self.pricing = ScarcityPricing(
            max_supply=self.nft_config.max_supply,
            initial_price_eth=self.nft_config.initial_price_eth,
        )
        self.balances: Dict[str, float] = dict(balances or {})
        self.inventory: CountingInventory = CountingInventory(inventory or {})
        if self.inventory.total > self.nft_config.max_supply:
            raise InvalidTransactionError(
                f"initial inventory {self.inventory.total} exceeds max supply "
                f"{self.nft_config.max_supply}"
            )
        if self.inventory.negative_count:
            raise InvalidTransactionError("initial inventory cannot be negative")
        #: ``(minted_total, price)`` memo for :attr:`unit_price`; valid only
        #: while the inventory total is unchanged.
        self._price_memo: Tuple[Optional[int], float] = (None, 0.0)
        self.mode = mode
        #: When enabled, ``apply`` debits each executed transaction's
        #: total fee from its sender into :attr:`FEE_POOL`.  The paper's
        #: balance dynamics (and the case studies) ignore fees, so this
        #: defaults off; the timed deployment and economics tests use it.
        self.charge_fees = charge_fees

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @property
    def minted_count(self) -> int:
        """Live tokens across all users (may count net positions in BATCH)."""
        return self.inventory.total

    @property
    def remaining_supply(self) -> int:
        """``S^t`` — tokens still mintable."""
        return self.nft_config.max_supply - self.inventory.total

    @property
    def unit_price(self) -> float:
        """``P^t`` — Eq. 10 price at the current supply.

        Memoised on the inventory total, so repeated reads between supply
        changes (every constraint check and wealth sample does one) are
        O(1) with no division.
        """
        total = self.inventory.total
        memo_total, memo_price = self._price_memo
        if memo_total != total:
            memo_price = self.pricing.price(
                self.nft_config.max_supply - total
            )
            self._price_memo = (total, memo_price)
        return memo_price

    def balance(self, user: str) -> float:
        """L2 token balance ``B_k`` in ETH."""
        return self.balances.get(user, 0.0)

    def holdings(self, user: str) -> int:
        """Number of NFTs held by ``user``."""
        return self.inventory.get(user, 0)

    def wealth(self, user: str) -> float:
        """Total balance: L2 tokens plus NFT holdings at the unit price.

        This is the quantity the case-study tables label
        "L2 balance + (PTs owned) * Price".
        """
        return self.balance(user) + self.holdings(user) * self.unit_price

    def copy(self) -> "L2State":
        """Independent deep copy for speculative execution.

        Copies fields directly instead of re-running the constructor:
        construction validates inventory, but a mid-batch state may hold
        the transient negative entries BATCH mode permits, and those must
        survive a snapshot.  The frozen config/pricing objects (and the
        pricing table) are shared, not duplicated.
        """
        cls = type(self)
        clone = cls.__new__(cls)
        clone.nft_config = self.nft_config
        clone.pricing = self.pricing
        clone.balances = dict(self.balances)
        clone.inventory = self.inventory.copy()
        clone._price_memo = self._price_memo
        clone.mode = self.mode
        clone.charge_fees = self.charge_fees
        return clone

    def fee_pool(self) -> float:
        """Fees accumulated so far (zero unless ``charge_fees``)."""
        return self.balances.get(self.FEE_POOL, 0.0)

    def canonical_items(self) -> Tuple[Tuple, ...]:
        """Deterministic serialisation for state-root hashing."""
        return (
            tuple(sorted((u, round(b, 12)) for u, b in self.balances.items())),
            tuple(sorted(self.inventory.items())),
            self.remaining_supply,
        )

    def inventory_is_consistent(self) -> bool:
        """Whether no user holds a negative net inventory (batch-end check)."""
        return self.inventory.negative_count == 0

    # ------------------------------------------------------------------ #
    # Constraint checks
    # ------------------------------------------------------------------ #

    def check(self, tx: NFTTransaction) -> TxValidity:
        """Classify ``tx`` against Eq. 1/3/5 under the current mode."""
        if tx.kind is TxKind.MINT:
            if self.remaining_supply < 1:
                return TxValidity.SUPPLY_EXHAUSTED
            if self.balance(tx.sender) < self.unit_price:
                return TxValidity.INSUFFICIENT_BALANCE
            return TxValidity.VALID
        if tx.kind is TxKind.TRANSFER:
            assert tx.recipient is not None
            if self.mode is ExecutionMode.STRICT and self.holdings(tx.sender) < 1:
                return TxValidity.NOT_OWNER
            if self.balance(tx.recipient) < self.unit_price:
                return TxValidity.INSUFFICIENT_BALANCE
            return TxValidity.VALID
        # BURN
        if self.mode is ExecutionMode.STRICT and self.holdings(tx.sender) < 1:
            return TxValidity.NOT_OWNER
        return TxValidity.VALID

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def apply(self, tx: NFTTransaction) -> StepResult:
        """Attempt to execute ``tx``; invalid transactions are skipped.

        Skipping (rather than raising) mirrors Section V-B: a transaction
        whose constraints are unsatisfied at its position simply fails to
        execute, and the assessment records that fact.
        """
        validity = self.check(tx)
        price_before = self.unit_price
        if validity is not TxValidity.VALID:
            return StepResult(
                executed=False,
                validity=validity,
                price_before=price_before,
                price_after=price_before,
                remaining_supply=self.remaining_supply,
            )
        if tx.kind is TxKind.MINT:
            # Eq. 2: debit at P^{t-1}, grant ownership, shrink supply.
            self.balances[tx.sender] = self.balance(tx.sender) - price_before
            self.inventory[tx.sender] = self.holdings(tx.sender) + 1
        elif tx.kind is TxKind.TRANSFER:
            # Eq. 4: buyer pays seller at P^{t-1}; supply unchanged.
            assert tx.recipient is not None
            self.balances[tx.recipient] = self.balance(tx.recipient) - price_before
            self.balances[tx.sender] = self.balance(tx.sender) + price_before
            self.inventory[tx.sender] = self.holdings(tx.sender) - 1
            self.inventory[tx.recipient] = self.holdings(tx.recipient) + 1
        else:
            # Eq. 6: destroy a unit, replenishing mintable supply.
            self.inventory[tx.sender] = self.holdings(tx.sender) - 1
        if self.charge_fees:
            self.balances[tx.sender] = self.balance(tx.sender) - tx.total_fee
            self.balances[self.FEE_POOL] = self.fee_pool() + tx.total_fee
        return StepResult(
            executed=True,
            validity=TxValidity.VALID,
            price_before=price_before,
            price_after=self.unit_price,
            remaining_supply=self.remaining_supply,
        )
