"""The L2 chain state the OVM executes against.

:class:`L2State` tracks, per Table I: user balances ``B_k`` (float ETH,
matching the paper's arithmetic), per-user NFT inventory ``O_k``, the
remaining mintable supply ``S`` and the scarcity price ``P`` (Eq. 10).

Two execution modes reflect the paper's semantics:

* ``STRICT`` — the constraints of Eq. 1, 3 and 5 are enforced at every
  position, including token ownership.  This is how honest aggregators
  and verifiers execute.
* ``BATCH``  — the within-batch netting the case studies use: balance and
  supply constraints still bind position-by-position (they move prices),
  but a seller's inventory may go transiently negative inside the batch
  provided it nets out non-negative by batch end.  This models the
  adversarial aggregator's knowledge that the inventory-providing
  transactions are in the same batch (see Fig. 5(b), where
  ``T_{U19,U6}`` precedes ``M_{U19}``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..config import NFTContractConfig
from ..errors import InvalidTransactionError
from ..tokens import ScarcityPricing, TxValidity
from .transaction import NFTTransaction, TxKind


class ExecutionMode(enum.Enum):
    """Constraint regime the OVM applies (see module docstring)."""

    STRICT = "strict"
    BATCH = "batch"


@dataclass(frozen=True)
class StepResult:
    """Outcome of attempting one transaction against the state."""

    executed: bool
    validity: TxValidity
    price_before: float
    price_after: float
    remaining_supply: int


class L2State:
    """Mutable L2 chain state: balances, inventories, supply and price."""

    #: Account that accrues execution fees when fee charging is enabled.
    FEE_POOL = "__fee_pool__"

    def __init__(
        self,
        nft_config: Optional[NFTContractConfig] = None,
        balances: Optional[Mapping[str, float]] = None,
        inventory: Optional[Mapping[str, int]] = None,
        mode: ExecutionMode = ExecutionMode.BATCH,
        charge_fees: bool = False,
    ) -> None:
        self.nft_config = nft_config or NFTContractConfig()
        self.pricing = ScarcityPricing(
            max_supply=self.nft_config.max_supply,
            initial_price_eth=self.nft_config.initial_price_eth,
        )
        self.balances: Dict[str, float] = dict(balances or {})
        self.inventory: Dict[str, int] = dict(inventory or {})
        minted = sum(self.inventory.values())
        if minted > self.nft_config.max_supply:
            raise InvalidTransactionError(
                f"initial inventory {minted} exceeds max supply "
                f"{self.nft_config.max_supply}"
            )
        if any(count < 0 for count in self.inventory.values()):
            raise InvalidTransactionError("initial inventory cannot be negative")
        self.mode = mode
        #: When enabled, ``apply`` debits each executed transaction's
        #: total fee from its sender into :attr:`FEE_POOL`.  The paper's
        #: balance dynamics (and the case studies) ignore fees, so this
        #: defaults off; the timed deployment and economics tests use it.
        self.charge_fees = charge_fees

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @property
    def minted_count(self) -> int:
        """Live tokens across all users (may count net positions in BATCH)."""
        return sum(self.inventory.values())

    @property
    def remaining_supply(self) -> int:
        """``S^t`` — tokens still mintable."""
        return self.nft_config.max_supply - self.minted_count

    @property
    def unit_price(self) -> float:
        """``P^t`` — Eq. 10 price at the current supply."""
        return self.pricing.price(self.remaining_supply)

    def balance(self, user: str) -> float:
        """L2 token balance ``B_k`` in ETH."""
        return self.balances.get(user, 0.0)

    def holdings(self, user: str) -> int:
        """Number of NFTs held by ``user``."""
        return self.inventory.get(user, 0)

    def wealth(self, user: str) -> float:
        """Total balance: L2 tokens plus NFT holdings at the unit price.

        This is the quantity the case-study tables label
        "L2 balance + (PTs owned) * Price".
        """
        return self.balance(user) + self.holdings(user) * self.unit_price

    def copy(self) -> "L2State":
        """Independent deep copy for speculative execution."""
        return L2State(
            nft_config=self.nft_config,
            balances=dict(self.balances),
            inventory=dict(self.inventory),
            mode=self.mode,
            charge_fees=self.charge_fees,
        )

    def fee_pool(self) -> float:
        """Fees accumulated so far (zero unless ``charge_fees``)."""
        return self.balances.get(self.FEE_POOL, 0.0)

    def canonical_items(self) -> Tuple[Tuple, ...]:
        """Deterministic serialisation for state-root hashing."""
        return (
            tuple(sorted((u, round(b, 12)) for u, b in self.balances.items())),
            tuple(sorted(self.inventory.items())),
            self.remaining_supply,
        )

    def inventory_is_consistent(self) -> bool:
        """Whether no user holds a negative net inventory (batch-end check)."""
        return all(count >= 0 for count in self.inventory.values())

    # ------------------------------------------------------------------ #
    # Constraint checks
    # ------------------------------------------------------------------ #

    def check(self, tx: NFTTransaction) -> TxValidity:
        """Classify ``tx`` against Eq. 1/3/5 under the current mode."""
        if tx.kind is TxKind.MINT:
            if self.remaining_supply < 1:
                return TxValidity.SUPPLY_EXHAUSTED
            if self.balance(tx.sender) < self.unit_price:
                return TxValidity.INSUFFICIENT_BALANCE
            return TxValidity.VALID
        if tx.kind is TxKind.TRANSFER:
            assert tx.recipient is not None
            if self.mode is ExecutionMode.STRICT and self.holdings(tx.sender) < 1:
                return TxValidity.NOT_OWNER
            if self.balance(tx.recipient) < self.unit_price:
                return TxValidity.INSUFFICIENT_BALANCE
            return TxValidity.VALID
        # BURN
        if self.mode is ExecutionMode.STRICT and self.holdings(tx.sender) < 1:
            return TxValidity.NOT_OWNER
        return TxValidity.VALID

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def apply(self, tx: NFTTransaction) -> StepResult:
        """Attempt to execute ``tx``; invalid transactions are skipped.

        Skipping (rather than raising) mirrors Section V-B: a transaction
        whose constraints are unsatisfied at its position simply fails to
        execute, and the assessment records that fact.
        """
        validity = self.check(tx)
        price_before = self.unit_price
        if validity is not TxValidity.VALID:
            return StepResult(
                executed=False,
                validity=validity,
                price_before=price_before,
                price_after=price_before,
                remaining_supply=self.remaining_supply,
            )
        if tx.kind is TxKind.MINT:
            # Eq. 2: debit at P^{t-1}, grant ownership, shrink supply.
            self.balances[tx.sender] = self.balance(tx.sender) - price_before
            self.inventory[tx.sender] = self.holdings(tx.sender) + 1
        elif tx.kind is TxKind.TRANSFER:
            # Eq. 4: buyer pays seller at P^{t-1}; supply unchanged.
            assert tx.recipient is not None
            self.balances[tx.recipient] = self.balance(tx.recipient) - price_before
            self.balances[tx.sender] = self.balance(tx.sender) + price_before
            self.inventory[tx.sender] = self.holdings(tx.sender) - 1
            self.inventory[tx.recipient] = self.holdings(tx.recipient) + 1
        else:
            # Eq. 6: destroy a unit, replenishing mintable supply.
            self.inventory[tx.sender] = self.holdings(tx.sender) - 1
        if self.charge_fees:
            self.balances[tx.sender] = self.balance(tx.sender) - tx.total_fee
            self.balances[self.FEE_POOL] = self.fee_pool() + tx.total_fee
        return StepResult(
            executed=True,
            validity=TxValidity.VALID,
            price_before=price_before,
            price_after=self.unit_price,
            remaining_supply=self.remaining_supply,
        )
