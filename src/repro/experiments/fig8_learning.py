"""Figure 8: DQN learning curves under different exploration settings.

Moving average (window 9) of per-episode rewards while training on one
collection, for epsilon starting points {0, 0.5, 1} and 1 or 2 IFUs.
Paper observations to reproduce:

* epsilon = 0 (pure exploitation) plateaus at a poor local optimum;
* epsilon = 1 explores widely and reaches the best rewards;
* epsilon = 0.5 learns but more slowly;
* serving 2 IFUs drags the whole reward range down (more penalizable
  exploration needed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


from ..analysis import format_series, moving_average
from ..config import GenTranSeqConfig, WorkloadConfig
from ..core import GenTranSeq
from ..parallel import SerialRunner, Task, TaskRunner
from ..workloads import generate_workload
from .common import QUICK, EffortPreset, mempool_admit

DEFAULT_EPSILONS: Tuple[float, ...] = (0.0, 0.5, 1.0)


@dataclass(frozen=True)
class Fig8Series:
    """One learning curve."""

    epsilon: float
    num_ifus: int
    episode_rewards: Tuple[float, ...]
    moving_avg: Tuple[float, ...]
    best_profit: float = 0.0

    @property
    def final_moving_avg(self) -> float:
        """The last smoothed reward value."""
        return self.moving_avg[-1] if self.moving_avg else 0.0


def _fig8_cell(
    epsilon: float,
    num_ifus: int,
    mempool_size: int,
    preset: EffortPreset,
    window: int,
    epsilon_decay: float,
    *,
    seed: int,
    checkpoint_store=None,
    checkpoint_every: int = 5,
) -> Fig8Series:
    """Train one (epsilon, #IFUs) cell and return its learning curve.

    Regenerating the workload per task costs a few milliseconds but
    makes every cell fully independent — the fabric can train each
    epsilon's agent in its own worker process.

    With ``checkpoint_store`` set, the DQN persists its full training
    state every ``checkpoint_every`` episodes under a key derived from
    the cell parameters, so a killed run resumes mid-training instead
    of restarting the cell from episode 0.  The checkpoint is deleted
    once the cell finishes (the task-level cache takes over from there).
    """
    workload = generate_workload(
        WorkloadConfig(
            mempool_size=mempool_size,
            num_users=max(12, num_ifus + 6),
            num_ifus=num_ifus,
            min_ifu_involvement=max(2, mempool_size // 8),
            seed=seed,
        )
    )
    # Fee-priority admission: behavior-neutral (fees are stamped in
    # generated order) but records the run's mempool telemetry.
    transactions = mempool_admit(workload)
    config = GenTranSeqConfig(
        epsilon=epsilon,
        epsilon_min=0.0 if epsilon == 0.0 else 0.01,
        epsilon_decay=epsilon_decay,
        episodes=preset.episodes,
        steps_per_episode=preset.steps_per_episode,
        seed=seed,
    )
    checkpointer = None
    if checkpoint_store is not None:
        from ..store import TrainingCheckpointer, checkpoint_key

        key = checkpoint_key(
            "fig8-cell",
            {
                "epsilon": epsilon,
                "num_ifus": num_ifus,
                "mempool_size": mempool_size,
                "episodes": preset.episodes,
                "steps_per_episode": preset.steps_per_episode,
                "epsilon_decay": epsilon_decay,
            },
            seed,
        )
        checkpointer = TrainingCheckpointer(
            checkpoint_store, key, every=checkpoint_every
        )
    module = GenTranSeq(config=config)
    result = module.optimize(
        workload.pre_state,
        transactions,
        workload.ifus,
        checkpointer=checkpointer,
    )
    if checkpointer is not None:
        checkpointer.clear()
    rewards = tuple(result.episode_rewards)
    return Fig8Series(
        epsilon=epsilon,
        num_ifus=num_ifus,
        episode_rewards=rewards,
        moving_avg=tuple(moving_average(rewards, window)),
        best_profit=result.history.best_profit,
    )


def run_fig8(
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    ifu_counts: Sequence[int] = (1, 2),
    mempool_size: int = 20,
    preset: EffortPreset = QUICK,
    window: int = 9,
    seed: int = 0,
    epsilon_decay: float = 0.05,
    runner: Optional[TaskRunner] = None,
) -> List[Fig8Series]:
    """Train one agent per (epsilon, #IFUs) cell and record rewards.

    Each cell is one independent training task on the fabric — one DQN
    per epsilon setting, exactly the paper's Figure 8 layout.
    """
    runner = runner if runner is not None else SerialRunner()
    # Checkpoints share whatever store the runner caches tasks in; the
    # handle is key-neutral (canonicalised to a constant) so passing it
    # does not perturb the task cache key.
    store = getattr(runner, "store", None)
    kwargs = {"checkpoint_store": store} if store is not None else {}
    tasks = [
        Task(
            fn=_fig8_cell,
            args=(
                epsilon, num_ifus, mempool_size, preset, window,
                epsilon_decay,
            ),
            kwargs=dict(kwargs),
            seed=seed,
            label=f"fig8[ifus={num_ifus},eps={epsilon}]",
        )
        for num_ifus in ifu_counts
        for epsilon in epsilons
    ]
    return runner.map(tasks)


def render_fig8(series: Optional[List[Fig8Series]] = None) -> str:
    """Each curve as a labelled series of smoothed rewards."""
    data = series if series is not None else run_fig8()
    lines = []
    for curve in data:
        label = f"ifus={curve.num_ifus} eps={curve.epsilon}"
        xs = list(range(len(curve.moving_avg)))
        lines.append(format_series(label, xs, curve.moving_avg, precision=1))
    return "\n".join(lines)
